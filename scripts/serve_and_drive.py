"""CI driver: boot `repro serve`, hammer it with mixed queries, audit the log.

Starts the service as a real subprocess on an ephemeral port — from a
multi-dataset ``--config`` file with a joint budget group, against either
front-end (``--frontend threaded|async``) — then drives a few hundred
queries covering every interesting outcome:

* distinct fresh queries (budget-charged releases),
* repeated identical queries (must be served from cache at zero spend),
* deliberately oversized queries (must yield structured 403 refusals),
* malformed queries and unknown datasets (400/404, never a 500),
* one batch request through the engine fan-out endpoint,
* the estimator-spec registry surface: ``GET /kinds`` advertising every
  registered kind, two ``baseline.*`` kinds released end-to-end with exact
  epsilon accounting and zero-spend repeats, an unknown kind answered with
  a structured 400 carrying the registered-kind list, and the per-dataset
  ``kinds`` allowlist rejecting a disallowed kind before any spend,
* joint-budget-group semantics: spend through one member, watch the shared
  cap drain for all of them, exhaust it, and see every member refuse with
  the group ledger unchanged,
* the ``/metrics`` Prometheus exposition, parsed and cross-checked against
  the JSON ``/datasets`` counters,
* the live control plane: authenticated ``/admin/state``, a provably no-op
  reload of the unchanged config, a live reload that adds a dataset and
  rotates an analyst budget without a restart, and the drain flow (cached
  answers served, fresh releases 403, drained dataset then removed),
* per-analyst token-bucket rate limiting: a burst that draws structured
  429s while the budget ledger stays bit-for-bit unchanged,
* the observability surface: every answer echoes a trace id, a
  client-supplied ``X-Repro-Trace-Id`` round-trips into ``/debug/traces``
  and the ``repro trace`` CLI, a live reload drops the slow-query
  threshold to zero and the next query appears in the slow-query log,
  and ``repro audit spend --url`` replays the hash-chained audit trail to
  the server's live ledger totals bit-for-bit,
* raw-socket protocol probes: garbage / negative ``Content-Length`` (400),
  an oversized declared body (413), pipelined keep-alive requests, and a
  mid-request disconnect (counted in the front-end stats, not crashed on),
* offline audit forensics after shutdown: ``repro audit verify`` accepts
  the intact chain and rejects a copy with a single flipped byte.

Fails (exit 1) if any expectation is violated or if the server log contains
a stack trace.  Run from the repo root::

    PYTHONPATH=src python scripts/serve_and_drive.py [--queries 200]
    PYTHONPATH=src python scripts/serve_and_drive.py --frontend async
"""

from __future__ import annotations

import argparse
import csv
import json
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

FAILURES: list = []

MAX_BODY = 262_144  # small enough to probe 413 without shipping megabytes
ADMIN_TOKEN = "ci-secret"  # shared secret for the /admin control plane


def check(condition: bool, message: str) -> None:
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}")


def call(url: str, path: str, payload=None, timeout: float = 30.0,
         token=None, method=None, headers=None):
    """POST/GET JSON; returns (http_status, decoded_body)."""
    if method is None:
        method = "POST" if payload is not None else "GET"
    data = None
    if method == "POST":
        data = b"" if payload is None else json.dumps(payload).encode()
    headers = {"Content-Type": "application/json", **(headers or {})}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(url + path, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def call_text(url: str, path: str, timeout: float = 30.0):
    """GET a plain-text resource; returns (status, content_type, text)."""
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode())


def error_code(body) -> str:
    """The v1 envelope's error.code (refusals, rejections, 4xx)."""
    error = body.get("error")
    return error.get("code", "") if isinstance(error, dict) else str(error)


def write_deployment(tmp: Path, budget: float, frontend: str, audit_log: Path,
                     records: int = 5000) -> Path:
    """Write the CSV + NPY sources and the multi-dataset serving config."""
    generator = random.Random(7)
    with open(tmp / "data.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "value"])
        for index in range(records):
            writer.writerow([index, f"{generator.lognormvariate(11.0, 0.5):.2f}"])
    try:
        import numpy as np

        np.save(tmp / "left.npy", np.asarray(
            [generator.gauss(10.0, 2.0) for _ in range(2000)]))
        np.save(tmp / "right.npy", np.asarray(
            [generator.gauss(20.0, 3.0) for _ in range(2000)]))
    except ImportError:  # pragma: no cover - numpy is a hard dependency anyway
        raise SystemExit("numpy is required to build the driver datasets")
    # JSON (not TOML) so the driver can hold the exact document it booted
    # from and derive byte-identical reload payloads for the control-plane
    # phases.  Rate limits cover only the "burster" analyst, so the main
    # drive traffic never draws a 429.
    document = {
        "service": {
            "seed": 7,
            "port": 0,
            "frontend": frontend,
            "max_body": MAX_BODY,
        },
        "groups": {"shared": {"budget": 1.0}},
        "datasets": [
            {"name": "demo", "source": "data.csv", "column": "value",
             "budget": budget},
            {"name": "left", "source": "left.npy", "group": "shared",
             "kinds": ["mean", "baseline.bounded_laplace_mean"]},
            {"name": "right", "source": "right.npy", "group": "shared"},
        ],
        "admin": {"token": ADMIN_TOKEN},
        "limits": {"analysts": {"burster": {"rate": 0.001, "burst": 2}}},
        # Tracing on from boot; the slow-query threshold starts high (the
        # observability phase hot-drops it to 0.0 via /admin/reload) and the
        # audit trail covers the server's whole lifetime so the replay
        # cross-check can account for every commit.
        "observability": {
            "trace_ring": 512,
            "slow_query_ms": 60_000.0,
            "audit_log": str(audit_log),
        },
    }
    config = tmp / "serving.json"
    config.write_text(json.dumps(document, indent=2))
    return config, document


def start_server(config: Path, log_path: Path) -> tuple:
    log_handle = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--config", str(config)],
        stdout=log_handle,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30.0
    url = None
    while time.time() < deadline and url is None:
        if process.poll() is not None:
            break
        match = re.search(r"listening on (http://\S+)", log_path.read_text())
        if match:
            url = match.group(1)
        else:
            time.sleep(0.1)
    return process, log_handle, url


def drive(url: str, total_queries: int) -> None:
    statuses = {"ok": 0, "refused": 0, "cached": 0, "client_error": 0}

    # Phase 1: distinct fresh releases (small epsilons so the budget lasts).
    fresh = []
    kinds = ["mean", "variance", "iqr", "quantile"]
    for index in range(max(total_queries // 8, 8)):
        kind = kinds[index % 4]
        query = {"dataset": "demo", "kind": kind, "epsilon": 0.02 + 0.001 * index}
        if kind == "quantile":
            query["params"] = {"levels": [0.5, 0.9]}
        fresh.append(query)
    released = []
    for query in fresh:
        status, body = call(url, "/query", query)
        check(status in (200, 403), f"fresh query gave HTTP {status}: {body}")
        check("status" in body, f"missing status field: {body}")
        if body.get("status") == "ok":
            statuses["ok"] += 1
            check(not body.get("cached"), f"first release claims cached: {body}")
            released.append(query)
        elif body.get("status") == "refused":
            statuses["refused"] += 1

    check(len(released) >= 4, f"too few successful releases ({len(released)})")

    # Phase 2: repeats of released queries -> cache hits at zero spend.
    # Phases 3 and 4 contribute a fixed 15 queries; fill the rest with repeats.
    needed = total_queries - 15 - sum(statuses.values())
    for repeats in range(max(needed, 0)):
        query = released[repeats % len(released)]
        status, body = call(url, "/query", query)
        check(status == 200, f"repeat gave HTTP {status}: {body}")
        check(body.get("cached") is True, f"repeat was not served from cache: {body}")
        check(body.get("epsilon_charged") == 0.0, f"cache hit charged epsilon: {body}")
        statuses["cached"] += 1

    # Phase 3: queries that cannot fit the remaining budget -> refusals.
    for _ in range(10):
        status, body = call(
            url, "/query", {"dataset": "demo", "kind": "mean", "epsilon": 100.0}
        )
        check(status == 403, f"over-budget query gave HTTP {status}: {body}")
        check(body.get("status") == "refused", f"expected refusal: {body}")
        check(error_code(body) == "budget_exceeded", f"wrong refusal code: {body}")
        statuses["refused"] += 1

    # Phase 4: malformed / unknown requests -> clean 4xx, never 5xx.
    bad_cases = [
        ({"dataset": "ghost", "kind": "mean", "epsilon": 0.1}, 404),
        ({"dataset": "demo", "kind": "mode", "epsilon": 0.1}, 400),
        ({"dataset": "demo", "kind": "mean", "epsilon": -1.0}, 400),
        ({"dataset": "demo", "kind": "quantile", "epsilon": 0.1}, 400),
        ({"dataset": "demo", "kind": "mean"}, 400),
    ]
    for payload, expected in bad_cases:
        status, body = call(url, "/query", payload)
        check(status == expected, f"{payload} gave HTTP {status} (wanted {expected})")
        statuses["client_error"] += 1

    # Phase 5: one batch through the fan-out endpoint, duplicates coalesced.
    batch = {"queries": [released[0], released[0], released[1 % len(released)]]}
    status, body = call(url, "/query", batch)
    check(status == 200, f"batch gave HTTP {status}")
    answers = body.get("answers", [])
    check(len(answers) == 3, f"batch returned {len(answers)} answers")
    check(all(a.get("status") == "ok" for a in answers), f"batch answers: {answers}")

    # Final accounting must be consistent.
    status, body = call(url, "/datasets")
    check(status == 200, "datasets snapshot failed")
    demo = next(d for d in body["datasets"] if d["name"] == "demo")
    budget = demo["budget"]
    check(budget["spent"] <= budget["capacity"] + 1e-6,
          f"spent {budget['spent']} exceeds capacity {budget['capacity']}")
    check(budget["reserved"] == 0.0, f"dangling reservation: {budget}")
    cache = body["cache"]
    check(cache["hits"] >= statuses["cached"],
          f"cache hits {cache['hits']} < expected {statuses['cached']}")

    total = sum(statuses.values())
    print(f"drove {total} queries: {statuses}")
    check(total >= total_queries * 0.9, f"only drove {total} of {total_queries}")
    check(statuses["cached"] >= total_queries // 2, "too few cache hits exercised")
    check(statuses["refused"] >= 10, "too few refusals exercised")


def drive_baseline_kinds(url: str) -> None:
    """Registry surface: GET /kinds, two baseline releases, allowlist, 400s."""
    status, catalogue = call(url, "/kinds")
    check(status == 200, f"GET /kinds failed: HTTP {status}")
    kinds = catalogue.get("kinds", {})
    baselines = sorted(k for k in kinds if k.startswith("baseline."))
    check(len(baselines) >= 4, f"expected >= 4 baseline kinds, got {baselines}")
    check("mean" in kinds and kinds["mean"]["min_records"] == 8,
          f"builtin kinds missing from catalogue: {sorted(kinds)}")
    check(catalogue.get("datasets", {}).get("left") ==
          ["baseline.bounded_laplace_mean", "mean"],
          f"allowlist not advertised: {catalogue.get('datasets')}")

    # Two baseline kinds released end-to-end with exact budget accounting.
    released = []
    for kind, params in (
        ("baseline.bounded_laplace_mean", {"radius": 1e6}),
        ("baseline.finite_domain_laplace_mean", {"domain_size": 1_000_000}),
    ):
        query = {"dataset": "demo", "kind": kind, "epsilon": 0.05, "params": params}
        status, body = call(url, "/query", query)
        check(status == 200 and body.get("status") == "ok",
              f"{kind} release failed: HTTP {status} {body}")
        check(abs(body.get("epsilon_charged", 0.0) - 0.05) < 1e-12,
              f"{kind} charged {body.get('epsilon_charged')} != 0.05")
        released.append((kind, query, body))

    # Zero-spend repeats, with param values respelled (int vs float forms):
    # canonicalisation must map both spellings to the same cache entry.
    respelled = {"radius": 1_000_000, "domain_size": 1_000_000.0}
    for kind, query, body in released:
        repeat_query = dict(query)
        repeat_query["params"] = {
            name: respelled.get(name, value)
            for name, value in query["params"].items()
        }
        status, repeat = call(url, "/query", repeat_query)
        check(repeat.get("cached") is True and repeat.get("epsilon_charged") == 0.0,
              f"{kind} repeat not cached at zero spend: {repeat}")
        check(repeat.get("value") == body.get("value"),
              f"{kind} cached value changed: {repeat}")

    # Unknown kind: structured 400 listing the registered kinds.
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "mode", "epsilon": 0.1})
    check(status == 400 and error_code(body) == "unknown_kind",
          f"unknown kind not a structured 400: HTTP {status} {body}")
    check(sorted(body.get("kinds", [])) == sorted(kinds),
          "400 body kind list drifts from GET /kinds")

    # Missing required parameter: clean 400 before any spend.
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "baseline.coinpress_mean",
                         "epsilon": 0.1})
    check(status == 400, f"missing param gave HTTP {status}: {body}")

    # Per-dataset allowlist: 'left' serves only mean + bounded_laplace_mean.
    _, before = call(url, "/datasets")
    left_spent = next(d for d in before["datasets"] if d["name"] == "left")
    status, body = call(url, "/query",
                        {"dataset": "left", "kind": "iqr", "epsilon": 0.05})
    check(status == 400 and body.get("status") == "invalid",
          f"disallowed kind not rejected: HTTP {status} {body}")
    _, after = call(url, "/datasets")
    left_after = next(d for d in after["datasets"] if d["name"] == "left")
    check(left_after["budget"]["spent"] == left_spent["budget"]["spent"],
          "disallowed kind changed the ledger")
    check(left_after.get("kinds") == ["baseline.bounded_laplace_mean", "mean"],
          f"dataset allowlist not reported: {left_after.get('kinds')}")
    print(f"baseline kinds served: {[k for k, _, _ in released]}; "
          f"{len(baselines)} baseline kinds advertised")


def drive_joint_group(url: str) -> None:
    """Joint budget group: one cap spans 'left' and 'right'."""
    status, body = call(url, "/query", {"dataset": "left", "kind": "mean",
                                        "epsilon": 0.3})
    check(status == 200 and body.get("status") == "ok",
          f"joint-group release failed: {body}")

    status, body = call(url, "/datasets")
    members = {d["name"]: d for d in body["datasets"] if d["name"] in ("left", "right")}
    check(members["left"]["group"] == members["right"]["group"] == "shared",
          f"members not in group: {members}")
    check(members["left"]["budget"]["spent"] == members["right"]["budget"]["spent"],
          "group spend not shared across members")
    check(members["left"]["budget"]["spent"] > 0, "group spend not recorded")
    groups = body.get("groups", {})
    check("shared" in groups and sorted(groups["shared"]["datasets"]) == ["left", "right"],
          f"groups snapshot wrong: {groups}")

    # Exhaust the 1.0 cap with distinct queries through one member.
    exhausted = False
    for step in range(12):
        status, body = call(url, "/query", {"dataset": "left", "kind": "mean",
                                            "epsilon": 0.31 + step / 1000})
        if body.get("status") == "refused":
            exhausted = True
            break
    check(exhausted, "joint cap never exhausted")

    _, before = call(url, "/datasets")
    group_before = before["groups"]["shared"]["budget"]
    # Every member must now refuse a query the remaining cap cannot fit...
    for offset, dataset in enumerate(("left", "right")):
        status, body = call(url, "/query", {"dataset": dataset, "kind": "mean",
                                            "epsilon": 0.5 + offset / 1000})
        check(status == 403 and error_code(body) == "budget_exceeded",
              f"joint-cap refusal missing on {dataset}: HTTP {status} {body}")
    # ...with the shared ledger unchanged by the refusals.
    _, after = call(url, "/datasets")
    group_after = after["groups"]["shared"]["budget"]
    check(group_after["spent"] == group_before["spent"],
          f"refusals changed the group ledger: {group_before} -> {group_after}")
    check(group_after["reserved"] == 0.0, f"dangling group reservation: {group_after}")
    print(f"joint group exhausted cleanly at spent={group_after['spent']:.3f}")


def drive_metrics(url: str) -> None:
    """Scrape /metrics and cross-check it against the JSON /datasets view."""
    status, content_type, text = call_text(url, "/metrics")
    check(status == 200, f"GET /metrics gave HTTP {status}")
    check(content_type.startswith("text/plain"),
          f"/metrics content type: {content_type!r}")
    check("Traceback" not in text, "/metrics body contains a traceback")

    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_labels, _, value = line.rpartition(" ")
        check(bool(name_labels) and value not in ("", None),
              f"unparseable /metrics line: {line!r}")
        check(name_labels not in samples, f"duplicate /metrics sample: {line!r}")
        samples[name_labels] = float(value)

    _, body = call(url, "/datasets")
    cache = body["cache"]
    check(samples.get("repro_cache_hits_total") == cache["hits"],
          f"cache hits drift: /metrics {samples.get('repro_cache_hits_total')} "
          f"vs /datasets {cache['hits']}")
    check(samples.get("repro_cache_misses_total") == cache["misses"],
          "cache misses drift between /metrics and /datasets")
    for dataset in body["datasets"]:
        key = f'repro_budget_spent_epsilon{{dataset="{dataset["name"]}"}}'
        check(abs(samples.get(key, -1.0) - dataset["budget"]["spent"]) < 1e-9,
              f"budget gauge drift for {dataset['name']}: {samples.get(key)}")
    histogram_counts = [v for k, v in samples.items()
                       if k.startswith("repro_request_latency_seconds_count")]
    check(bool(histogram_counts) and sum(histogram_counts) > 0,
          "no latency histogram samples exported")
    print(f"/metrics scraped: {len(samples)} samples cross-checked")


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    """Run `repro <argv>` as a subprocess (inherits PYTHONPATH=src)."""
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, timeout=60)


def drive_observability(url: str, config_path: Path, document: dict,
                        server_log: Path, audit_log: Path) -> None:
    """Tracing + audit trail: echo, /debug/traces, slow log, exact replay.

    Must run while every dataset that ever spent budget is still registered —
    the ``repro audit spend --url`` cross-check reconciles the full replay
    against the live ledgers, so it precedes the control-plane phase that
    removes a spent dataset.
    """
    # A client-supplied trace id is honoured and echoed on the answer.
    trace_id = "ci-trace-0001"
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "mean", "epsilon": 0.0131},
                        headers={"X-Repro-Trace-Id": trace_id})
    check(status == 200 and body.get("trace") == trace_id,
          f"trace id not echoed: HTTP {status} {body}")

    # Minted ids: every answer carries one even without the header.
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "mean", "epsilon": 0.0132})
    check(status == 200 and len(body.get("trace", "")) == 16,
          f"no minted trace id on answer: {body}")
    # ...including error documents.
    status, body = call(url, "/query", {"dataset": "demo", "epsilon": 0.1})
    check(status == 400 and len(body.get("trace", "")) == 16,
          f"400 document carries no trace id: HTTP {status} {body}")

    # The trace is inspectable over HTTP with per-stage spans.
    status, body = call(url, f"/debug/traces/{trace_id}")
    check(status == 200, f"GET /debug/traces/{trace_id} gave HTTP {status}")
    spans = [span["name"] for span in body.get("trace", {}).get("spans", [])]
    for name in ("parse", "admission", "engine", "commit", "serialize"):
        check(name in spans, f"span {name!r} missing from {spans}")
    status, body = call(url, "/debug/traces")
    check(status == 200 and body.get("tracing", {}).get("recorded", 0) > 0,
          f"/debug/traces listing failed: HTTP {status} {body}")

    # The CLI sees the same trace.
    listing = run_cli("trace", "--url", url)
    check(listing.returncode == 0 and trace_id in listing.stdout,
          f"`repro trace` listing failed: {listing.stdout}{listing.stderr}")
    single = run_cli("trace", trace_id, "--url", url)
    check(single.returncode == 0 and '"engine"' in single.stdout,
          f"`repro trace {trace_id}` failed: {single.stdout}{single.stderr}")

    # Hot-drop the slow-query threshold to 0.0 through a live reload; the
    # very next query must land in the slow-query log.
    slow_document = json.loads(json.dumps(document))
    slow_document["observability"]["slow_query_ms"] = 0.0
    config_path.write_text(json.dumps(slow_document, indent=2))
    status, body = call(url, "/admin/reload", token=ADMIN_TOKEN, method="POST")
    applied = [change["action"] for change in body.get("applied", [])]
    check(status == 200 and applied == ["update_observability"],
          f"slow-threshold reload applied {applied}: HTTP {status} {body}")
    slow_id = "ci-slow-0001"
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "mean", "epsilon": 0.0133},
                        headers={"X-Repro-Trace-Id": slow_id})
    check(status == 200, f"slow-logged query failed: HTTP {status} {body}")
    deadline = time.time() + 5.0
    logged = False
    while time.time() < deadline and not logged:
        logged = f"slow query trace={slow_id} " in server_log.read_text()
        if not logged:
            time.sleep(0.1)
    check(logged, f"no slow-query line for trace={slow_id} in the server log")
    # Restore the booted threshold so later phases see a quiet log and the
    # control-plane no-op-reload check still holds.
    config_path.write_text(json.dumps(document, indent=2))
    status, body = call(url, "/admin/reload", token=ADMIN_TOKEN, method="POST")
    applied = [change["action"] for change in body.get("applied", [])]
    check(status == 200 and applied == ["update_observability"],
          f"slow-threshold restore applied {applied}: HTTP {status} {body}")

    # The audit trail replays to the live ledgers bit-for-bit.
    spend = run_cli("audit", "spend", str(audit_log), "--url", url)
    check(spend.returncode == 0 and "cross_check=ok" in spend.stdout,
          f"audit replay cross-check failed:\n{spend.stdout}{spend.stderr}")
    print("observability: trace echo, /debug/traces, CLI, slow-query log, "
          "and bit-exact audit replay all passed")


def audit_offline_checks(audit_log: Path, tmp: Path) -> None:
    """Post-shutdown forensics: the chain verifies; one flipped byte fails."""
    verify = run_cli("audit", "verify", str(audit_log))
    check(verify.returncode == 0 and "chain=ok" in verify.stdout,
          f"audit verify failed:\n{verify.stdout}{verify.stderr}")

    raw = bytearray(audit_log.read_bytes())
    target = raw.find(b'"epsilon":')
    check(target >= 0, "no epsilon field found in the audit log")
    flip = target + len(b'"epsilon":') + 2
    raw[flip] = ord("9") if raw[flip] != ord("9") else ord("7")
    tampered = tmp / "tampered.jsonl"
    tampered.write_bytes(bytes(raw))
    forged = run_cli("audit", "verify", str(tampered))
    check(forged.returncode == 1 and "tampered" in forged.stderr,
          f"flipped byte not detected: rc={forged.returncode} "
          f"{forged.stdout}{forged.stderr}")
    print("audit forensics: intact chain verifies; a flipped byte is detected")


def drive_control_plane(url: str, config_path: Path, document: dict) -> None:
    """Authenticated /admin: no-op reload, live add + rotate, drain + remove."""
    status, body = call(url, "/admin/state")
    check(status == 401, f"unauthenticated /admin/state gave HTTP {status}")
    status, body = call(url, "/admin/state", token="wrong-secret")
    check(status == 401 and error_code(body) == "unauthorized",
          f"bad-token /admin/state: HTTP {status} {body}")
    status, body = call(url, "/admin/state", token=ADMIN_TOKEN)
    check(status == 200 and body.get("admin", {}).get("enabled") is True,
          f"/admin/state failed: HTTP {status} {body}")
    check(body["admin"]["draining"] == [], f"unexpected drains: {body['admin']}")

    # Reloading the unchanged booted file must be a provable no-op.
    status, body = call(url, "/admin/reload", token=ADMIN_TOKEN, method="POST")
    check(status == 200 and body.get("applied") == [] and body.get("unchanged"),
          f"unchanged reload was not a no-op: HTTP {status} {body}")

    # Live reload: add a dataset and rotate an analyst budget, no restart.
    document["datasets"].append(
        {"name": "hot", "values": [float(v) for v in range(64)], "budget": 1.0})
    document["datasets"][0]["analyst_budgets"] = {"vip": 0.2}
    config_path.write_text(json.dumps(document, indent=2))
    status, body = call(url, "/admin/reload", token=ADMIN_TOKEN, method="POST")
    applied = sorted(change["action"] for change in body.get("applied", []))
    check(status == 200 and applied == ["add_dataset", "rotate_analyst_budgets"],
          f"live reload applied {applied}: HTTP {status} {body}")

    hot_query = {"dataset": "hot", "kind": "mean", "epsilon": 0.25}
    status, body = call(url, "/query", hot_query)
    check(status == 200 and body.get("status") == "ok",
          f"dataset added by live reload does not serve: HTTP {status} {body}")
    status, body = call(url, "/query",
                        {"dataset": "demo", "kind": "mean", "epsilon": 0.5,
                         "analyst": "vip"})
    check(status == 403 and body.get("status") == "refused",
          f"rotated analyst cap not enforced: HTTP {status} {body}")

    # Drain: cached answers keep serving, fresh releases refuse, then remove.
    status, body = call(url, "/admin/drain", {"dataset": "hot"},
                        token=ADMIN_TOKEN)
    check(status == 200 and body.get("dataset", {}).get("draining") is True,
          f"drain failed: HTTP {status} {body}")
    status, body = call(url, "/query", hot_query)
    check(status == 200 and body.get("cached") is True,
          f"drained dataset dropped its cached answer: HTTP {status} {body}")
    status, body = call(url, "/query", dict(hot_query, epsilon=0.35))
    check(status == 403 and error_code(body) == "draining",
          f"drained dataset admitted a fresh release: HTTP {status} {body}")

    document["datasets"] = [d for d in document["datasets"]
                            if d["name"] != "hot"]
    config_path.write_text(json.dumps(document, indent=2))
    status, body = call(url, "/admin/reload", token=ADMIN_TOKEN, method="POST")
    applied = [change["action"] for change in body.get("applied", [])]
    check(status == 200 and applied == ["remove_dataset"],
          f"drained removal applied {applied}: HTTP {status} {body}")
    status, body = call(url, "/query", hot_query)
    check(status == 404 and error_code(body) == "unknown_dataset",
          f"removed dataset still answers: HTTP {status} {body}")
    print("control plane: no-op reload, live add+rotate, drain+remove all passed")


def drive_rate_limit(url: str) -> None:
    """Burst past the 'burster' analyst's bucket; the ledger must not move."""
    admitted, limited = 0, 0
    before = None
    for step in range(4):
        if admitted >= 2 and before is None:
            _, snapshot = call(url, "/datasets")
            before = json.dumps(snapshot["datasets"], sort_keys=True)
        status, body = call(url, "/query",
                            {"dataset": "demo", "kind": "mean",
                             "epsilon": 0.011 + step / 1000,
                             "analyst": "burster"})
        if status == 429:
            limited += 1
            check(body.get("status") == "refused" and
                  error_code(body) == "rate_limited",
                  f"429 body malformed: {body}")
            check(body.get("epsilon_charged") == 0.0,
                  f"rate-limited request charged epsilon: {body}")
            check(body.get("retry_after", 0) > 0, f"no retry_after: {body}")
        else:
            admitted += 1
    check(limited >= 1, f"burst drew no 429s (admitted {admitted})")
    check(before is not None, "burst admitted fewer than its bucket size")
    _, snapshot = call(url, "/datasets")
    after = json.dumps(snapshot["datasets"], sort_keys=True)
    check(before == after,
          "429s changed the budget ledger:\n"
          f"before: {before}\nafter:  {after}")
    print(f"rate limit: {admitted} admitted, {limited} limited, ledger unchanged")


def _read_responses(sock: socket.socket, count: int):
    reader = sock.makefile("rb")
    responses = []
    for _ in range(count):
        status_line = reader.readline()
        if not status_line:
            break
        headers = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = reader.read(length) if length else b""
        responses.append((int(status_line.split()[1]), body))
    return responses


def drive_protocol_probes(url: str, frontend: str) -> None:
    """Raw-socket probes: malformed framing, oversized bodies, disconnects."""
    host, port = re.match(r"http://([^:]+):(\d+)", url).groups()
    address = (host, int(port))

    def probe(data: bytes, expected_status: int, label: str) -> None:
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(data)
            responses = _read_responses(sock, 1)
        check(bool(responses), f"{label}: no response")
        if responses:
            status, body = responses[0]
            check(status == expected_status,
                  f"{label}: HTTP {status} (wanted {expected_status}): {body!r}")
            check(b"Traceback" not in body, f"{label}: traceback in body")

    probe(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
          400, "garbage Content-Length")
    probe(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: -12\r\n\r\n",
          400, "negative Content-Length")
    probe(f"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {MAX_BODY * 10}\r\n\r\n".encode(),
          413, "oversized declared body")

    # Pipelined keep-alive: two requests in one write, two responses in order.
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n"
                     b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
        responses = _read_responses(sock, 2)
    check(len(responses) == 2 and all(s == 200 for s, _ in responses),
          f"pipelined keep-alive broke: {responses}")

    # Mid-request disconnect: promise 500 bytes, send 6, hang up.
    sock = socket.create_connection(address, timeout=10)
    sock.sendall(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n{\"par")
    sock.close()

    deadline = time.time() + 5.0
    disconnects = 0
    while time.time() < deadline:
        status, body = call(url, "/datasets")
        disconnects = body.get("frontend", {}).get("disconnects", 0)
        if disconnects >= 1:
            break
        time.sleep(0.1)
    check(disconnects >= 1, "mid-request disconnect was not counted")
    check(body.get("frontend", {}).get("frontend") == frontend,
          f"frontend mismatch: {body.get('frontend')}")

    # The server survived every probe.
    status, health = call(url, "/health")
    check(status == 200 and health.get("status") == "ok",
          f"server unhealthy after probes: {health}")
    print(f"protocol probes passed ({frontend}); disconnects counted: {disconnects}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--budget", type=float, default=3.0)
    parser.add_argument("--frontend", choices=["threaded", "async"],
                        default="threaded")
    parser.add_argument("--audit-log", type=Path, default=None,
                        help="where to write the audit trail (default: inside "
                             "the temp dir; point it somewhere durable to "
                             "keep the chain as a CI artifact)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        log_path = tmp_path / "server.log"
        if args.audit_log is not None:
            audit_log = args.audit_log.resolve()
            audit_log.parent.mkdir(parents=True, exist_ok=True)
            audit_log.unlink(missing_ok=True)  # a stale chain would not verify
        else:
            audit_log = tmp_path / "audit.jsonl"
        config, document = write_deployment(tmp_path, args.budget,
                                            args.frontend, audit_log)
        process, log_handle, url = start_server(config, log_path)
        try:
            check(url is not None, f"server never came up:\n{log_path.read_text()}")
            if url is not None:
                print(f"server at {url} (frontend={args.frontend})")
                drive(url, args.queries)
                drive_baseline_kinds(url)
                drive_joint_group(url)
                drive_metrics(url)
                drive_observability(url, config, document, log_path, audit_log)
                drive_control_plane(url, config, document)
                drive_rate_limit(url)
                drive_protocol_probes(url, args.frontend)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            log_handle.close()
        log_text = log_path.read_text()
        check("Traceback" not in log_text,
              f"server log contains a stack trace:\n{log_text}")
        check(process.returncode == 0, f"server exited with {process.returncode}")
        audit_offline_checks(audit_log, tmp_path)
        print("--- server log (tail) ---")
        print("\n".join(log_text.splitlines()[-25:]))

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
