"""CI driver: boot `repro serve`, hammer it with mixed queries, audit the log.

Starts the service as a real subprocess on an ephemeral port, then drives a
few hundred queries covering every interesting outcome:

* distinct fresh queries (budget-charged releases),
* repeated identical queries (must be served from cache at zero spend),
* deliberately oversized queries (must yield structured 403 refusals),
* malformed queries and unknown datasets (400/404, never a 500),
* one batch request through the engine fan-out endpoint.

Fails (exit 1) if any expectation is violated or if the server log contains
a stack trace.  Run from the repo root::

    PYTHONPATH=src python scripts/serve_and_drive.py [--queries 200]
"""

from __future__ import annotations

import argparse
import csv
import json
import random
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

FAILURES: list = []


def check(condition: bool, message: str) -> None:
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}")


def call(url: str, path: str, payload=None, timeout: float = 30.0):
    """POST/GET JSON; returns (http_status, decoded_body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def write_dataset(path: Path, records: int = 5000) -> None:
    generator = random.Random(7)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "value"])
        for index in range(records):
            writer.writerow([index, f"{generator.lognormvariate(11.0, 0.5):.2f}"])


def start_server(csv_path: Path, log_path: Path, budget: float) -> tuple:
    log_handle = open(log_path, "w")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(csv_path),
            "--column", "value", "--dataset", "demo",
            "--budget", str(budget), "--port", "0", "--seed", "7",
        ],
        stdout=log_handle,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30.0
    url = None
    while time.time() < deadline and url is None:
        if process.poll() is not None:
            break
        match = re.search(r"listening on (http://\S+)", log_path.read_text())
        if match:
            url = match.group(1)
        else:
            time.sleep(0.1)
    return process, log_handle, url


def drive(url: str, total_queries: int) -> None:
    statuses = {"ok": 0, "refused": 0, "cached": 0, "client_error": 0}

    # Phase 1: distinct fresh releases (small epsilons so the budget lasts).
    fresh = []
    kinds = ["mean", "variance", "iqr", "quantile"]
    for index in range(max(total_queries // 8, 8)):
        kind = kinds[index % 4]
        query = {"dataset": "demo", "kind": kind, "epsilon": 0.02 + 0.001 * index}
        if kind == "quantile":
            query["levels"] = [0.5, 0.9]
        fresh.append(query)
    released = []
    for query in fresh:
        status, body = call(url, "/query", query)
        check(status in (200, 403), f"fresh query gave HTTP {status}: {body}")
        check("status" in body, f"missing status field: {body}")
        if body.get("status") == "ok":
            statuses["ok"] += 1
            check(not body.get("cached"), f"first release claims cached: {body}")
            released.append(query)
        elif body.get("status") == "refused":
            statuses["refused"] += 1

    check(len(released) >= 4, f"too few successful releases ({len(released)})")

    # Phase 2: repeats of released queries -> cache hits at zero spend.
    # Phases 3 and 4 contribute a fixed 15 queries; fill the rest with repeats.
    needed = total_queries - 15 - sum(statuses.values())
    for repeats in range(max(needed, 0)):
        query = released[repeats % len(released)]
        status, body = call(url, "/query", query)
        check(status == 200, f"repeat gave HTTP {status}: {body}")
        check(body.get("cached") is True, f"repeat was not served from cache: {body}")
        check(body.get("epsilon_charged") == 0.0, f"cache hit charged epsilon: {body}")
        statuses["cached"] += 1

    # Phase 3: queries that cannot fit the remaining budget -> refusals.
    for _ in range(10):
        status, body = call(
            url, "/query", {"dataset": "demo", "kind": "mean", "epsilon": 100.0}
        )
        check(status == 403, f"over-budget query gave HTTP {status}: {body}")
        check(body.get("status") == "refused", f"expected refusal: {body}")
        check(body.get("error") == "budget_exceeded", f"wrong refusal code: {body}")
        statuses["refused"] += 1

    # Phase 4: malformed / unknown requests -> clean 4xx, never 5xx.
    bad_cases = [
        ({"dataset": "ghost", "kind": "mean", "epsilon": 0.1}, 404),
        ({"dataset": "demo", "kind": "mode", "epsilon": 0.1}, 400),
        ({"dataset": "demo", "kind": "mean", "epsilon": -1.0}, 400),
        ({"dataset": "demo", "kind": "quantile", "epsilon": 0.1}, 400),
        ({"dataset": "demo", "kind": "mean"}, 400),
    ]
    for payload, expected in bad_cases:
        status, body = call(url, "/query", payload)
        check(status == expected, f"{payload} gave HTTP {status} (wanted {expected})")
        statuses["client_error"] += 1

    # Phase 5: one batch through the fan-out endpoint, duplicates coalesced.
    batch = {"queries": [released[0], released[0], released[1 % len(released)]]}
    status, body = call(url, "/query", batch)
    check(status == 200, f"batch gave HTTP {status}")
    answers = body.get("answers", [])
    check(len(answers) == 3, f"batch returned {len(answers)} answers")
    check(all(a.get("status") == "ok" for a in answers), f"batch answers: {answers}")

    # Final accounting must be consistent.
    status, body = call(url, "/datasets")
    check(status == 200, "datasets snapshot failed")
    budget = body["datasets"][0]["budget"]
    check(budget["spent"] <= budget["capacity"] + 1e-6,
          f"spent {budget['spent']} exceeds capacity {budget['capacity']}")
    check(budget["reserved"] == 0.0, f"dangling reservation: {budget}")
    cache = body["cache"]
    check(cache["hits"] >= statuses["cached"],
          f"cache hits {cache['hits']} < expected {statuses['cached']}")

    total = sum(statuses.values())
    print(f"drove {total} queries: {statuses}")
    check(total >= total_queries * 0.9, f"only drove {total} of {total_queries}")
    check(statuses["cached"] >= total_queries // 2, "too few cache hits exercised")
    check(statuses["refused"] >= 10, "too few refusals exercised")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--budget", type=float, default=3.0)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "data.csv"
        log_path = Path(tmp) / "server.log"
        write_dataset(csv_path)
        process, log_handle, url = start_server(csv_path, log_path, args.budget)
        try:
            check(url is not None, f"server never came up:\n{log_path.read_text()}")
            if url is not None:
                print(f"server at {url}")
                drive(url, args.queries)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            log_handle.close()
        log_text = log_path.read_text()
        check("Traceback" not in log_text,
              f"server log contains a stack trace:\n{log_text}")
        check(process.returncode == 0, f"server exited with {process.returncode}")
        print("--- server log ---")
        print(log_text)

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
