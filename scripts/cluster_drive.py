"""CI driver: boot a 4-shard ``repro compose`` cluster, drive it, audit it.

Brings the whole sharded tier up the way an operator would — ``repro
compose --up`` as a real CLI subprocess spawning one coordinator, four
shard servers and one router — then drives a few hundred mixed queries
through the router and asserts the cluster's external contract:

* bit-for-bit answer parity, field by field (trace ids excluded), against
  a single-process service built from the same seed and the same data,
* repeated queries served from the owning shard's cache at zero spend,
* a batch request fanned out across shards and reassembled in order,
* unknown datasets (404), unknown kinds (400), malformed JSON (400) and
  registration attempts (403) answered structurally, never with a 500,
* joint-budget exhaustion: once the group ledger is drained, every member
  dataset refuses on every shard with ``budget_exceeded`` — and a
  concurrent refusal barrage leaves the coordinator's ledger bit-for-bit
  untouched (same spent, zero reserved) while a private-budget dataset
  keeps answering,
* fleet aggregation: ``/health`` totals, the ``/datasets`` cluster
  section, and the router's Prometheus exposition,
* clean teardown via ``repro compose --down``: state cleared, every pid
  reaped, no ``Traceback`` in any process log,
* offline forensics: ``repro audit verify`` accepts every shard's
  hash-chained audit log, and the chains are copied to ``--artifacts``
  for CI upload.

Fails (exit 1) if any expectation is violated.  Run from the repo root::

    PYTHONPATH=src python scripts/cluster_drive.py [--artifacts audit-logs]
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

FAILURES: list = []

SEED = 20230115
SHARDS = 4
GROUP = "clinical"
GROUP_BUDGET = 60.0
MEMBERS = ("salaries", "heights", "bmi")
PRIVATE = "ages"
PRIVATE_BUDGET = 6.0
KINDS = ("mean", "variance", "iqr", "quantile")


def check(condition: bool, message: str) -> None:
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}")


def call(url: str, path: str, payload=None, timeout: float = 30.0,
         method=None):
    """POST/GET JSON; returns (http_status, decoded_body)."""
    if method is None:
        method = "POST" if payload is not None else "GET"
    data = None
    if method == "POST":
        data = b"" if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"}, method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def call_text(url: str, path: str, timeout: float = 30.0):
    """GET a plain-text resource; returns (status, content_type, text)."""
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode())


def error_code(body) -> str:
    """The v1 envelope's error.code (refusals, rejections, 4xx)."""
    error = body.get("error")
    return error.get("code", "") if isinstance(error, dict) else str(error)


def run_cli(*argv: str, timeout: float = 60.0) -> subprocess.CompletedProcess:
    """Run `repro <argv>` as a subprocess (inherits PYTHONPATH=src)."""
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, timeout=timeout)


# ---------------------------------------------------------------------------
# deployment


def dataset_arrays():
    import numpy as np

    rng = np.random.default_rng(42)
    return {
        "salaries": rng.normal(52_000.0, 9_000.0, 4_000),
        "heights": rng.normal(170.0, 8.0, 4_000),
        "bmi": rng.normal(24.0, 3.0, 4_000),
        PRIVATE: rng.normal(41.0, 12.0, 4_000),
    }


def write_deployment(tmp: Path) -> Path:
    """Write the NPY sources and the 4-shard cluster template config."""
    import numpy as np

    arrays = dataset_arrays()
    for name, data in arrays.items():
        np.save(tmp / f"{name}.npy", data)
    config = {
        "service": {"seed": SEED, "cache_size": 256, "workers": 1},
        "datasets": [
            {"name": name, "source": f"{name}.npy", "group": GROUP}
            for name in MEMBERS
        ] + [
            {"name": PRIVATE, "source": f"{PRIVATE}.npy",
             "budget": PRIVATE_BUDGET},
        ],
        "groups": {GROUP: {"budget": GROUP_BUDGET}},
        "observability": {"trace_ring": 256, "audit_log": "audit.jsonl"},
        "cluster": {"shards": SHARDS},
    }
    path = tmp / "cluster.json"
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


def build_reference():
    """A single-process service under the same seed, data and ledgers."""
    from repro.service import QueryService

    service = QueryService(seed=SEED)
    service.registry.create_group(GROUP, GROUP_BUDGET)
    arrays = dataset_arrays()
    for name in MEMBERS:
        service.register(name, arrays[name], None, group=GROUP)
    service.register(PRIVATE, arrays[PRIVATE], PRIVATE_BUDGET)
    return service


# ---------------------------------------------------------------------------
# drive phases


def query_catalogue():
    """A deterministic mixed workload over every dataset and kind."""
    payloads = []
    for dataset in (*MEMBERS, PRIVATE):
        for index, kind in enumerate(KINDS):
            payload = {
                "dataset": dataset, "kind": kind,
                "epsilon": round(0.15 + 0.01 * index, 4),
                "analyst": f"analyst{index % 3}",
            }
            if kind == "quantile":
                payload["params"] = {"levels": [0.25, 0.5, 0.9]}
            payloads.append(payload)
    return payloads


def drive_parity(url: str, reference, queries: int) -> int:
    """Mixed queries through the router, field-by-field vs single-process.

    The same payload stream is submitted to both tiers in the same order,
    so every field must agree — values, keys, epsilon accounting, cache
    flags, even the draining ``remaining`` — except the trace id, which is
    minted per process.
    """
    from repro.service import wire

    catalogue = query_catalogue()
    driven = 0
    mismatches = 0
    for index in range(queries):
        payload = catalogue[index % len(catalogue)]
        status, doc = call(url, "/query", payload)
        expected = reference.submit(wire.parse_request(dict(payload)))
        expected_doc = wire.answer_document(expected)
        expected_status = wire.answer_status_code(expected)
        routed = {key: value for key, value in doc.items() if key != "trace"}
        if status != expected_status or routed != expected_doc:
            mismatches += 1
            check(False, (
                f"parity mismatch on {payload['dataset']}/{payload['kind']} "
                f"(query {index}): cluster ({status}) {routed} != "
                f"single-process ({expected_status}) {expected_doc}"
            ))
            if mismatches >= 3:
                check(False, "too many parity mismatches; aborting the phase")
                break
        driven += 1
    cached = catalogue[0]
    status, doc = call(url, "/query", cached)
    check(status == 200 and doc.get("cached") is True
          and doc.get("epsilon_charged") == 0.0,
          f"repeat was not a zero-spend cache hit: {doc}")
    driven += 1
    print(f"parity drive: {driven} queries, {mismatches} mismatches")
    return driven


def drive_batch(url: str, reference) -> int:
    """One batch spanning every shard, reassembled in submission order."""
    from repro.service import wire

    queries = query_catalogue()[: len(MEMBERS) * 2]
    status, doc = call(url, "/query", {"queries": queries})
    check(status == 200, f"batch through the router failed: {doc}")
    answers = doc.get("answers", [])
    check(len(answers) == len(queries),
          f"batch returned {len(answers)} answers for {len(queries)} queries")
    for payload, answer in zip(queries, answers):
        expected = reference.submit(wire.parse_request(dict(payload)))
        check(answer.get("dataset") == payload["dataset"]
              and answer.get("kind") == payload["kind"],
              f"batch order broken at {payload}: {answer}")
        expected_doc = wire.answer_document(expected)
        check(answer.get("value") == expected_doc["value"]
              and answer.get("key") == expected_doc.get("key"),
              f"batch parity broke on {payload['dataset']}/{payload['kind']}")
    return len(queries)


def drive_error_paths(url: str) -> int:
    """Structured 4xx for every malformed input — never a 500."""
    driven = 0
    status, doc = call(url, "/query",
                       {"dataset": "nope", "kind": "mean", "epsilon": 0.1})
    check(status == 404 and error_code(doc) == "unknown_dataset",
          f"unknown dataset: {status} {doc}")
    driven += 1
    status, doc = call(url, "/query",
                       {"dataset": MEMBERS[0], "kind": "sorcery",
                        "epsilon": 0.1})
    check(status == 400 and "mean" in doc.get("error", {}).get(
        "detail", {}).get("kinds", []),
          f"unknown kind should carry the registered-kind list: {doc}")
    driven += 1
    request = urllib.request.Request(
        url + "/query", data=b"{not json",
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        urllib.request.urlopen(request, timeout=10)
        check(False, "malformed JSON was accepted")
    except urllib.error.HTTPError as exc:
        body = json.loads(exc.read().decode())
        check(exc.code == 400 and error_code(body) == "invalid_request",
              f"malformed JSON: {exc.code} {body}")
    driven += 1
    status, doc = call(url, "/datasets",
                       {"name": "new", "values": [1.0, 2.0], "budget": 1.0})
    check(status == 403 and error_code(doc) == "registration_disabled",
          f"router registration: {status} {doc}")
    driven += 1
    print("error paths structured (404/400/400/403)")
    return driven


def drive_aggregation(url: str) -> None:
    """Fleet-level documents: /health totals, /datasets cluster, /metrics."""
    status, health = call(url, "/health")
    check(status == 200 and health.get("status") == "ok",
          f"cluster unhealthy: {health}")
    check(health.get("shards") == {"total": SHARDS, "healthy": SHARDS,
                                   "unreachable": []},
          f"shard totals wrong: {health.get('shards')}")
    status, stats = call(url, "/datasets")
    names = {entry["name"] for entry in stats.get("datasets", [])}
    check(names == {*MEMBERS, PRIVATE}, f"dataset union wrong: {names}")
    cluster = stats.get("cluster", {})
    check(len(cluster.get("shards", [])) == SHARDS
          and cluster.get("pinned") == [PRIVATE],
          f"cluster section wrong: {cluster}")
    status, content_type, text = call_text(url, "/metrics")
    check(status == 200 and "repro_router_requests_total" in text
          and f'repro_router_shard_up{{shard="{SHARDS - 1}"}} 1' in text,
          "router metrics exposition incomplete")
    print(f"aggregation verified: {SHARDS}/{SHARDS} shards healthy")


def drive_exhaustion(url: str, coordinator_host: str,
                     coordinator_port: int) -> int:
    """Drain the joint group, then prove refusals never touch the ledger."""
    from repro.cluster.rpc import CoordinatorClient

    driven = 0
    # burn the shared ledger down through whichever shards own the keys
    # (epsilon varies per attempt so every key is fresh — a repeat would be
    # a zero-spend cache hit and the ledger would never drain)
    for attempt in range(32):
        member = MEMBERS[attempt % len(MEMBERS)]
        status, doc = call(url, "/query",
                           {"dataset": member, "kind": "mean",
                            "epsilon": round(8.0 + 0.01 * attempt, 4)})
        driven += 1
        if status == 403:
            check(error_code(doc) == "budget_exceeded",
                  f"exhaustion refusal miscoded: {doc}")
            break
    else:
        check(False, "joint group never exhausted after 32 large queries")
        return driven

    client = CoordinatorClient(coordinator_host, coordinator_port)
    try:
        before = client.call("snapshot", owner=f"group:{GROUP}")["budget"]
        # concurrent refusal barrage: every member, every kind, many threads
        outcomes, lock = [], threading.Lock()

        def barrage(worker: int) -> None:
            for kind in KINDS[:3]:
                member = MEMBERS[worker % len(MEMBERS)]
                status, doc = call(url, "/query",
                                   {"dataset": member, "kind": kind,
                                    "epsilon": 10.0 + worker})
                with lock:
                    outcomes.append((status, error_code(doc)))

        threads = [threading.Thread(target=barrage, args=(worker,))
                   for worker in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        driven += len(outcomes)
        check(len(outcomes) == 24, f"barrage lost queries: {len(outcomes)}")
        check(all(outcome == (403, "budget_exceeded") for outcome in outcomes),
              f"non-refusal during exhaustion barrage: {set(outcomes)}")
        after = client.call("snapshot", owner=f"group:{GROUP}")["budget"]
        check(after["spent"] == before["spent"],
              f"refusals changed spent: {before['spent']} -> {after['spent']}")
        check(after["reserved"] == 0.0,
              f"reservations leaked: {after['reserved']}")
    finally:
        client.close()

    # the private dataset's shard-local ledger is a different ledger entirely
    status, doc = call(url, "/query",
                       {"dataset": PRIVATE, "kind": "mean", "epsilon": 0.3})
    driven += 1
    check(status == 200 and doc.get("status") == "ok",
          f"private dataset dragged down by group exhaustion: {doc}")
    print(f"exhaustion verified: ledger untouched by {len(outcomes)} "
          f"concurrent refusals (spent={after['spent']})")
    return driven


# ---------------------------------------------------------------------------
# teardown + forensics


def audit_offline_checks(deploy: Path, artifacts) -> None:
    """Verify every shard's hash chain; copy them out for CI upload."""
    chains = sorted(deploy.glob("audit.shard*.jsonl"))
    check(len(chains) == SHARDS,
          f"expected {SHARDS} audit chains, found {[c.name for c in chains]}")
    records = 0
    for chain in chains:
        result = run_cli("audit", "verify", str(chain))
        check(result.returncode == 0,
              f"audit verify rejected {chain.name}: {result.stdout} "
              f"{result.stderr}")
        records += sum(1 for line in chain.read_text().splitlines() if line)
    check(records > 0, "no shard wrote a single audit record")
    print(f"audit chains verified: {len(chains)} chains, {records} records")
    if artifacts is not None:
        artifacts.mkdir(parents=True, exist_ok=True)
        for chain in chains:
            shutil.copy2(chain, artifacts / chain.name)
        plan = deploy / "plan.json"
        if plan.exists():
            shutil.copy2(plan, artifacts / plan.name)
        print(f"audit chains copied to {artifacts}")


def scan_logs(deploy: Path) -> None:
    logs = sorted(deploy.glob("*.log"))
    check(len(logs) >= SHARDS + 2,
          f"expected logs for coordinator+shards+router, found "
          f"{[log.name for log in logs]}")
    for log in logs:
        text = log.read_text()
        check("Traceback" not in text,
              f"{log.name} contains a stack trace:\n{text[-2000:]}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=160,
                        help="parity-phase query count (total driven is "
                             "higher: batch, error and exhaustion phases)")
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to copy the shard audit chains into "
                             "(for CI artifact upload)")
    args = parser.parse_args()
    artifacts = args.artifacts.resolve() if args.artifacts else None

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        deploy = tmp_path / "deploy"
        config_path = write_deployment(tmp_path)

        up = run_cli("compose", "--up", "--config", str(config_path),
                     "--dir", str(deploy), "--shards", str(SHARDS),
                     timeout=180.0)
        check(up.returncode == 0,
              f"compose --up failed ({up.returncode}):\n{up.stdout}\n"
              f"{up.stderr}")
        if up.returncode != 0:
            return 1
        plan = json.loads((deploy / "plan.json").read_text())
        url = f"http://{plan['host']}:{plan['router_port']}"
        print(f"cluster up: router at {url}, "
              f"coordinator at {plan['host']}:{plan['coordinator_port']}")

        total = 0
        try:
            ps = run_cli("compose", "--ps", "--dir", str(deploy))
            check(ps.returncode == 0 and ps.stdout.count(" up") == SHARDS + 2,
                  f"compose --ps disagrees:\n{ps.stdout}")
            reference = build_reference()
            total += drive_parity(url, reference, args.queries)
            total += drive_batch(url, reference)
            total += drive_error_paths(url)
            drive_aggregation(url)
            total += drive_exhaustion(
                url, plan["host"], plan["coordinator_port"]
            )
            check(total >= 200, f"drive too small: {total} queries")
            print(f"drove {total} queries through the router")
        finally:
            down = run_cli("compose", "--down", "--dir", str(deploy))
            check(down.returncode == 0,
                  f"compose --down failed:\n{down.stdout}\n{down.stderr}")
        check(not (deploy / "state.json").exists(),
              "state.json survived compose --down")
        ps = run_cli("compose", "--ps", "--dir", str(deploy))
        check(ps.returncode == 1, "compose --ps still reports a cluster")
        scan_logs(deploy)
        audit_offline_checks(deploy, artifacts)

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
