"""Budget coordinator: RPC core, TCP server, client, and the remote proxy.

The load-bearing property: the coordinator's reserve→commit is exactly the
local :class:`BudgetManager` protocol executed under one lock, so joint
admission stays atomic when many shard processes hammer one ledger — the
exhaustion test at the bottom drives that concurrently through real
sockets and asserts the ledger never over- or under-counts.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.coordinator import (
    BudgetCoordinator,
    make_coordinator_server,
    serve_in_thread,
)
from repro.cluster.rpc import CoordinatorClient, decode_line, encode_line
from repro.exceptions import (
    BudgetExceededError,
    CoordinatorUnavailableError,
    DomainError,
)
from repro.service.registry import BudgetManager, RemoteBudgetManager


@pytest.fixture
def server():
    server = make_coordinator_server()
    thread = serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def client_for(server, **kwargs):
    host, port = server.server_address[:2]
    return CoordinatorClient(host, port, **kwargs)


class TestFraming:
    def test_round_trip(self):
        line = encode_line({"id": 1, "op": "ping"})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"id": 1, "op": "ping"}

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2]\n")


class TestCoordinatorCore:
    """Dict-in/dict-out, no sockets: the op semantics in isolation."""

    def test_unknown_op_is_an_error_response_not_a_crash(self):
        response = BudgetCoordinator().handle({"id": 3, "op": "explode"})
        assert response["ok"] is False and response["id"] == 3
        assert "unknown op" in response["message"]

    def test_create_is_idempotent_but_conflicts_are_refused(self):
        coordinator = BudgetCoordinator()
        first = coordinator.handle(
            {"id": 1, "op": "create", "owner": "group:g", "capacity": 5.0}
        )
        again = coordinator.handle(
            {"id": 2, "op": "create", "owner": "group:g", "capacity": 5.0}
        )
        assert first["created"] is True and again["created"] is False
        conflict = coordinator.handle(
            {"id": 3, "op": "create", "owner": "group:g", "capacity": 9.0}
        )
        assert conflict["ok"] is False
        assert "conflicting" in conflict["message"]

    def test_reserve_commit_updates_ledger(self):
        coordinator = BudgetCoordinator()
        coordinator.handle(
            {"id": 1, "op": "create", "owner": "group:g", "capacity": 5.0}
        )
        reserved = coordinator.handle(
            {"id": 2, "op": "reserve", "owner": "group:g", "amount": 2.0}
        )
        assert reserved["ok"] is True
        settled = coordinator.handle(
            {"id": 3, "op": "commit", "token": reserved["token"],
             "actual": 1.5, "label": "q"}
        )
        assert settled["charged"] == 1.5
        snapshot = coordinator.handle(
            {"id": 4, "op": "snapshot", "owner": "group:g"}
        )["budget"]
        assert snapshot["spent"] == 1.5 and snapshot["reserved"] == 0.0

    def test_refusal_leaves_ledger_untouched(self):
        coordinator = BudgetCoordinator()
        coordinator.handle(
            {"id": 1, "op": "create", "owner": "group:g", "capacity": 1.0}
        )
        refused = coordinator.handle(
            {"id": 2, "op": "reserve", "owner": "group:g", "amount": 5.0}
        )
        assert refused["ok"] is False and refused["error"] == "budget_exceeded"
        snapshot = coordinator.handle(
            {"id": 3, "op": "snapshot", "owner": "group:g"}
        )["budget"]
        assert snapshot["spent"] == 0.0 and snapshot["reserved"] == 0.0

    def test_settling_a_token_twice_is_refused(self):
        coordinator = BudgetCoordinator()
        coordinator.handle(
            {"id": 1, "op": "create", "owner": "group:g", "capacity": 5.0}
        )
        token = coordinator.handle(
            {"id": 2, "op": "reserve", "owner": "group:g", "amount": 1.0}
        )["token"]
        coordinator.handle({"id": 3, "op": "cancel", "token": token})
        again = coordinator.handle({"id": 4, "op": "commit", "token": token,
                                    "actual": 1.0, "label": "x"})
        assert again["ok"] is False and "unknown reservation token" in again["message"]


class TestClientOverSockets:
    def test_ping(self, server):
        client = client_for(server)
        try:
            assert client.ping() is True
        finally:
            client.close()

    def test_budget_exceeded_maps_to_the_local_exception(self, server):
        client = client_for(server)
        try:
            client.call("create", owner="group:g", capacity=1.0)
            with pytest.raises(BudgetExceededError):
                client.call("reserve", owner="group:g", amount=2.0)
        finally:
            client.close()

    def test_domain_errors_map_to_domain_error(self, server):
        client = client_for(server)
        try:
            with pytest.raises(DomainError):
                client.call("snapshot", owner="group:never-created")
        finally:
            client.close()

    def test_unreachable_coordinator_raises_unavailable(self):
        client = CoordinatorClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(CoordinatorUnavailableError):
            client.ping()

    def test_stale_keepalive_socket_is_reconnected_for_idempotent_ops(self, server):
        client = client_for(server)
        try:
            assert client.ping() is True
            # kill the server side of the keep-alive socket; the next
            # idempotent call must silently reconnect
            client._sock.close()
            assert client.ping() is True
        finally:
            client.close()


class TestRemoteBudgetManagerParity:
    """The proxy must be behaviourally indistinguishable from a local manager."""

    def test_protocol_parity_with_local_manager(self, server):
        client = client_for(server)
        local = BudgetManager(10.0, analyst_budgets={"alice": 3.0})
        remote = RemoteBudgetManager(
            "group:parity", client, capacity=10.0,
            analyst_budgets={"alice": 3.0},
        )
        try:
            for manager in (local, remote):
                reservation = manager.reserve(2.0, analyst="alice")
                assert manager.commit(reservation, 1.25, label="q1") == 1.25
                cancelled = manager.reserve(4.0)
                manager.cancel(cancelled)
                with pytest.raises(BudgetExceededError):
                    manager.reserve(2.5, analyst="alice")  # alice cap: 3.0
            assert remote.spent == local.spent == 1.25
            assert remote.remaining == local.remaining
            assert remote.reserved == local.reserved == 0.0
            assert remote.analyst_remaining("alice") == local.analyst_remaining(
                "alice"
            )
        finally:
            client.close()

    def test_two_clients_share_one_ledger(self, server):
        first, second = client_for(server), client_for(server)
        try:
            a = RemoteBudgetManager("group:shared", first, capacity=3.0)
            b = RemoteBudgetManager("group:shared", second, capacity=3.0)
            a.commit(a.reserve(2.0), 2.0, label="from-a")
            # shard B sees A's spend instantly: one ledger, not two
            assert b.spent == 2.0
            with pytest.raises(BudgetExceededError):
                b.reserve(2.0)
        finally:
            first.close()
            second.close()

    def test_conflicting_mount_is_refused(self, server):
        client = client_for(server)
        try:
            RemoteBudgetManager("group:cfg", client, capacity=5.0)
            with pytest.raises(DomainError):
                RemoteBudgetManager("group:cfg", client, capacity=7.0)
        finally:
            client.close()

    def test_rotate_analyst_budgets(self, server):
        client = client_for(server)
        try:
            manager = RemoteBudgetManager("group:rot", client, capacity=5.0)
            manager.rotate_analyst_budgets({"bob": 1.0})
            assert manager.analyst_remaining("bob") == 1.0
            with pytest.raises(BudgetExceededError):
                manager.reserve(1.5, analyst="bob")
        finally:
            client.close()


class TestConcurrentExhaustion:
    def test_exactly_capacity_commits_under_concurrent_hammer(self, server):
        """Many threads × several clients racing one ledger of capacity 10.

        Exactly 10 unit reservations may ever be admitted; every other
        attempt must refuse with the ledger untouched.  This is the
        cluster-wide atomicity claim of the coordinator in miniature.
        """
        capacity, workers, attempts_each = 10, 8, 5
        clients = [client_for(server) for _ in range(4)]
        managers = [
            RemoteBudgetManager("group:hammer", client, capacity=float(capacity))
            for client in clients
        ]
        committed, refused = [], []
        record_lock = threading.Lock()
        start = threading.Barrier(workers)

        def hammer(worker):
            manager = managers[worker % len(managers)]
            start.wait()
            for attempt in range(attempts_each):
                try:
                    reservation = manager.reserve(1.0)
                except BudgetExceededError:
                    with record_lock:
                        refused.append((worker, attempt))
                    continue
                charged = manager.commit(
                    reservation, 1.0, label=f"w{worker}a{attempt}"
                )
                with record_lock:
                    committed.append(charged)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        try:
            assert len(committed) == capacity
            assert len(refused) == workers * attempts_each - capacity
            snapshot = managers[0].to_json()
            assert snapshot["spent"] == float(capacity)
            assert snapshot["reserved"] == 0.0
            assert snapshot["remaining"] == 0.0
        finally:
            for client in clients:
                client.close()
