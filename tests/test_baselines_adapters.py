"""Tests for the universal-estimator adapters exposed through the baseline interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import UniversalIQR, UniversalMean, UniversalVariance, describe_baselines
from repro.distributions import Gaussian


class TestUniversalAdapters:
    def test_no_assumptions_declared(self):
        for adapter in (UniversalMean(), UniversalVariance(), UniversalIQR()):
            assert adapter.assumptions == frozenset()
            assert adapter.privacy == "pure"

    def test_mean_adapter_matches_core_accuracy(self, rng):
        data = Gaussian(10.0, 1.0).sample(20_000, rng)
        assert UniversalMean().estimate(data, 0.5, rng) == pytest.approx(10.0, abs=0.3)

    def test_variance_adapter(self, rng):
        data = Gaussian(0.0, 2.0).sample(20_000, rng)
        assert UniversalVariance().estimate(data, 0.5, rng) == pytest.approx(4.0, rel=0.25)

    def test_iqr_adapter(self, rng):
        dist = Gaussian(0.0, 3.0)
        data = dist.sample(10_000, rng)
        assert UniversalIQR().estimate(data, 1.0, rng) == pytest.approx(dist.iqr, rel=0.2)

    def test_describe_baselines_collects_metadata(self):
        descriptions = describe_baselines([UniversalMean(), UniversalIQR()])
        assert [d.target for d in descriptions] == ["mean", "iqr"]
        assert all(d.assumptions == frozenset() for d in descriptions)
