"""Tests for the discretization grid (Section 3.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domain import Grid
from repro.exceptions import DomainError


class TestGridConstruction:
    def test_unit_grid(self):
        assert Grid.unit().bucket_size == 1.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_bucket_rejected(self, bad):
        with pytest.raises(DomainError):
            Grid(bad)


class TestGridMapping:
    def test_integer_data_unit_grid_roundtrip(self):
        grid = Grid.unit()
        data = np.array([-3.0, 0.0, 7.0])
        np.testing.assert_array_equal(grid.from_grid(grid.to_grid(data)), data)

    def test_rounding_to_nearest_bucket(self):
        grid = Grid(0.5)
        np.testing.assert_array_equal(grid.to_grid([0.24, 0.26, -0.74]), [0, 1, -1])

    def test_scalar_roundtrip(self):
        grid = Grid(0.25)
        assert grid.from_grid_scalar(grid.to_grid_scalar(3.1)) == pytest.approx(3.1, abs=0.125)

    def test_round_trip_error_bound(self):
        grid = Grid(0.2)
        assert grid.round_trip_error_bound() == pytest.approx(0.1)

    def test_non_finite_values_rejected(self):
        with pytest.raises(DomainError):
            Grid(1.0).to_grid([1.0, float("nan")])
        with pytest.raises(DomainError):
            Grid(1.0).to_grid_scalar(float("inf"))

    def test_overflowing_indices_rejected(self):
        with pytest.raises(DomainError):
            Grid(1e-12).to_grid([1e55])

    def test_empty_input_allowed(self):
        assert Grid(1.0).to_grid([]).size == 0

    @given(
        bucket=st.floats(min_value=1e-3, max_value=100.0),
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip_error_within_half_bucket(self, bucket, values):
        grid = Grid(bucket)
        data = np.asarray(values)
        recovered = grid.from_grid(grid.to_grid(data))
        assert np.all(np.abs(recovered - data) <= bucket / 2.0 + 1e-9 * np.abs(data) + 1e-12)

    @given(bucket=st.floats(min_value=1e-3, max_value=10.0), value=st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_property_grid_points_map_exactly(self, bucket, value):
        """Values that already lie on the grid survive the round trip exactly (up to float error)."""
        grid = Grid(bucket)
        x = value * bucket
        assert grid.from_grid_scalar(grid.to_grid_scalar(x)) == pytest.approx(x, rel=1e-9, abs=1e-9)


class TestDatasetHelpers:
    def test_radius_width_range(self):
        from repro.domain import dataset_radius, dataset_range, dataset_width

        data = [-4.0, 1.0, 10.0]
        assert dataset_radius(data) == 10.0
        assert dataset_width(data) == 14.0
        assert dataset_range(data) == (-4.0, 10.0)

    def test_radius_uses_absolute_value(self):
        from repro.domain import dataset_radius

        assert dataset_radius([-20.0, 3.0]) == 20.0

    def test_empty_rejected(self):
        from repro.domain import dataset_radius, dataset_range, dataset_width
        from repro.exceptions import InsufficientDataError

        for fn in (dataset_radius, dataset_width, dataset_range):
            with pytest.raises(InsufficientDataError):
                fn([])

    def test_sort_values(self):
        from repro.domain import sort_values

        np.testing.assert_array_equal(sort_values([3.0, 1.0, 2.0]), [1.0, 2.0, 3.0])
