"""Tests for the declarative serving config and config-driven service boot."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.service import (
    Query,
    QueryRequest,
    build_service,
    load_serving_config,
    parse_serving_config,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

TOML_TEXT = """
# A three-dataset deployment with one joint budget group.
[service]
seed = 11
workers = 1
cache_size = 128
frontend = "async"
port = 0

[groups.clinical]
budget = 1.5
[groups.clinical.analyst_budgets]
dashboard = 0.5

[[datasets]]
name = "salaries"
source = "salaries.csv"
column = "salary"
budget = 6.0
[datasets.analyst_budgets]
alice = 2.0

[[datasets]]
name = "heights"
source = "heights.npy"
group = "clinical"

[[datasets]]
name = "weights"
values = [60.0, 61.5, 72.0, 80.25, 55.0, 90.0, 77.0, 66.0, 59.5, 83.0]
group = "clinical"
"""


@pytest.fixture
def config_dir(tmp_path):
    (tmp_path / "salaries.csv").write_text(
        "salary\n" + "\n".join(f"{40_000 + 137 * i}" for i in range(200)) + "\n"
    )
    np.save(tmp_path / "heights.npy", np.random.default_rng(5).normal(170, 8, 500))
    (tmp_path / "serving.toml").write_text(TOML_TEXT)
    return tmp_path


class TestParsing:
    def test_toml_roundtrip(self, config_dir):
        config = load_serving_config(config_dir / "serving.toml")
        assert config.seed == 11
        assert config.frontend == "async"
        assert config.cache_size == 128
        assert config.port == 0
        assert [d.name for d in config.datasets] == ["salaries", "heights", "weights"]
        assert config.datasets[0].budget == pytest.approx(6.0)
        assert config.datasets[0].analyst_budgets == {"alice": 2.0}
        assert config.datasets[1].group == "clinical"
        assert config.datasets[2].values is not None
        (group,) = config.groups
        assert group.name == "clinical"
        assert group.budget == pytest.approx(1.5)
        assert group.analyst_budgets == {"dashboard": 0.5}
        assert config.base_dir == config_dir

    def test_json_mirrors_toml_structure(self, tmp_path):
        document = {
            "service": {"seed": 3, "frontend": "threaded"},
            "groups": {"g": {"budget": 2.0}},
            "datasets": [
                {"name": "a", "values": [1.0] * 20, "budget": 1.0},
                {"name": "b", "values": [2.0] * 20, "group": "g"},
            ],
        }
        path = tmp_path / "serving.json"
        path.write_text(json.dumps(document))
        config = load_serving_config(path)
        assert config.seed == 3
        assert config.datasets[1].group == "g"

    def test_example_serving_toml_parses(self):
        config = load_serving_config(EXAMPLES_DIR / "serving.toml")
        assert len(config.datasets) >= 3
        assert config.groups  # the documented example demonstrates a joint group
        # ...and a kinds allowlist featuring an adapted baseline kind.
        assert any(
            dataset.kinds and any(kind.startswith("baseline.") for kind in dataset.kinds)
            for dataset in config.datasets
        )

    def test_kinds_allowlist_parsed_and_enforced(self):
        document = {
            "datasets": [
                {"name": "a", "values": [float(i) for i in range(32)],
                 "budget": 5.0, "kinds": ["mean", "baseline.bounded_laplace_mean"]},
            ]
        }
        config = parse_serving_config(document)
        assert config.datasets[0].kinds == ("mean", "baseline.bounded_laplace_mean")
        with build_service(config) as built:
            service = built.service
            assert service.registry.get("a").kinds == (
                "mean", "baseline.bounded_laplace_mean",
            )
            assert service.query("a", "mean", 0.2).ok
            spent = service.registry.get("a").budget.spent
            blocked = service.query("a", "iqr", 0.2)
            assert blocked.status == "invalid"
            assert "not served" in blocked.message
            # The rejection happened before admission: nothing was spent.
            assert service.registry.get("a").budget.spent == spent

    @pytest.mark.parametrize(
        "document, fragment",
        [
            ({}, "at least one"),
            ({"datasets": [{"name": "a", "values": [1.0]}]}, "budget= or group="),
            (
                {"datasets": [{"name": "a", "values": [1.0], "budget": 1.0,
                               "group": "g"}]},
                "budget= or group=",
            ),
            (
                {"datasets": [{"name": "a", "budget": 1.0}]},
                "source= or values=",
            ),
            (
                {"datasets": [{"name": "a", "source": "x.csv", "budget": 1.0}]},
                "column=",
            ),
            (
                {"datasets": [{"name": "a", "source": "x.npy", "column": "c",
                               "budget": 1.0}]},
                "only for .csv",
            ),
            (
                {"datasets": [{"name": "a", "values": [1.0], "group": "ghost"}]},
                "unknown group",
            ),
            (
                {"datasets": [{"name": "a", "values": [1.0], "budget": 1.0},
                              {"name": "a", "values": [1.0], "budget": 1.0}]},
                "duplicate",
            ),
            (
                {"service": {"frontend": "rocket"},
                 "datasets": [{"name": "a", "values": [1.0], "budget": 1.0}]},
                "frontend",
            ),
            (
                {"service": {"bogus": 1},
                 "datasets": [{"name": "a", "values": [1.0], "budget": 1.0}]},
                "unknown keys",
            ),
            (
                {"groups": {"g": {"budget": 1.0}},
                 "datasets": [{"name": "a", "values": [1.0], "group": "g",
                               "analyst_budgets": {"x": 0.1}}]},
                "analyst budgets",
            ),
            (
                {"datasets": [{"name": "a", "values": [1.0], "budget": 1.0,
                               "kinds": []}]},
                "kinds",
            ),
            (
                {"datasets": [{"name": "a", "values": [1.0], "budget": 1.0,
                               "kinds": ["mean", "mode"]}]},
                "unknown estimator kind",
            ),
        ],
    )
    def test_invalid_documents_rejected(self, document, fragment):
        with pytest.raises(DomainError, match=fragment):
            parse_serving_config(document)

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(DomainError, match="not found"):
            load_serving_config(tmp_path / "nope.toml")
        bad = tmp_path / "serving.yaml"
        bad.write_text("x")
        with pytest.raises(DomainError, match=".toml or .json"):
            load_serving_config(bad)


class TestBuildService:
    def test_builds_all_datasets_and_groups(self, config_dir):
        config = load_serving_config(config_dir / "serving.toml")
        with build_service(config) as built:
            service = built.service
            assert service.registry.names() == ["heights", "salaries", "weights"]
            assert service.seed == 11
            assert service.cache.stats.maxsize == 128
            heights = service.registry.get("heights")
            weights = service.registry.get("weights")
            assert heights.budget is weights.budget  # one shared manager
            assert heights.group == weights.group == "clinical"
            salaries = service.registry.get("salaries")
            assert salaries.budget.capacity == pytest.approx(6.0)
            assert salaries.group is None

    def test_column_marks_source_as_csv_whatever_the_suffix(self, tmp_path):
        """Regression: the legacy CLI serves extensionless delimited files."""
        from repro.service import DatasetConfig, ServingConfig

        source = tmp_path / "data.txt"
        source.write_text("v\n" + "\n".join(str(float(i)) for i in range(50)) + "\n")
        config = ServingConfig(
            datasets=(
                DatasetConfig(
                    name="d", source=str(source), column="v", budget=1.0
                ),
            ),
        )
        with build_service(config) as built:
            assert built.service.registry.get("d").records == 50

    def test_missing_source_file_is_clean_error(self, tmp_path):
        (tmp_path / "serving.toml").write_text(
            '[[datasets]]\nname = "a"\nsource = "ghost.npy"\nbudget = 1.0\n'
        )
        config = load_serving_config(tmp_path / "serving.toml")
        with pytest.raises(DomainError, match="ghost.npy"):
            build_service(config)

    def test_joint_group_exhaustion_refuses_every_member(self, config_dir):
        """Exhausting the joint cap refuses on all members; ledger unchanged."""
        config = load_serving_config(config_dir / "serving.toml")
        with build_service(config) as built:
            service = built.service
            manager = service.registry.get("heights").budget
            # Spend the 1.5 joint cap through one member with distinct
            # queries (identical repeats would come from cache) until the
            # admission check starts refusing: remaining < 0.45 afterwards.
            for step in range(16):
                answer = service.query("heights", "mean", epsilon=0.45 + step / 1000)
                if answer.status == "refused":
                    break
                assert answer.ok
            else:
                pytest.fail("the joint cap never exhausted")
            spent_at_exhaustion = manager.spent
            assert spent_at_exhaustion > 0
            spends = len(manager.ledger)
            # Now no member can fit a >= 0.46 query: the refusal must come
            # from the shared cap, on every member, leaving it untouched.
            for offset, dataset in enumerate(("heights", "weights")):
                refused = service.query(dataset, "mean", epsilon=0.47 + offset / 1000)
                assert refused.status == "refused", dataset
                assert refused.error == "budget_exceeded"
            assert manager.spent == spent_at_exhaustion
            assert len(manager.ledger) == spends
            assert manager.reserved == 0.0

    def test_group_spend_is_visible_on_every_member(self, config_dir):
        config = load_serving_config(config_dir / "serving.toml")
        with build_service(config) as built:
            service = built.service
            answer = service.query("weights", "mean", epsilon=0.5)
            assert answer.ok
            stats = service.stats()
            by_name = {d["name"]: d for d in stats["datasets"]}
            assert by_name["heights"]["budget"]["spent"] == pytest.approx(
                by_name["weights"]["budget"]["spent"]
            )
            assert stats["groups"]["clinical"]["datasets"] == ["heights", "weights"]
            assert stats["groups"]["clinical"]["budget"]["spent"] == pytest.approx(
                answer.epsilon_charged
            )

    def test_group_analyst_budget_spans_members(self, config_dir):
        config = load_serving_config(config_dir / "serving.toml")
        with build_service(config) as built:
            service = built.service
            first = service.query(
                "heights", "mean", epsilon=0.4, analyst="dashboard"
            )
            assert first.ok
            # dashboard's 0.5 group-wide sub-budget is nearly gone; a second
            # 0.4 query on the *other* member must be refused for them...
            refused = service.query(
                "weights", "mean", epsilon=0.4, analyst="dashboard"
            )
            assert refused.status == "refused"
            # ...while an uncapped analyst still has the group total to draw on.
            assert service.query("weights", "mean", epsilon=0.4).ok
