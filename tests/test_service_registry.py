"""Tests for the dataset registry and the reserve/commit budget manager."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine import SharedArray
from repro.exceptions import BudgetExceededError, DomainError, InsufficientDataError
from repro.service import BudgetManager, DatasetRegistry, UnknownDatasetError


class TestBudgetManager:
    def test_reserve_commit_records_actual_spend(self):
        manager = BudgetManager(2.0)
        reservation = manager.reserve(1.0)
        assert manager.reserved == pytest.approx(1.0)
        assert manager.remaining == pytest.approx(1.0)
        manager.commit(reservation, 0.8, label="q1")
        assert manager.spent == pytest.approx(0.8)
        assert manager.reserved == pytest.approx(0.0)
        assert manager.remaining == pytest.approx(1.2)
        assert len(manager.ledger) == 1

    def test_refusal_leaves_ledger_unchanged(self):
        manager = BudgetManager(1.0)
        manager.commit(manager.reserve(0.7), 0.7, label="q1")
        spends_before = list(manager.ledger)
        with pytest.raises(BudgetExceededError):
            manager.reserve(0.5)
        assert list(manager.ledger) == spends_before
        assert manager.spent == pytest.approx(0.7)
        assert manager.reserved == pytest.approx(0.0)

    def test_reservations_block_concurrent_oversubscription(self):
        manager = BudgetManager(1.0)
        first = manager.reserve(0.6)
        with pytest.raises(BudgetExceededError):
            manager.reserve(0.6)  # 0.6 held + 0.6 requested > 1.0
        manager.cancel(first)
        manager.reserve(0.6)  # fits again once the hold is released

    def test_cancel_releases_without_spend(self):
        manager = BudgetManager(1.0)
        reservation = manager.reserve(0.9)
        manager.cancel(reservation)
        assert manager.spent == 0.0
        assert manager.remaining == pytest.approx(1.0)
        assert len(manager.ledger) == 0

    def test_commit_zero_actual_has_no_ledger_entry(self):
        manager = BudgetManager(1.0)
        manager.commit(manager.reserve(0.5), 0.0, label="nothing-ran")
        assert len(manager.ledger) == 0
        assert manager.remaining == pytest.approx(1.0)

    def test_exact_fill_is_admitted(self):
        manager = BudgetManager(1.0)
        manager.commit(manager.reserve(0.5), 0.5, label="a")
        manager.commit(manager.reserve(0.5), 0.5, label="b")
        with pytest.raises(BudgetExceededError):
            manager.reserve(1e-6)

    def test_analyst_sub_budget_enforced(self):
        manager = BudgetManager(10.0, analyst_budgets={"alice": 1.0})
        manager.commit(manager.reserve(0.8, analyst="alice"), 0.8, label="a")
        with pytest.raises(BudgetExceededError):
            manager.reserve(0.5, analyst="alice")
        # Other analysts only see the (ample) total budget.
        manager.reserve(0.5, analyst="bob")
        assert manager.analyst_remaining("alice") == pytest.approx(0.2)
        assert manager.analyst_remaining("bob") is None

    def test_analyst_reservation_rolls_back_on_cancel(self):
        manager = BudgetManager(10.0, analyst_budgets={"alice": 1.0})
        reservation = manager.reserve(1.0, analyst="alice")
        manager.cancel(reservation)
        assert manager.analyst_remaining("alice") == pytest.approx(1.0)

    def test_total_cap_refusal_does_not_leak_analyst_reservation(self):
        manager = BudgetManager(1.0, analyst_budgets={"alice": 5.0})
        with pytest.raises(BudgetExceededError):
            manager.reserve(2.0, analyst="alice")
        assert manager.analyst_remaining("alice") == pytest.approx(5.0)

    def test_concurrent_reserves_never_oversubscribe(self):
        manager = BudgetManager(1.0)
        threads = 8
        barrier = threading.Barrier(threads)
        admitted = []

        def worker():
            barrier.wait()
            for _ in range(20):
                try:
                    reservation = manager.reserve(0.05)
                except BudgetExceededError:
                    continue
                manager.commit(reservation, 0.05, label="w")
                admitted.append(1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert manager.spent <= 1.0 + 1e-6
        assert len(admitted) == 20  # exactly capacity / step

    def test_invalid_capacity_rejected(self):
        with pytest.raises(Exception):
            BudgetManager(0.0)

    def test_to_json_snapshot(self):
        manager = BudgetManager(2.0, analyst_budgets={"a": 1.0})
        manager.commit(manager.reserve(0.5, analyst="a"), 0.4, label="x")
        doc = manager.to_json()
        assert doc["capacity"] == pytest.approx(2.0)
        assert doc["spent"] == pytest.approx(0.4)
        assert doc["remaining"] == pytest.approx(1.6)
        assert doc["analysts"]["a"]["spent"] == pytest.approx(0.4)

    def test_many_small_commits_drift_does_not_refuse_exact_fill(self):
        """Regression: the admission tolerance must scale with the capacity.

        100k commits of 0.01 against a cap of 1000 accumulate float summation
        error of order ``n * ulp(capacity)`` ≈ 1e-8 — far beyond an absolute
        1e-9 tolerance, which would wrongly refuse the final exactly-fitting
        query.  The capacity-relative slack admits it.
        """
        steps = 100_000
        amount = 0.01
        manager = BudgetManager(steps * amount)
        for index in range(steps - 1):
            manager.commit(manager.reserve(amount), amount, label=f"q{index}")
        drift = abs(manager.spent - (steps - 1) * amount)
        assert drift > 0  # the scenario is real: summation error accumulated
        # The final exactly-fitting claim must still be admitted...
        manager.commit(manager.reserve(amount), amount, label="last")
        # ...and a genuinely over-budget claim still refused.
        with pytest.raises(BudgetExceededError):
            manager.reserve(0.01)

    def test_relative_tolerance_still_refuses_real_overshoot(self):
        manager = BudgetManager(1000.0)
        manager.commit(manager.reserve(999.5), 999.5, label="big")
        with pytest.raises(BudgetExceededError):
            manager.reserve(0.6)

    def test_peek_matches_reserve_without_side_effects(self):
        manager = BudgetManager(1.0)
        assert manager.peek(0.6) is None
        held = manager.reserve(0.6)
        message = manager.peek(0.6)
        assert message is not None and "total budget" in message
        assert manager.reserved == pytest.approx(0.6)  # peek held nothing
        manager.cancel(held)
        assert manager.peek(0.6) is None

    def test_peek_sees_analyst_sub_budget(self):
        manager = BudgetManager(10.0, analyst_budgets={"alice": 0.5})
        assert manager.peek(0.4, analyst="alice") is None
        assert manager.peek(0.6, analyst="alice") is not None
        assert manager.peek(0.6, analyst="bob") is None


class TestBudgetGroups:
    def test_group_shares_one_manager_across_datasets(self):
        with DatasetRegistry() as registry:
            registry.create_group("g", 2.0)
            left = registry.register("left", np.arange(50.0), group="g")
            right = registry.register("right", np.arange(50.0), group="g")
            assert left.budget is right.budget
            assert left.group == right.group == "g"
            left.budget.commit(left.budget.reserve(1.5), 1.5, label="x")
            # The spend is visible from (and constrains) the other member.
            assert right.budget.spent == pytest.approx(1.5)
            with pytest.raises(BudgetExceededError):
                right.budget.reserve(1.0)

    def test_register_requires_exactly_one_budget_source(self):
        with DatasetRegistry() as registry:
            registry.create_group("g", 1.0)
            with pytest.raises(DomainError):
                registry.register("a", np.arange(10.0))  # neither
            with pytest.raises(DomainError):
                registry.register("a", np.arange(10.0), 1.0, group="g")  # both

    def test_unknown_group_rejected(self):
        with DatasetRegistry() as registry:
            with pytest.raises(DomainError, match="ghost"):
                registry.register("a", np.arange(10.0), group="ghost")

    def test_duplicate_group_rejected(self):
        with DatasetRegistry() as registry:
            registry.create_group("g", 1.0)
            with pytest.raises(DomainError):
                registry.create_group("g", 2.0)

    def test_member_analyst_budgets_rejected(self):
        with DatasetRegistry() as registry:
            registry.create_group("g", 1.0)
            with pytest.raises(DomainError, match="create_group"):
                registry.register(
                    "a", np.arange(10.0), group="g", analyst_budgets={"x": 0.5}
                )

    def test_groups_json_lists_members_and_budget(self):
        with DatasetRegistry() as registry:
            registry.create_group("g", 2.0)
            registry.register("b", np.arange(20.0), group="g")
            registry.register("a", np.arange(20.0), group="g")
            registry.register("solo", np.arange(20.0), 1.0)
            doc = registry.groups_json()
            assert set(doc) == {"g"}
            assert doc["g"]["datasets"] == ["a", "b"]
            assert doc["g"]["budget"]["capacity"] == pytest.approx(2.0)


class TestDatasetRegistry:
    def test_register_and_get(self):
        with DatasetRegistry() as registry:
            dataset = registry.register("d", np.arange(100.0), 1.0)
            assert registry.get("d") is dataset
            assert dataset.records == 100
            assert dataset.dimension == 1
            assert not dataset.shared

    def test_unknown_dataset_raises(self):
        with DatasetRegistry() as registry:
            with pytest.raises(UnknownDatasetError):
                registry.get("nope")

    def test_duplicate_name_rejected(self):
        with DatasetRegistry() as registry:
            registry.register("d", np.arange(10.0), 1.0)
            with pytest.raises(DomainError):
                registry.register("d", np.arange(10.0), 1.0)

    def test_empty_and_non_finite_data_rejected(self):
        with DatasetRegistry() as registry:
            with pytest.raises(InsufficientDataError):
                registry.register("empty", np.empty(0), 1.0)
            with pytest.raises(DomainError):
                registry.register("nan", np.array([1.0, np.nan]), 1.0)

    def test_matrix_dataset_dimension(self):
        with DatasetRegistry() as registry:
            dataset = registry.register("m", np.zeros((50, 4)), 1.0)
            assert dataset.dimension == 4
            assert dataset.records == 50

    def test_three_dimensional_data_rejected(self):
        with DatasetRegistry() as registry:
            with pytest.raises(DomainError):
                registry.register("cube", np.zeros((4, 4, 4)), 1.0)

    def test_shared_registration_uses_shared_memory(self):
        with DatasetRegistry() as registry:
            dataset = registry.register("s", np.arange(64.0), 1.0, share=True)
            assert dataset.shared
            assert isinstance(dataset.data.base, SharedArray)
            # Declared sketches ride the shared hand-off too.
            for sketch in dataset.data.sketches().values():
                assert isinstance(sketch, SharedArray)
            np.testing.assert_array_equal(np.asarray(dataset.data), np.arange(64.0))

    def test_shared_registration_without_sketches_stores_bare_segment(self):
        with DatasetRegistry() as registry:
            dataset = registry.register(
                "s", np.arange(64.0), 1.0, share=True, sketches=False
            )
            assert dataset.shared
            assert isinstance(dataset.data, SharedArray)
            np.testing.assert_array_equal(np.asarray(dataset.data), np.arange(64.0))

    def test_close_unlinks_shared_segments(self):
        registry = DatasetRegistry()
        dataset = registry.register("s", np.arange(16.0), 1.0, share=True)
        names = [dataset.data.base.name] + [
            sketch.name for sketch in dataset.data.sketches().values()
        ]
        assert len(names) > 1  # base plus at least one sketch segment
        registry.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_unregister(self):
        with DatasetRegistry() as registry:
            registry.register("d", np.arange(10.0), 1.0)
            registry.unregister("d")
            assert "d" not in registry
            with pytest.raises(UnknownDatasetError):
                registry.unregister("d")
