"""Tests for privacy amplification by sub-sampling (Theorem 2.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PrivacyParameterError
from repro.mechanisms import amplified_epsilon, inner_epsilon_for_target, subsample


class TestAmplifiedEpsilon:
    def test_full_sampling_is_identity(self):
        assert amplified_epsilon(0.7, 1.0) == pytest.approx(0.7)

    def test_amplification_reduces_epsilon(self):
        assert amplified_epsilon(1.0, 0.1) < 1.0

    def test_small_epsilon_approximation(self):
        # For small eps, log(1 + eta (e^eps - 1)) ~= eta * eps.
        assert amplified_epsilon(0.01, 0.2) == pytest.approx(0.002, rel=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(PrivacyParameterError):
            amplified_epsilon(1.0, 0.0)
        with pytest.raises(PrivacyParameterError):
            amplified_epsilon(1.0, 1.5)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyParameterError):
            amplified_epsilon(-1.0, 0.5)


class TestInnerEpsilonForTarget:
    def test_inverts_amplification(self):
        for target, eta in [(0.5, 0.1), (1.0, 0.05), (0.2, 0.5)]:
            inner = inner_epsilon_for_target(target, eta)
            assert amplified_epsilon(inner, eta) == pytest.approx(target, rel=1e-9)

    def test_matches_paper_formula_for_eta_equal_epsilon(self):
        # Algorithm 8 sets eps' = log((e^eps - 1)/eps + 1) for eta = eps.
        epsilon = 0.3
        expected = math.log((math.exp(epsilon) - 1.0) / epsilon + 1.0)
        assert inner_epsilon_for_target(epsilon, epsilon) == pytest.approx(expected)

    def test_inner_is_larger_than_target(self):
        assert inner_epsilon_for_target(0.5, 0.1) > 0.5

    @given(
        target=st.floats(min_value=0.01, max_value=2.0),
        eta=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, target, eta):
        inner = inner_epsilon_for_target(target, eta)
        assert amplified_epsilon(inner, eta) == pytest.approx(target, rel=1e-6)


class TestSubsample:
    def test_sample_size_respected(self, rng):
        data = np.arange(100, dtype=float)
        assert subsample(data, 10, rng).size == 10

    def test_sample_without_replacement(self, rng):
        data = np.arange(50, dtype=float)
        draw = subsample(data, 50, rng)
        assert sorted(draw.tolist()) == list(range(50))

    def test_size_clamped_to_dataset(self, rng):
        data = np.arange(5, dtype=float)
        assert subsample(data, 100, rng).size == 5

    def test_size_clamped_to_at_least_one(self, rng):
        data = np.arange(5, dtype=float)
        assert subsample(data, 0, rng).size == 1

    def test_values_come_from_dataset(self, rng):
        data = np.array([3.5, -2.0, 7.25])
        draw = subsample(data, 2, rng)
        assert all(v in data for v in draw)

    def test_empty_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            subsample([], 1, rng)
