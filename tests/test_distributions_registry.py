"""Tests for the distribution registry."""

from __future__ import annotations

import pytest

from repro.distributions import (
    Distribution,
    available_distributions,
    make_distribution,
    standard_suite,
)
from repro.exceptions import DomainError


class TestRegistry:
    def test_all_registered_specs_build(self):
        for spec in available_distributions():
            dist = spec.build()
            assert isinstance(dist, Distribution)
            assert dist.variance > 0

    def test_make_by_key(self):
        dist = make_distribution("gaussian")
        assert dist.mean == pytest.approx(0.0)

    def test_make_with_overrides(self):
        dist = make_distribution("gaussian", mu=7.0, sigma=3.0)
        assert dist.mean == pytest.approx(7.0)
        assert dist.std == pytest.approx(3.0)

    def test_unknown_key_raises(self):
        with pytest.raises(DomainError):
            make_distribution("not-a-distribution")

    def test_specs_have_descriptions(self):
        for spec in available_distributions():
            assert spec.description
            assert spec.key

    def test_standard_suite_is_diverse(self):
        suite = standard_suite()
        assert len(suite) >= 5
        names = {d.name for d in suite}
        assert len(names) == len(suite)

    def test_shifted_gaussian_has_large_mean(self):
        dist = make_distribution("gaussian_shifted")
        assert abs(dist.mean) >= 1e5

    def test_spike_is_ill_behaved(self):
        dist = make_distribution("spike")
        assert dist.phi(1.0 / 16.0) < 0.01 * dist.std
