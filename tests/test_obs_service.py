"""Integration tests for observability: tracing, audit trail, spend accounting.

The acceptance contracts pinned here:

* answers with tracing + auditing enabled are bit-for-bit identical to the
  same service without them (observation never perturbs the release);
* every privacy-relevant decision appends exactly one audit record, and
  :func:`repro.obs.replay_spend` reproduces the live
  :class:`~repro.service.BudgetManager` ledger totals exactly;
* both HTTP front-ends echo the trace id, honour ``X-Repro-Trace-Id``, and
  serve ``GET /debug/traces``;
* every request is observed by the latency recorder exactly once.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import AuditLog, TraceRecorder, replay_spend, verify_audit_log
from repro.service import (
    AdminController,
    ObservabilityConfig,
    Query,
    QueryRequest,
    QueryService,
    ReloadRejected,
    AsyncServerThread,
    diff_serving_configs,
    make_server,
    render_prometheus,
    serve_forever,
)
from repro.service.admin import ConfigChange
from repro.service.config import parse_serving_config


@pytest.fixture
def data():
    return np.random.default_rng(3).normal(100.0, 15.0, size=8_000)


def make_observed_service(data, tmp_path, *, seed=7, budget=20.0, **register):
    tracer = TraceRecorder(ring=64)
    audit = AuditLog(tmp_path / "audit.jsonl")
    service = QueryService(seed=seed, tracer=tracer, audit=audit)
    service.register("d", data, budget, **register)
    return service


def audit_events(service):
    path = service.audit.path
    return [json.loads(line)["event"] for line in path.read_text().splitlines()]


# ---------------------------------------------------------------------------
# Observation never perturbs answers
# ---------------------------------------------------------------------------
class TestObservationIsFree:
    QUERIES = [
        ("mean", 0.5, {}),
        ("variance", 0.7, {}),
        ("quantile", 0.5, {"levels": [0.25, 0.75]}),
        ("iqr", 0.3, {}),
    ]

    def test_answers_bit_identical_with_and_without_observability(
        self, data, tmp_path
    ):
        plain = QueryService(seed=7)
        plain.register("d", data, 20.0)
        observed = make_observed_service(data, tmp_path, seed=7)

        for kind, epsilon, params in self.QUERIES:
            bare = plain.query("d", kind, epsilon=epsilon, **params)
            request = QueryRequest(
                "d", Query(kind=kind, epsilon=epsilon, params=params or None)
            )
            trace = observed.tracer.start(None, frontend="test")
            traced = observed.submit(request, trace=trace)
            observed.tracer.finish(trace)
            assert traced.status == bare.status == "ok"
            assert traced.value == bare.value  # exact, not approx
            assert traced.epsilon_charged == bare.epsilon_charged

        # The observed run really did trace and audit everything.
        assert observed.tracer.stats()["recorded"] == len(self.QUERIES)
        assert audit_events(observed).count("commit") == len(self.QUERIES)

    def test_traced_spans_cover_the_pipeline(self, data, tmp_path):
        service = make_observed_service(data, tmp_path)
        request = QueryRequest("d", Query(kind="mean", epsilon=0.5))
        trace = service.tracer.start(None)
        service.submit(request, trace=trace)
        document = service.tracer.finish(trace)
        names = [span["name"] for span in document["spans"]]
        for expected in ("admission", "engine", "commit"):
            assert expected in names, names
        engine = next(s for s in document["spans"] if s["name"] == "engine")
        assert engine["detail"]["cells"] == 1
        assert list(engine["detail"]["per_cell_ms"]) != []


# ---------------------------------------------------------------------------
# Audit trail from real service paths
# ---------------------------------------------------------------------------
class TestServiceAuditTrail:
    def test_lifecycle_events_in_order(self, data, tmp_path):
        service = make_observed_service(data, tmp_path, budget=1.0)
        assert service.query("d", "mean", epsilon=0.5).ok
        assert service.query("d", "mean", epsilon=0.5).cached
        refused = service.query("d", "mean", epsilon=5.0)
        assert refused.status == "refused"
        assert audit_events(service) == [
            "reserve", "commit", "cache_hit", "refuse",
        ]
        records = [
            json.loads(line)
            for line in service.audit.path.read_text().splitlines()
        ]
        assert records[0]["budget"] == "dataset:d"
        assert records[1]["status"] == "ok"
        assert records[3]["reason"] == "budget_exceeded"

    def test_replay_reproduces_ledger_totals_exactly(self, data, tmp_path):
        service = make_observed_service(
            data, tmp_path, budget=50.0, analyst_budgets={"alice": 10.0}
        )
        for kind, epsilon in (
            ("mean", 0.5), ("variance", 0.7), ("iqr", 0.3), ("mean", 0.9)
        ):
            answer = service.submit(
                QueryRequest(
                    "d", Query(kind=kind, epsilon=epsilon), analyst="alice"
                )
            )
            assert answer.ok
        ledger = service.registry.get("d").budget.to_json()
        report = replay_spend(service.audit.path)
        owner = report["owners"]["dataset:d"]
        assert owner["spent"] == ledger["spent"]  # bit-for-bit
        assert owner["analysts"]["alice"] == ledger["analysts"]["alice"]["spent"]
        # The service-wide spend gauges come from the same commits.
        snapshot = service.spend_snapshot()
        assert snapshot["analysts"]["alice"] == owner["spent"]
        assert sum(snapshot["kinds"].values()) == pytest.approx(owner["spent"])

    def test_draining_refusal_audited(self, data, tmp_path):
        service = make_observed_service(data, tmp_path)
        service.registry.set_draining("d", True)
        answer = service.query("d", "mean", epsilon=0.5)
        assert answer.status == "refused"
        records = [
            json.loads(line)
            for line in service.audit.path.read_text().splitlines()
        ]
        assert [r["event"] for r in records] == ["refuse"]
        assert records[0]["reason"] == "draining"


# ---------------------------------------------------------------------------
# Concurrency: no lost/duplicated audit records, replay still exact
# ---------------------------------------------------------------------------
class TestConcurrentAudit:
    THREADS = 4
    DATASETS_PER_THREAD = 3
    EPSILONS = (0.25, 0.5)

    def test_hammer_chain_intact_and_replay_exact(self, tmp_path):
        rng = np.random.default_rng(9)
        service = QueryService(
            seed=5,
            tracer=TraceRecorder(ring=16),
            audit=AuditLog(tmp_path / "audit.jsonl"),
        )
        names = []
        for thread_index in range(self.THREADS):
            for dataset_index in range(self.DATASETS_PER_THREAD):
                name = f"t{thread_index}_d{dataset_index}"
                names.append(name)
                service.register(name, rng.normal(10.0, 2.0, 2_000), 5.0)

        errors = []

        def hammer(thread_index: int) -> None:
            try:
                for dataset_index in range(self.DATASETS_PER_THREAD):
                    name = f"t{thread_index}_d{dataset_index}"
                    for epsilon in self.EPSILONS:
                        answer = service.query(name, "mean", epsilon=epsilon)
                        assert answer.ok, answer
                    # Identical repeat: a zero-spend cache hit, also audited.
                    assert service.query(
                        name, "mean", epsilon=self.EPSILONS[0]
                    ).cached
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(n,))
            for n in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert errors == []

        commits = self.THREADS * self.DATASETS_PER_THREAD * len(self.EPSILONS)
        hits = self.THREADS * self.DATASETS_PER_THREAD
        # verify_audit_log checks seq contiguity: lost or duplicated records
        # under concurrency would break it.
        count, _ = verify_audit_log(service.audit.path)
        assert count == 2 * commits + hits  # reserve+commit per release
        report = replay_spend(service.audit.path)
        assert report["events"]["commit"] == commits
        assert report["events"]["cache_hit"] == hits
        for name in names:
            ledger = service.registry.get(name).budget.to_json()
            assert report["owners"][f"dataset:{name}"]["spent"] == ledger["spent"]
        assert sum(report["kinds"].values()) == pytest.approx(
            sum(service.spend_snapshot()["kinds"].values())
        )


# ---------------------------------------------------------------------------
# Front-ends: trace echo, header honouring, /debug/traces
# ---------------------------------------------------------------------------
def _call(url, path, payload=None, headers=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class _FrontEndContract:
    """Shared assertions; subclasses provide a ``url`` fixture per front-end."""

    def test_query_echoes_minted_trace_id(self, url):
        _, doc = _call(url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.5})
        assert doc["status"] == "ok"
        assert len(doc["trace"]) == 16
        int(doc["trace"], 16)

    def test_client_supplied_trace_id_honoured(self, url):
        status, doc = _call(
            url, "/query",
            {"dataset": "d", "kind": "iqr", "epsilon": 0.5},
            headers={"X-Repro-Trace-Id": "client-chosen-id"},
        )
        assert status == 200
        assert doc["trace"] == "client-chosen-id"
        status, found = _call(url, "/debug/traces/client-chosen-id")
        assert status == 200
        assert found["trace"]["trace"] == "client-chosen-id"
        assert found["trace"]["meta"]["dataset"] == "d"

    def test_error_documents_carry_the_trace_id(self, url):
        status, doc = _call(url, "/query", {"dataset": "d", "epsilon": 0.5})
        assert status == 400
        assert doc["status"] == "error"
        assert len(doc["trace"]) == 16

    def test_debug_traces_lists_recent(self, url):
        _call(url, "/query", {"dataset": "d", "kind": "variance", "epsilon": 0.5})
        status, doc = _call(url, "/debug/traces")
        assert status == 200
        assert doc["tracing"]["recorded"] >= 1
        newest = doc["traces"][0]
        assert {"trace", "duration_ms", "spans"} <= set(newest)
        names = [span["name"] for span in newest["spans"]]
        assert "parse" in names and "serialize" in names

    def test_unknown_trace_id_404(self, url):
        status, doc = _call(url, "/debug/traces/deadbeefdeadbeef")
        assert status == 404
        assert doc["error"]["code"] == "unknown_trace"

    def test_batch_traced_as_one_request(self, url):
        status, doc = _call(
            url, "/query",
            {"queries": [
                {"dataset": "d", "kind": "mean", "epsilon": 0.5},
                {"dataset": "d", "kind": "iqr", "epsilon": 0.5},
            ]},
            headers={"X-Repro-Trace-Id": "batch-trace"},
        )
        assert status == 200
        assert doc["trace"] == "batch-trace"
        _, found = _call(url, "/debug/traces/batch-trace")
        assert found["trace"]["meta"]["queries"] == 2


def _observed_http_service(data, tmp_path):
    service = QueryService(
        seed=13,
        tracer=TraceRecorder(ring=32),
        audit=AuditLog(tmp_path / "audit.jsonl"),
    )
    service.register("d", data, 50.0)
    return service


class TestThreadedFrontEnd(_FrontEndContract):
    @pytest.fixture
    def url(self, data, tmp_path):
        service = _observed_http_service(data, tmp_path)
        server = make_server(service, port=0, quiet=True)
        thread = serve_forever(server)
        yield server.url
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestAsyncFrontEnd(_FrontEndContract):
    @pytest.fixture
    def url(self, data, tmp_path):
        service = _observed_http_service(data, tmp_path)
        with AsyncServerThread(service, port=0, quiet=True) as thread:
            yield thread.url


class TestTracingDisabled:
    @pytest.fixture
    def url(self, data):
        service = QueryService(seed=13)  # no tracer, no audit
        service.register("d", data, 10.0)
        server = make_server(service, port=0, quiet=True)
        thread = serve_forever(server)
        yield server.url
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_debug_traces_404_and_untraced_answers(self, url):
        status, doc = _call(url, "/debug/traces")
        assert status == 404
        assert doc["error"]["code"] == "tracing_disabled"
        _, answer = _call(
            url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.5}
        )
        assert answer["status"] == "ok"
        assert "trace" not in answer  # wire shape unchanged when tracing is off


# ---------------------------------------------------------------------------
# Metrics: single observation per request, spend gauges
# ---------------------------------------------------------------------------
class TestMetricsIntegration:
    def test_each_request_observed_exactly_once(self, data, tmp_path):
        service = make_observed_service(data, tmp_path)
        assert service.query("d", "mean", epsilon=0.5).ok
        assert service.query("d", "mean", epsilon=0.5).cached
        refused = service.query("d", "mean", epsilon=100.0)
        assert refused.status == "refused"
        counts = {
            label: cell.count
            for label, cell in service.metrics.snapshot().items()
        }
        assert counts == {
            ("mean", "ok"): 1, ("mean", "cached"): 1, ("mean", "refused"): 1,
        }

    def test_spend_and_obs_gauges_rendered(self, data, tmp_path):
        service = make_observed_service(data, tmp_path)
        request = QueryRequest(
            "d", Query(kind="mean", epsilon=0.5), analyst="alice"
        )
        trace = service.tracer.start(None)
        service.submit(request, trace=trace)
        service.tracer.finish(trace)
        text = render_prometheus(service)
        assert 'repro_kind_spent_epsilon{kind="mean"}' in text
        assert 'repro_analyst_spent_epsilon{analyst="alice"}' in text
        assert "repro_traces_recorded_total 1" in text
        assert "repro_audit_records_total 2" in text  # reserve + commit

    def test_stats_document_carries_obs_sections(self, data, tmp_path):
        service = make_observed_service(data, tmp_path)
        service.query("d", "mean", epsilon=0.5)
        stats = service.stats()
        assert stats["spend"]["kinds"]["mean"] > 0.0
        assert stats["traces"]["ring"] == 64
        assert stats["audit"]["records"] == 2
        plain = QueryService(seed=1)
        bare = plain.stats()
        assert "traces" not in bare and "audit" not in bare
        assert bare["spend"] == {"kinds": {}, "analysts": {}}


# ---------------------------------------------------------------------------
# Admin control plane: observability diff/apply, control events audited
# ---------------------------------------------------------------------------
VALUES = [float(v) for v in range(64)]


def make_config(observability=None):
    document = {
        "service": {"seed": 7, "quiet": True},
        "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
    }
    if observability is not None:
        document["observability"] = observability
    return parse_serving_config(document)


class TestAdminObservability:
    def test_trace_settings_diff_to_live_change(self):
        old = make_config({"trace_ring": 64})
        new = make_config({"trace_ring": 128, "slow_query_ms": 5.0})
        changes = diff_serving_configs(old, new)
        assert [change.action for change in changes] == ["update_observability"]
        assert changes[0].detail == {"trace_ring": 128, "slow_query_ms": 5.0}

    def test_audit_log_change_requires_restart(self, tmp_path):
        old = make_config({"audit_log": str(tmp_path / "a.jsonl")})
        new = make_config({"audit_log": str(tmp_path / "b.jsonl")})
        with pytest.raises(ReloadRejected) as excinfo:
            diff_serving_configs(old, new)
        assert any("audit_log" in p for p in excinfo.value.problems)

    def test_unchanged_observability_diffs_empty(self, tmp_path):
        observability = {"trace_ring": 64, "audit_log": str(tmp_path / "a.jsonl")}
        assert diff_serving_configs(
            make_config(observability), make_config(observability)
        ) == []

    def test_reload_hot_swaps_tracer_live(self, data):
        service = QueryService(seed=7)
        service.register("d", data, 10.0)
        controller = AdminController(
            service, config=make_config(), token="s3cret"
        )
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "observability": {"trace_ring": 8, "slow_query_ms": 2.5},
        }
        result = controller.reload({"config": document})
        assert [c["action"] for c in result["applied"]] == ["update_observability"]
        assert service.tracer is not None
        assert service.tracer.stats()["ring"] == 8
        assert service.tracer.stats()["slow_query_ms"] == 2.5
        # And back off again: tracer removed live.
        document.pop("observability")
        controller.reload({"config": document})
        assert service.tracer is None

    def test_control_plane_actions_audited(self, data, tmp_path):
        service = make_observed_service(data, tmp_path, budget=4.0)
        controller = AdminController(
            service, config=make_config(), token="s3cret"
        )
        controller.drain("d", True)
        controller.reload({"config": {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
        }})
        records = [
            json.loads(line)
            for line in service.audit.path.read_text().splitlines()
        ]
        assert [r["event"] for r in records] == ["drain", "admin_reload"]
        assert records[0] == {**records[0], "dataset": "d", "draining": True}
        assert records[1]["unchanged"] is True
