"""Tests for the exception hierarchy and top-level package exports."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    AssumptionRequiredError,
    BudgetExceededError,
    DomainError,
    InsufficientDataError,
    MechanismError,
    PrivacyParameterError,
    ReproError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            PrivacyParameterError,
            BudgetExceededError,
            MechanismError,
            InsufficientDataError,
            DomainError,
            AssumptionRequiredError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Parameter errors should also be catchable as ValueError for ergonomic use."""
        assert issubclass(PrivacyParameterError, ValueError)
        assert issubclass(InsufficientDataError, ValueError)
        assert issubclass(DomainError, ValueError)

    def test_catching_base_class_catches_all(self):
        with pytest.raises(ReproError):
            raise MechanismError("boom")


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export: {name}"

    def test_core_estimators_exported(self):
        assert callable(repro.estimate_mean)
        assert callable(repro.estimate_variance)
        assert callable(repro.estimate_iqr)
        assert callable(repro.estimate_radius)
        assert callable(repro.estimate_range)
        assert callable(repro.estimate_empirical_mean)
        assert callable(repro.estimate_empirical_quantile)
