"""Tests for the deterministic batched trial engine (``repro.engine``)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import BatchResult, TrialFailure, run_batch
from repro.exceptions import DomainError, MechanismError


def _noisy_trial(index, generator):
    return float(generator.normal()) + 1000.0 * index


class TestRunBatchSerial:
    def test_results_ordered_by_trial_index(self):
        batch = run_batch(_noisy_trial, 8, rng=0)
        assert batch.indices == tuple(range(8))
        assert batch.trials == 8
        assert batch.workers == 1
        rounded = [round(value, -3) for value in batch.results]
        assert rounded == [1000.0 * i for i in range(8)]

    def test_same_seed_reproduces_results(self):
        a = run_batch(_noisy_trial, 6, rng=42)
        b = run_batch(_noisy_trial, 6, rng=42)
        assert a.results == b.results

    def test_zero_trials_allowed(self):
        batch = run_batch(_noisy_trial, 0, rng=0)
        assert batch.results == ()
        assert batch.failures == ()
        assert batch.trials == 0

    def test_negative_trials_rejected(self):
        with pytest.raises(DomainError):
            run_batch(_noisy_trial, -1, rng=0)

    def test_invalid_workers_rejected(self):
        with pytest.raises(DomainError):
            run_batch(_noisy_trial, 3, rng=0, workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(DomainError):
            run_batch(_noisy_trial, 3, rng=0, workers=2, chunk_size=0)

    def test_estimates_array(self):
        batch = run_batch(lambda i, g: float(i), 4, rng=0)
        np.testing.assert_array_equal(batch.estimates(), [0.0, 1.0, 2.0, 3.0])


class TestFailureCapture:
    @staticmethod
    def _failing_on_even(index, generator):
        if index % 2 == 0:
            raise MechanismError(f"boom at {index}")
        return float(generator.normal())

    def test_failures_propagate_by_default(self):
        with pytest.raises(MechanismError):
            run_batch(self._failing_on_even, 4, rng=0)

    def test_structured_failure_records(self):
        batch = run_batch(self._failing_on_even, 6, rng=0, allow_failures=True)
        assert batch.n_failures == 3
        assert [failure.index for failure in batch.failures] == [0, 2, 4]
        assert all(failure.error == "MechanismError" for failure in batch.failures)
        assert batch.failures[1].message == "boom at 2"
        assert batch.indices == (1, 3, 5)

    def test_non_failure_exceptions_always_propagate(self):
        def exploding(index, generator):
            raise ValueError("not a mechanism failure")

        with pytest.raises(ValueError):
            run_batch(exploding, 3, rng=0, allow_failures=True)

    def test_failed_trial_does_not_shift_later_streams(self):
        """The engine-level guarantee behind spawn_rngs' docstring promise."""
        clean = run_batch(_noisy_trial, 5, rng=7)

        def failing_first(index, generator):
            if index == 0:
                raise MechanismError("boom")
            return _noisy_trial(index, generator)

        partial = run_batch(failing_first, 5, rng=7, allow_failures=True)
        assert partial.indices == (1, 2, 3, 4)
        assert partial.results == clean.results[1:]


class TestRunBatchParallel:
    def test_parallel_matches_serial_bitwise(self):
        serial = run_batch(_noisy_trial, 20, rng=11, workers=1)
        parallel = run_batch(_noisy_trial, 20, rng=11, workers=4)
        assert serial.results == parallel.results
        assert serial.indices == parallel.indices

    def test_chunk_size_does_not_change_results(self):
        reference = run_batch(_noisy_trial, 13, rng=3, workers=1)
        for chunk_size in (1, 2, 5, 13, 50):
            batch = run_batch(_noisy_trial, 13, rng=3, workers=2, chunk_size=chunk_size)
            assert batch.results == reference.results

    def test_parallel_failure_capture_matches_serial(self):
        def flaky(index, generator):
            if index in (2, 9):
                raise MechanismError(f"boom {index}")
            return float(generator.normal())

        serial = run_batch(flaky, 12, rng=5, workers=1, allow_failures=True)
        parallel = run_batch(flaky, 12, rng=5, workers=3, allow_failures=True)
        assert parallel.results == serial.results
        assert parallel.failures == serial.failures

    def test_parallel_failures_propagate_by_default(self):
        def failing(index, generator):
            raise MechanismError("boom")

        with pytest.raises(MechanismError):
            run_batch(failing, 4, rng=0, workers=2)

    def test_workers_overlap_blocking_trials(self):
        """Workers genuinely run concurrently (holds even on one core)."""

        def sleeping(index, generator):
            time.sleep(0.15)
            return float(index)

        start = time.perf_counter()
        batch = run_batch(sleeping, 8, rng=0, workers=4, chunk_size=2)
        elapsed = time.perf_counter() - start
        assert batch.results == tuple(float(i) for i in range(8))
        # Serial execution would sleep 8 * 0.15 = 1.2s; four overlapping
        # workers need ~0.3s.  The generous margin absorbs slow fork/pool
        # startup on loaded CI hosts while still ruling out serial execution.
        assert elapsed < 0.9


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 cores for a 2x speedup")
def test_gaussian_mean_workload_speedup():
    """Acceptance: 500-trial Gaussian-mean workload >= 2x faster with 4 workers."""
    from repro.analysis import run_statistical_trials
    from repro.core import estimate_mean
    from repro.distributions import Gaussian

    def universal(data, gen):
        return estimate_mean(data, 0.5, 0.1, gen).mean

    dist = Gaussian(5.0, 1.0)

    start = time.perf_counter()
    serial = run_statistical_trials(universal, dist, "mean", 4_000, 500, 1, workers=1)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_statistical_trials(universal, dist, "mean", 4_000, 500, 1, workers=4)
    parallel_time = time.perf_counter() - start

    np.testing.assert_array_equal(serial.estimates, parallel.estimates)
    assert serial_time / parallel_time >= 2.0
