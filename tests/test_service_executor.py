"""Tests for :class:`repro.service.QueryService` — the acceptance contract.

The three headline properties:

* a registered dataset with total budget B refuses the first query that would
  exceed B (structured refusal, ledger unchanged);
* identical repeated queries are answered from cache with zero additional
  spend;
* answers are bit-for-bit identical for ``workers=1`` vs ``workers=N`` under
  a fixed service seed.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.engine import EnginePool
from repro.service import (
    AnswerCache,
    Query,
    QueryRequest,
    QueryService,
)

ENGINE_WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "3"))


@pytest.fixture
def data():
    return np.random.default_rng(3).normal(100.0, 15.0, size=12_000)


def make_service(data, *, budget=20.0, seed=11, pool=None, cache=None, **kwargs):
    service = QueryService(pool=pool, seed=seed, cache=cache)
    service.register("d", data, budget, **kwargs)
    return service


class TestBasicAnswers:
    def test_mean_answer_is_reasonable(self, data):
        answer = make_service(data).query("d", "mean", epsilon=1.0)
        assert answer.ok
        assert answer.value == pytest.approx(100.0, abs=3.0)
        assert 0.0 < answer.epsilon_charged <= 1.0 + 1e-9
        assert answer.remaining == pytest.approx(20.0 - answer.epsilon_charged)

    def test_quantile_answer_is_a_tuple(self, data):
        answer = make_service(data).query("d", "quantile", epsilon=0.5, levels=[0.25, 0.75])
        assert answer.ok
        assert len(answer.value) == 2
        assert answer.value[0] < answer.value[1]

    def test_multivariate_mean(self):
        matrix = np.random.default_rng(5).normal(0.0, 1.0, size=(6000, 3))
        service = QueryService(seed=2)
        service.register("m", matrix, 5.0)
        answer = service.query("m", "multivariate_mean", epsilon=1.0)
        assert answer.ok
        assert len(answer.value) == 3
        assert all(abs(v) < 1.0 for v in answer.value)

    def test_unknown_dataset_is_invalid_not_exception(self, data):
        answer = make_service(data).query("nope", "mean", epsilon=0.5)
        assert answer.status == "invalid"
        assert answer.error == "unknown_dataset"
        assert answer.epsilon_charged == 0.0

    def test_malformed_query_is_invalid(self, data):
        answer = make_service(data).query("d", "quantile", epsilon=0.5)  # no levels
        assert answer.status == "invalid"
        assert answer.error == "invalid_query"

    def test_shape_mismatch_is_invalid(self, data):
        answer = make_service(data).query("d", "multivariate_mean", epsilon=0.5)
        assert answer.status == "invalid"

    def test_fixed_seed_reproducible_across_services(self, data):
        first = make_service(data, seed=9).query("d", "mean", epsilon=0.5)
        second = make_service(data, seed=9).query("d", "mean", epsilon=0.5)
        assert first.value == second.value

    def test_unseeded_service_draws_fresh_noise(self, data):
        service = make_service(data, seed=None, cache=AnswerCache(maxsize=0))
        first = service.query("d", "mean", epsilon=0.5)
        second = service.query("d", "mean", epsilon=0.5)
        assert first.value != second.value


class TestBudgetEnforcement:
    def test_refusal_is_structured_and_ledger_unchanged(self, data):
        service = make_service(data, budget=1.0)
        ok = service.query("d", "mean", epsilon=0.6)
        assert ok.ok
        budget = service.registry.get("d").budget
        spends_before = list(budget.ledger)
        refused = service.query("d", "iqr", epsilon=0.6)
        assert refused.status == "refused"
        assert refused.error == "budget_exceeded"
        assert refused.epsilon_charged == 0.0
        assert list(budget.ledger) == spends_before
        # The refusal reports how much is actually left.
        assert refused.remaining == pytest.approx(budget.remaining)

    def test_budget_is_charged_with_actual_spend(self, data):
        service = make_service(data, budget=10.0)
        answer = service.query("d", "mean", epsilon=0.5)
        budget = service.registry.get("d").budget
        # estimate_mean's amplified sub-sample probe spends less than nominal.
        assert 0.0 < answer.epsilon_charged <= 0.5
        assert budget.spent == pytest.approx(answer.epsilon_charged)
        assert budget.reserved == 0.0

    def test_variance_reservation_covers_overshoot(self, data):
        """Variance records more epsilon than requested; admission must cover it."""
        service = make_service(data, budget=10.0)
        answer = service.query("d", "variance", epsilon=1.0)
        assert answer.ok
        assert answer.epsilon_charged == pytest.approx(1.125)
        # A budget that fits the nominal epsilon but not the true spend refuses.
        tight = make_service(data, budget=1.0)
        refused = tight.query("d", "variance", epsilon=1.0)
        assert refused.status == "refused"
        assert tight.registry.get("d").budget.spent == 0.0

    def test_exhaustion_then_smaller_query_can_still_fit(self, data):
        service = make_service(data, budget=1.0)
        assert service.query("d", "mean", epsilon=0.5).ok
        assert service.query("d", "iqr", epsilon=1.0).status == "refused"
        assert service.query("d", "iqr", epsilon=0.25).ok

    def test_analyst_sub_budget(self, data):
        service = make_service(data, budget=10.0, analyst_budgets={"alice": 0.5})
        answer = service.submit(
            QueryRequest("d", Query("mean", 0.4), analyst="alice")
        )
        assert answer.ok
        refused = service.submit(
            QueryRequest("d", Query("iqr", 0.4), analyst="alice")
        )
        assert refused.status == "refused"
        # bob is bounded only by the roomy total.
        assert service.submit(QueryRequest("d", Query("iqr", 0.4), analyst="bob")).ok


class TestAnswerCache:
    def test_repeat_query_zero_spend_same_value(self, data):
        service = make_service(data)
        first = service.query("d", "mean", epsilon=0.5)
        budget_after_first = service.registry.get("d").budget.spent
        second = service.query("d", "mean", epsilon=0.5)
        assert second.cached
        assert second.value == first.value
        assert second.epsilon_charged == 0.0
        assert service.registry.get("d").budget.spent == budget_after_first
        assert service.cache_stats.hits == 1

    def test_different_params_are_not_cache_hits(self, data):
        service = make_service(data)
        service.query("d", "mean", epsilon=0.5)
        other = service.query("d", "mean", epsilon=0.6)
        assert not other.cached

    def test_cached_answers_survive_budget_exhaustion(self, data):
        """The cache keeps serving after the budget is gone — the DP win."""
        service = make_service(data, budget=1.0)
        first = service.query("d", "mean", epsilon=1.0)
        assert first.ok
        assert service.query("d", "iqr", epsilon=0.5).status == "refused"
        again = service.query("d", "mean", epsilon=1.0)
        assert again.cached
        assert again.value == first.value

    def test_disabled_cache_recomputes_and_respends(self, data):
        service = make_service(data, cache=AnswerCache(maxsize=0), seed=4)
        first = service.query("d", "mean", epsilon=0.5)
        second = service.query("d", "mean", epsilon=0.5)
        assert not second.cached
        # Same deterministic seed -> same value, but the budget was charged twice.
        assert second.value == first.value
        assert service.registry.get("d").budget.spent == pytest.approx(
            2 * first.epsilon_charged
        )

    def test_failed_answers_are_not_cached(self, data, monkeypatch):
        from repro.service import executor as executor_module
        from repro.exceptions import MechanismError

        service = make_service(data)
        calls = {"n": 0}
        original = executor_module._QueryTrial.__call__

        def flaky(self, index, generator):
            calls["n"] += 1
            if calls["n"] == 1:
                return ("failed", None, 0.25, "ptr rejected")
            return original(self, index, generator)

        monkeypatch.setattr(executor_module._QueryTrial, "__call__", flaky)
        failed = service.query("d", "mean", epsilon=0.5)
        assert failed.status == "failed"
        assert failed.error == "mechanism_error"
        # The partial spend was committed...
        assert service.registry.get("d").budget.spent == pytest.approx(0.25)
        # ...but the failure is not served from cache: a retry recomputes.
        retry = service.query("d", "mean", epsilon=0.5)
        assert retry.ok
        assert not retry.cached


class TestWorkerParity:
    REQUESTS = [
        QueryRequest("d", Query("mean", 0.3)),
        QueryRequest("d", Query("variance", 0.4)),
        QueryRequest("d", Query("iqr", 0.3)),
        QueryRequest("d", Query("quantile", 0.2, levels=(0.5, 0.95))),
        QueryRequest("d", Query("mean", 0.7)),
        QueryRequest("d", Query("quantile", 0.1, levels=(0.25,))),
    ]

    def test_serial_vs_pool_bit_for_bit(self, data):
        serial = make_service(data, seed=77).submit_many(self.REQUESTS)
        with EnginePool(ENGINE_WORKERS) as pool:
            service = make_service(data, seed=77, pool=pool, share=True)
            pooled = service.submit_many(self.REQUESTS)
            service.registry.close()
        for serial_answer, pooled_answer in zip(serial, pooled):
            assert serial_answer.value == pooled_answer.value
            assert serial_answer.epsilon_charged == pooled_answer.epsilon_charged

    def test_submission_order_does_not_change_answers(self, data):
        forward = make_service(data, seed=77).submit_many(self.REQUESTS)
        backward = make_service(data, seed=77).submit_many(self.REQUESTS[::-1])
        by_key_forward = {a.key: a.value for a in forward}
        by_key_backward = {a.key: a.value for a in backward}
        assert by_key_forward == by_key_backward

    def test_single_submits_match_batch(self, data):
        batch = make_service(data, seed=77).submit_many(self.REQUESTS)
        single_service = make_service(data, seed=77)
        singles = [single_service.submit(request) for request in self.REQUESTS]
        assert [a.value for a in batch] == [a.value for a in singles]


class TestBatchSemantics:
    def test_intra_batch_duplicates_computed_once(self, data):
        service = make_service(data)
        answers = service.submit_many(
            [
                QueryRequest("d", Query("mean", 0.5)),
                QueryRequest("d", Query("mean", 0.5)),
                QueryRequest("d", Query("iqr", 0.5)),
            ]
        )
        assert answers[0].ok and not answers[0].coalesced
        assert answers[1].coalesced
        assert answers[1].value == answers[0].value
        assert answers[1].epsilon_charged == 0.0
        budget = service.registry.get("d").budget
        assert budget.spent == pytest.approx(
            answers[0].epsilon_charged + answers[2].epsilon_charged
        )

    def test_batch_mixes_outcomes_in_submission_order(self, data):
        service = make_service(data, budget=1.0)
        answers = service.submit_many(
            [
                QueryRequest("d", Query("mean", 0.8)),
                QueryRequest("nope", Query("mean", 0.5)),
                QueryRequest("d", Query("iqr", 0.8)),  # over budget by now
            ]
        )
        assert [a.status for a in answers] == ["ok", "invalid", "refused"]


class TestCoalescing:
    def test_concurrent_identical_queries_spend_once(self, data):
        service = make_service(data, seed=5)
        results = []
        threads = 6
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            results.append(service.query("d", "mean", epsilon=0.5))

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(results) == threads
        values = {answer.value for answer in results}
        assert len(values) == 1
        charged = [answer for answer in results if answer.epsilon_charged > 0]
        assert len(charged) == 1
        budget = service.registry.get("d").budget
        assert budget.spent == pytest.approx(charged[0].epsilon_charged)
        assert all(a.cached or a.coalesced or a is charged[0] for a in results)

    def test_concurrent_distinct_queries_all_answered(self, data):
        service = make_service(data, seed=5, budget=50.0)
        epsilons = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
        results = {}
        barrier = threading.Barrier(len(epsilons))

        def worker(epsilon):
            barrier.wait()
            results[epsilon] = service.query("d", "mean", epsilon=epsilon)

        pool = [threading.Thread(target=worker, args=(e,)) for e in epsilons]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert all(results[e].ok for e in epsilons)
        total = sum(results[e].epsilon_charged for e in epsilons)
        assert service.registry.get("d").budget.spent == pytest.approx(total)


class TestReviewRegressions:
    """Regressions for the PR's code-review findings."""

    def test_variance_on_tiny_dataset_is_invalid_not_exception(self):
        """estimate_variance needs n >= 16; the planner must refuse first."""
        service = QueryService(seed=1)
        service.register("tiny", np.arange(10.0) + 1.0, 5.0)
        answer = service.query("tiny", "variance", epsilon=0.5)
        assert answer.status == "invalid"
        assert answer.error == "insufficient_data"
        assert service.registry.get("tiny").budget.spent == 0.0
        # mean still works at n=10 (its own minimum is 8).
        assert service.query("tiny", "mean", epsilon=0.5).ok

    def test_runtime_library_error_becomes_failed_answer_not_batch_abort(
        self, data, monkeypatch
    ):
        """A ReproError escaping an estimator mid-release must not abort the
        sibling queries of the batch."""
        import dataclasses

        from repro.estimators import get_estimator
        from repro.estimators import registry as estimator_registry
        from repro.exceptions import InsufficientDataError

        def sabotaged(data, generator, ledger, *, epsilon, beta, **params):
            raise InsufficientDataError("simulated runtime failure")

        spec = dataclasses.replace(get_estimator("variance"), runner=sabotaged)
        monkeypatch.setitem(estimator_registry._REGISTRY, "variance", spec)
        service = make_service(data)
        answers = service.submit_many(
            [
                QueryRequest("d", Query("mean", 0.3)),
                QueryRequest("d", Query("variance", 0.3)),
                QueryRequest("d", Query("iqr", 0.3)),
            ]
        )
        assert [a.status for a in answers] == ["ok", "failed", "ok"]
        budget = service.registry.get("d").budget
        assert budget.reserved == 0.0  # the failed query's reservation released

    def test_batch_and_single_coalesce_across_threads(self, data):
        """submit_many and submit must share one in-flight computation."""
        service = make_service(data, seed=6)
        results = {}
        threads = 4
        barrier = threading.Barrier(threads)

        def batch_worker(worker_id):
            barrier.wait()
            results[worker_id] = service.submit_many(
                [QueryRequest("d", Query("mean", 0.5))]
            )[0]

        def single_worker(worker_id):
            barrier.wait()
            results[worker_id] = service.query("d", "mean", epsilon=0.5)

        pool = [
            threading.Thread(target=batch_worker if w % 2 else single_worker, args=(w,))
            for w in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        values = {answer.value for answer in results.values()}
        assert len(values) == 1
        charged = [a for a in results.values() if a.epsilon_charged > 0]
        assert len(charged) == 1
        assert service.registry.get("d").budget.spent == pytest.approx(
            charged[0].epsilon_charged
        )
