"""Tests for the non-private reference estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MidRangeMean, SampleIQR, SampleMean, SampleVariance
from repro.distributions import Gaussian, Uniform
from repro.exceptions import InsufficientDataError


class TestSampleStatistics:
    def test_sample_mean_exact(self):
        assert SampleMean().estimate([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_sample_variance_exact(self):
        assert SampleVariance().estimate([1.0, 3.0]) == pytest.approx(1.0)

    def test_sample_iqr_on_sorted_grid(self):
        data = np.arange(1, 101, dtype=float)
        assert SampleIQR().estimate(data) == pytest.approx(50.0)

    def test_empty_rejected(self):
        for estimator in (SampleMean(), SampleVariance(), SampleIQR(), MidRangeMean()):
            with pytest.raises(InsufficientDataError):
                estimator.estimate([])

    def test_epsilon_ignored(self, rng):
        data = Gaussian().sample(100, rng)
        assert SampleMean().estimate(data, 0.1) == SampleMean().estimate(data, 100.0)

    def test_metadata(self):
        assert SampleMean().privacy == "none"
        assert SampleMean().assumptions == frozenset()
        assert SampleIQR().target == "iqr"


class TestMidRange:
    def test_exact_on_two_points(self):
        assert MidRangeMean().estimate([0.0, 10.0]) == pytest.approx(5.0)

    def test_good_for_uniform_bad_for_gaussian(self):
        """The introduction's motivating example: mid-range beats the sample mean
        on uniform data but is far worse on Gaussian data."""
        uniform = Uniform(-1.0, 1.0)
        gaussian = Gaussian(0.0, 1.0)
        mid_uniform, mean_uniform, mid_gauss, mean_gauss = [], [], [], []
        for seed in range(40):
            gen = np.random.default_rng(seed)
            u = uniform.sample(2000, gen)
            g = gaussian.sample(2000, gen)
            mid_uniform.append(abs(MidRangeMean().estimate(u)))
            mean_uniform.append(abs(SampleMean().estimate(u)))
            mid_gauss.append(abs(MidRangeMean().estimate(g)))
            mean_gauss.append(abs(SampleMean().estimate(g)))
        assert np.median(mid_uniform) < np.median(mean_uniform)
        assert np.median(mid_gauss) > np.median(mean_gauss)

    def test_declares_family_assumption(self):
        assert "A3" in MidRangeMean().assumptions
