"""Tests for ``InfiniteDomainRange`` (Algorithm 4, Theorems 3.2/3.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.bench.workloads import clustered_integer_dataset, uniform_integer_dataset
from repro.empirical import estimate_range
from repro.exceptions import InsufficientDataError


class TestRangeGeometry:
    def test_width_at_most_four_times_true_width(self, rng):
        data = uniform_integer_dataset(4000, width=200, center=0, rng=rng)
        true_width = float(np.max(data) - np.min(data))
        for seed in range(5):
            result = estimate_range(data, 1.0, 0.05, np.random.default_rng(seed))
            assert result.width <= 4.0 * true_width + 6.0

    def test_covers_most_points(self, rng):
        data = uniform_integer_dataset(4000, width=500, center=0, rng=rng)
        result = estimate_range(data, 1.0, 0.05, rng)
        assert result.outside_count <= 100
        assert result.inside_count + result.outside_count == data.size

    def test_adapts_to_far_away_cluster(self, rng):
        """rad(D) >> gamma(D): the range should track the cluster, not the origin."""
        data = clustered_integer_dataset(3000, cluster_value=100_000, spread=5, rng=rng)
        result = estimate_range(data, 1.0, 0.05, rng)
        # Width should be on the order of the cluster spread, not the radius.
        assert result.width <= 4.0 * 10.0 + 6.0
        # The centre must be near the cluster for the data to be covered.
        assert abs(result.center - 100_000) <= 50
        assert result.outside_count <= 60

    def test_center_within_data_range(self, rng):
        data = uniform_integer_dataset(3000, width=1000, center=250, rng=rng)
        result = estimate_range(data, 1.0, 0.05, rng)
        assert np.min(data) - 10 <= result.center <= np.max(data) + 10

    def test_low_not_above_high(self, rng):
        data = uniform_integer_dataset(1000, width=50, rng=rng)
        result = estimate_range(data, 1.0, 0.1, rng)
        assert result.low <= result.high

    def test_constant_dataset(self, rng):
        data = np.full(2000, 42.0)
        result = estimate_range(data, 1.0, 0.05, rng)
        assert result.low <= 42.0 <= result.high
        assert result.width <= 10.0

    def test_bucketized_real_data(self, rng):
        data = rng.normal(3.0, 0.01, size=4000)
        result = estimate_range(data, 1.0, 0.05, rng, bucket_size=0.001)
        true_width = float(np.max(data) - np.min(data))
        assert result.width <= 4.0 * true_width + 6.0 * 0.001
        assert result.outside_count <= 80

    def test_grid_and_real_units_consistent(self, rng):
        data = rng.normal(0.0, 5.0, size=2000)
        result = estimate_range(data, 1.0, 0.1, rng, bucket_size=0.5)
        assert result.low == pytest.approx(result.grid_low * 0.5)
        assert result.high == pytest.approx(result.grid_high * 0.5)
        assert result.width == pytest.approx(result.high - result.low)


class TestRangeBookkeeping:
    def test_ledger_total_matches_budget_split(self, rng):
        ledger = PrivacyLedger()
        data = uniform_integer_dataset(2000, width=100, rng=rng)
        estimate_range(data, 0.8, 0.1, rng, ledger=ledger)
        # eps/8 + eps/8 + 3eps/4 = eps.
        assert ledger.total_epsilon == pytest.approx(0.8, rel=1e-6)

    def test_intermediate_radius_results_exposed(self, rng):
        data = uniform_integer_dataset(2000, width=100, rng=rng)
        result = estimate_range(data, 1.0, 0.1, rng)
        assert result.radius_first.radius >= 0
        assert result.radius_recentred.radius >= 0

    def test_empty_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_range([], 1.0, 0.1, rng)
