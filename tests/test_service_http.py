"""Tests for the stdlib HTTP front-end of the query service."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import QueryService, make_server, serve_forever


@pytest.fixture
def server():
    service = QueryService(seed=13)
    service.register("d", np.random.default_rng(1).normal(50.0, 5.0, 10_000), 5.0)
    http_server = make_server(service, port=0, allow_register=True, quiet=True)
    thread = serve_forever(http_server)
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    thread.join(timeout=5)


def _call(server, path, payload=None, method=None):
    url = server.url + path
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestRoutes:
    def test_health(self, server):
        status, doc = _call(server, "/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["datasets"] == ["d"]

    def test_datasets_snapshot(self, server):
        status, doc = _call(server, "/datasets")
        assert status == 200
        assert doc["datasets"][0]["name"] == "d"
        assert doc["datasets"][0]["budget"]["capacity"] == pytest.approx(5.0)
        assert "cache" in doc

    def test_unknown_path_404(self, server):
        status, doc = _call(server, "/nope")
        assert status == 404
        assert doc["error"]["code"] == "unknown_path"

    def test_kinds_catalogue(self, server):
        from repro.estimators import registered_kinds

        status, doc = _call(server, "/kinds")
        assert status == 200
        assert sorted(doc["kinds"]) == registered_kinds()
        assert doc["kinds"]["variance"]["reservation"] == pytest.approx(9 / 8)
        assert doc["kinds"]["quantile"]["params"]["levels"]["required"] is True
        coinpress = doc["kinds"]["baseline.coinpress_mean"]
        assert coinpress["params"]["radius"]["required"] is True
        assert doc["datasets"] == {"d": None}  # no allowlist: serves every kind


class TestQueryEndpoint:
    def test_ok_query(self, server):
        status, doc = _call(
            server, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["value"] == pytest.approx(50.0, abs=3.0)
        assert doc["epsilon_charged"] > 0

    def test_repeat_query_is_cached_zero_spend(self, server):
        first = _call(server, "/query", {"dataset": "d", "kind": "iqr", "epsilon": 0.5})[1]
        second = _call(server, "/query", {"dataset": "d", "kind": "iqr", "epsilon": 0.5})[1]
        assert second["cached"] is True
        assert second["value"] == first["value"]
        assert second["epsilon_charged"] == 0.0

    def test_refusal_is_403_with_structured_body(self, server):
        status, doc = _call(
            server, "/query", {"dataset": "d", "kind": "mean", "epsilon": 50.0}
        )
        assert status == 403
        assert doc["status"] == "refused"
        assert doc["error"]["code"] == "budget_exceeded"
        assert doc["epsilon_charged"] == 0.0

    def test_unknown_dataset_is_404(self, server):
        status, doc = _call(
            server, "/query", {"dataset": "ghost", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 404
        assert doc["error"]["code"] == "unknown_dataset"

    def test_malformed_query_is_400(self, server):
        for payload in (
            {"kind": "mean", "epsilon": 0.5},  # no dataset
            {"dataset": "d", "epsilon": 0.5},  # no kind
            {"dataset": "d", "kind": "mean"},  # no epsilon
            {"dataset": "d", "kind": "mean", "epsilon": -2.0},
            {"dataset": "d", "kind": "quantile", "epsilon": 0.5},  # no levels
        ):
            status, doc = _call(server, "/query", payload)
            assert status == 400, payload
            assert doc["status"] == "error"

    def test_unknown_kind_400_lists_registered_kinds(self, server):
        from repro.estimators import registered_kinds

        status, doc = _call(
            server, "/query", {"dataset": "d", "kind": "mode", "epsilon": 0.5}
        )
        assert status == 400
        assert doc["error"]["code"] == "unknown_kind"
        assert doc["error"]["detail"]["kinds"] == registered_kinds()
        # the legacy top-level alias is gone
        assert "kinds" not in doc

    def test_baseline_kind_served_with_params(self, server):
        status, doc = _call(
            server,
            "/query",
            {"dataset": "d", "kind": "baseline.bounded_laplace_mean",
             "epsilon": 0.5, "params": {"radius": 100.0}},
        )
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["value"] == pytest.approx(50.0, abs=3.0)
        assert doc["epsilon_charged"] == pytest.approx(0.5)
        # Identical params in a different key order hit the same cache entry.
        status, again = _call(
            server,
            "/query",
            {"dataset": "d", "kind": "baseline.bounded_laplace_mean",
             "epsilon": 0.5, "params": {"radius": 100}},
        )
        assert again["cached"] is True and again["value"] == doc["value"]

    def test_baseline_missing_param_is_400(self, server):
        status, doc = _call(
            server,
            "/query",
            {"dataset": "d", "kind": "baseline.coinpress_mean", "epsilon": 0.5},
        )
        assert status == 400
        message = doc["error"]["message"]
        assert "radius" in message or "requires" in message

    def test_invalid_json_is_400_not_traceback(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_quantile_value_is_a_list(self, server):
        _, doc = _call(
            server,
            "/query",
            {"dataset": "d", "kind": "quantile", "epsilon": 0.5,
             "params": {"levels": [0.25, 0.75]}},
        )
        assert doc["status"] == "ok"
        assert isinstance(doc["value"], list) and len(doc["value"]) == 2

    def test_batch_queries_answered_in_order(self, server):
        payload = {
            "queries": [
                {"dataset": "d", "kind": "mean", "epsilon": 0.4},
                {"dataset": "d", "kind": "mean", "epsilon": 0.4},  # duplicate
                {"dataset": "ghost", "kind": "mean", "epsilon": 0.4},
            ]
        }
        status, doc = _call(server, "/query", payload)
        assert status == 200
        answers = doc["answers"]
        assert [a["status"] for a in answers] == ["ok", "ok", "invalid"]
        assert answers[1]["coalesced"] is True
        assert answers[1]["value"] == answers[0]["value"]


class TestRegistration:
    def test_register_then_query(self, server):
        values = list(np.linspace(0.0, 99.0, 200))
        status, doc = _call(
            server, "/datasets", {"name": "fresh", "values": values, "budget": 2.0}
        )
        assert status == 201
        assert doc["dataset"]["records"] == 200
        status, doc = _call(
            server, "/query", {"dataset": "fresh", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 200
        assert doc["status"] == "ok"

    def test_register_missing_field_400(self, server):
        status, _ = _call(server, "/datasets", {"name": "x", "budget": 1.0})
        assert status == 400

    def test_registration_can_be_disabled(self):
        service = QueryService(seed=1)
        service.register("d", np.arange(100.0), 1.0)
        http_server = make_server(service, port=0, allow_register=False, quiet=True)
        thread = serve_forever(http_server)
        try:
            status, doc = _call(
                http_server, "/datasets", {"name": "x", "values": [1.0] * 20, "budget": 1.0}
            )
            assert status == 403
            assert doc["error"]["code"] == "registration_disabled"
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5)


class TestConcurrentClients:
    def test_parallel_identical_requests_spend_once(self, server):
        results = []
        threads = 8
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            results.append(
                _call(server, "/query", {"dataset": "d", "kind": "variance", "epsilon": 0.3})
            )

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        values = {doc["value"] for _, doc in results}
        assert len(values) == 1
        total_spent = server.service.registry.get("d").budget.spent
        # One release (0.3 * 9/8 worst case) plus whatever earlier tests spent
        # is impossible here: this fixture is fresh, so exactly one charge.
        charged = [doc["epsilon_charged"] for _, doc in results if doc["epsilon_charged"] > 0]
        assert len(charged) == 1
        assert total_spent == pytest.approx(charged[0])


class TestRegistrationValidation:
    def test_malformed_registration_is_400_not_500(self, server):
        for payload in (
            {"name": "x", "values": [1.0] * 20, "budget": "abc"},
            {"name": "x", "values": ["a", "b"], "budget": 1.0},
            {"name": "x", "values": [1.0] * 20, "budget": None},
        ):
            status, doc = _call(server, "/datasets", payload)
            assert status == 400, (payload, doc)
            assert doc["status"] == "error"
