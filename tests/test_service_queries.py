"""Tests for the typed query model and planner."""

from __future__ import annotations

import pytest

from repro.exceptions import InsufficientDataError, PrivacyParameterError
from repro.service import QUERY_KINDS, InvalidQueryError, Query, plan_query


class TestQueryValidation:
    def test_all_kinds_construct(self):
        for kind in QUERY_KINDS:
            levels = (0.5,) if kind == "quantile" else ()
            query = Query(kind=kind, epsilon=0.5, levels=levels)
            assert query.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="median", epsilon=0.5)

    def test_bad_epsilon_rejected(self):
        for epsilon in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises((InvalidQueryError, PrivacyParameterError)):
                Query(kind="mean", epsilon=epsilon)

    def test_bad_beta_rejected(self):
        with pytest.raises((InvalidQueryError, PrivacyParameterError)):
            Query(kind="mean", epsilon=0.5, beta=1.5)

    def test_quantile_requires_levels(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="quantile", epsilon=0.5)

    def test_quantile_levels_range_checked(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="quantile", epsilon=0.5, levels=(0.5, 1.0))

    def test_levels_forbidden_for_scalar_kinds(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="mean", epsilon=0.5, levels=(0.5,))


class TestCanonicalKey:
    def test_equal_queries_share_a_key(self):
        a = Query(kind="quantile", epsilon=0.5, levels=(0.5, 0.9))
        b = Query(kind="quantile", epsilon=0.5, levels=[0.5, 0.9])
        assert a.canonical_key("d") == b.canonical_key("d")

    def test_key_separates_datasets_kinds_and_params(self):
        base = Query(kind="mean", epsilon=0.5)
        assert base.canonical_key("a") != base.canonical_key("b")
        assert base.canonical_key("a") != Query(kind="iqr", epsilon=0.5).canonical_key("a")
        assert base.canonical_key("a") != Query(kind="mean", epsilon=0.6).canonical_key("a")
        assert (
            base.canonical_key("a")
            != Query(kind="mean", epsilon=0.5, beta=0.1).canonical_key("a")
        )

    def test_key_distinguishes_level_order(self):
        a = Query(kind="quantile", epsilon=0.5, levels=(0.25, 0.75))
        b = Query(kind="quantile", epsilon=0.5, levels=(0.75, 0.25))
        assert a.canonical_key("d") != b.canonical_key("d")


class TestJsonRoundTrip:
    def test_round_trip(self):
        query = Query(kind="quantile", epsilon=0.5, beta=0.1, levels=(0.5, 0.99))
        assert Query.from_json(query.to_json()) == query

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean"})
        with pytest.raises(InvalidQueryError):
            Query.from_json({"epsilon": 0.5})

    def test_unknown_fields_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean", "epsilon": 0.5, "bogus": 1})

    def test_non_numeric_epsilon_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean", "epsilon": "lots"})

    def test_levels_must_be_a_list(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "quantile", "epsilon": 0.5, "levels": "0.5"})


class TestPlanner:
    def test_reserve_epsilon_uses_kind_factor(self):
        for kind, factor in QUERY_KINDS.items():
            levels = (0.5,) if kind == "quantile" else ()
            dimension = 2 if kind == "multivariate_mean" else 1
            plan = plan_query(
                Query(kind=kind, epsilon=0.4, levels=levels),
                records=100,
                dimension=dimension,
            )
            assert plan.reserve_epsilon == pytest.approx(0.4 * factor)

    def test_variance_reserves_more_than_nominal(self):
        plan = plan_query(Query(kind="variance", epsilon=1.0), records=100, dimension=1)
        assert plan.reserve_epsilon == pytest.approx(9.0 / 8.0)

    def test_univariate_kind_rejects_matrix_dataset(self):
        with pytest.raises(InvalidQueryError):
            plan_query(Query(kind="mean", epsilon=0.5), records=100, dimension=3)

    def test_multivariate_kind_rejects_vector_dataset(self):
        with pytest.raises(InvalidQueryError):
            plan_query(
                Query(kind="multivariate_mean", epsilon=0.5), records=100, dimension=1
            )

    def test_tiny_dataset_rejected_before_any_spend(self):
        with pytest.raises(InsufficientDataError):
            plan_query(Query(kind="mean", epsilon=0.5), records=4, dimension=1)
