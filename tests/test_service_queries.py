"""Tests for the typed query model and planner."""

from __future__ import annotations

import pytest

from repro.estimators import get_estimator
from repro.exceptions import InsufficientDataError, PrivacyParameterError
from repro.service import (
    QUERY_KINDS,
    InvalidQueryError,
    Query,
    UnknownQueryKindError,
    plan_query,
)


def example_query(kind: str, epsilon: float = 0.5, **overrides) -> Query:
    """A valid query for ``kind`` using the spec's example parameters."""
    params = get_estimator(kind).example_params()
    params.update(overrides)
    return Query(kind=kind, epsilon=epsilon, params=tuple(params.items()))


class TestQueryValidation:
    def test_all_kinds_construct(self):
        for kind in QUERY_KINDS:
            query = example_query(kind)
            assert query.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="median", epsilon=0.5)

    def test_unknown_kind_error_lists_registered_kinds(self):
        with pytest.raises(UnknownQueryKindError) as excinfo:
            Query(kind="median", epsilon=0.5)
        assert sorted(excinfo.value.kinds) == sorted(QUERY_KINDS)
        assert "mean" in str(excinfo.value)

    def test_bad_epsilon_rejected(self):
        for epsilon in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises((InvalidQueryError, PrivacyParameterError)):
                Query(kind="mean", epsilon=epsilon)

    def test_bad_beta_rejected(self):
        with pytest.raises((InvalidQueryError, PrivacyParameterError)):
            Query(kind="mean", epsilon=0.5, beta=1.5)

    def test_quantile_requires_levels(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="quantile", epsilon=0.5)

    def test_quantile_levels_range_checked(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="quantile", epsilon=0.5, levels=(0.5, 1.0))

    def test_levels_forbidden_for_scalar_kinds(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="mean", epsilon=0.5, levels=(0.5,))

    def test_unknown_param_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="mean", epsilon=0.5, params=(("radius", 10.0),))

    def test_missing_required_param_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(kind="baseline.bounded_laplace_mean", epsilon=0.5)

    def test_param_bounds_enforced(self):
        with pytest.raises(InvalidQueryError):
            Query(
                kind="baseline.bounded_laplace_mean",
                epsilon=0.5,
                params=(("radius", -1.0),),
            )

    def test_cross_param_check_enforced(self):
        # sigma_min > sigma_max fails the baseline's constructor-backed check.
        with pytest.raises(InvalidQueryError):
            Query(
                kind="baseline.karwa_vadhan_variance",
                epsilon=0.5,
                params=(("sigma_min", 10.0), ("sigma_max", 1.0)),
            )

    def test_defaults_canonicalised_into_params(self):
        bare = example_query("baseline.coinpress_mean")
        explicit = example_query("baseline.coinpress_mean", rounds=3)
        assert bare == explicit
        assert dict(bare.params)["rounds"] == 3


class TestCanonicalKey:
    def test_equal_queries_share_a_key(self):
        a = Query(kind="quantile", epsilon=0.5, levels=(0.5, 0.9))
        b = Query(kind="quantile", epsilon=0.5, levels=[0.5, 0.9])
        assert a.canonical_key("d") == b.canonical_key("d")

    def test_key_separates_datasets_kinds_and_params(self):
        base = Query(kind="mean", epsilon=0.5)
        assert base.canonical_key("a") != base.canonical_key("b")
        assert base.canonical_key("a") != Query(kind="iqr", epsilon=0.5).canonical_key("a")
        assert base.canonical_key("a") != Query(kind="mean", epsilon=0.6).canonical_key("a")
        assert (
            base.canonical_key("a")
            != Query(kind="mean", epsilon=0.5, beta=0.1).canonical_key("a")
        )

    def test_key_distinguishes_level_order(self):
        a = Query(kind="quantile", epsilon=0.5, levels=(0.25, 0.75))
        b = Query(kind="quantile", epsilon=0.5, levels=(0.75, 0.25))
        assert a.canonical_key("d") != b.canonical_key("d")

    def test_legacy_key_layout_unchanged_for_builtin_kinds(self):
        # The pre-registry key format is load-bearing: per-query seeds derive
        # from it, so these exact strings guarantee bit-for-bit answers.
        assert (
            Query(kind="mean", epsilon=0.5).canonical_key("d")
            == f"d|mean|eps=0.5|beta={1/3!r}|levels="
        )
        assert (
            Query(kind="quantile", epsilon=0.5, levels=(0.5, 0.9)).canonical_key("d")
            == f"d|quantile|eps=0.5|beta={1/3!r}|levels=0.5,0.9"
        )

    def test_param_key_order_invariant(self):
        a = Query(
            kind="baseline.coinpress_mean",
            epsilon=0.5,
            params=(("radius", 100.0), ("sigma_max", 2.0)),
        )
        b = Query(
            kind="baseline.coinpress_mean",
            epsilon=0.5,
            params=(("sigma_max", 2.0), ("radius", 100)),  # int spelling too
        )
        assert a.canonical_key("d") == b.canonical_key("d")

    def test_param_values_distinguish_keys(self):
        a = example_query("baseline.bounded_laplace_mean", radius=10.0)
        b = example_query("baseline.bounded_laplace_mean", radius=20.0)
        assert a.canonical_key("d") != b.canonical_key("d")


class TestJsonRoundTrip:
    def test_round_trip(self):
        query = Query(kind="quantile", epsilon=0.5, beta=0.1, levels=(0.5, 0.99))
        assert Query.from_json(query.to_json()) == query

    def test_round_trip_with_params(self):
        for kind in QUERY_KINDS:
            query = example_query(kind)
            assert Query.from_json(query.to_json()) == query

    def test_params_object_accepted(self):
        query = Query.from_json(
            {"kind": "baseline.bounded_laplace_mean", "epsilon": 0.5,
             "params": {"radius": 50.0}}
        )
        assert dict(query.params)["radius"] == 50.0

    def test_levels_accepted_inside_params(self):
        query = Query.from_json(
            {"kind": "quantile", "epsilon": 0.5, "params": {"levels": [0.5]}}
        )
        assert query.levels == (0.5,)

    def test_legacy_top_level_levels_rejected(self):
        # the one-release alias is gone: "levels" is an unknown field now
        with pytest.raises(InvalidQueryError, match="levels"):
            Query.from_json(
                {"kind": "quantile", "epsilon": 0.5, "levels": [0.5]}
            )

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean"})
        with pytest.raises(InvalidQueryError):
            Query.from_json({"epsilon": 0.5})

    def test_unknown_fields_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean", "epsilon": 0.5, "bogus": 1})

    def test_non_numeric_epsilon_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json({"kind": "mean", "epsilon": "lots"})

    def test_levels_must_be_a_list(self):
        with pytest.raises(InvalidQueryError):
            Query.from_json(
                {"kind": "quantile", "epsilon": 0.5,
                 "params": {"levels": "0.5"}}
            )


class TestPlanner:
    def test_reserve_epsilon_uses_kind_factor(self):
        for kind, factor in QUERY_KINDS.items():
            spec = get_estimator(kind)
            dimension = 2 if spec.dimension == "multivariate" else 1
            plan = plan_query(
                example_query(kind, epsilon=0.4),
                records=100,
                dimension=dimension,
            )
            assert plan.reserve_epsilon == pytest.approx(0.4 * factor)

    def test_disallowed_kind_rejected(self):
        with pytest.raises(InvalidQueryError):
            plan_query(
                Query(kind="mean", epsilon=0.5),
                records=100,
                dimension=1,
                allowed=("iqr", "variance"),
            )
        plan = plan_query(
            Query(kind="mean", epsilon=0.5),
            records=100,
            dimension=1,
            allowed=("mean",),
        )
        assert plan.query.kind == "mean"

    def test_variance_reserves_more_than_nominal(self):
        plan = plan_query(Query(kind="variance", epsilon=1.0), records=100, dimension=1)
        assert plan.reserve_epsilon == pytest.approx(9.0 / 8.0)

    def test_univariate_kind_rejects_matrix_dataset(self):
        with pytest.raises(InvalidQueryError):
            plan_query(Query(kind="mean", epsilon=0.5), records=100, dimension=3)

    def test_multivariate_kind_rejects_vector_dataset(self):
        with pytest.raises(InvalidQueryError):
            plan_query(
                Query(kind="multivariate_mean", epsilon=0.5), records=100, dimension=1
            )

    def test_tiny_dataset_rejected_before_any_spend(self):
        with pytest.raises(InsufficientDataError):
            plan_query(Query(kind="mean", epsilon=0.5), records=4, dimension=1)
