"""Tests for error metrics and summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ErrorSummary, absolute_error, relative_error, summarize_errors
from repro.exceptions import DomainError


class TestPointMetrics:
    def test_absolute_error(self):
        assert absolute_error(3.0, 5.0) == 2.0
        assert absolute_error(5.0, 3.0) == 2.0

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))

    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry_and_nonnegativity(self, a, b):
        assert absolute_error(a, b) == absolute_error(b, a)
        assert absolute_error(a, b) >= 0.0


class TestSummarizeErrors:
    def test_summary_fields(self):
        errors = np.abs(np.random.default_rng(0).normal(size=1000))
        summary = summarize_errors(errors)
        assert isinstance(summary, ErrorSummary)
        assert summary.trials == 1000
        assert summary.median <= summary.q90 <= summary.q95 <= summary.max
        assert summary.mean > 0

    def test_single_value(self):
        summary = summarize_errors([2.5])
        assert summary.mean == summary.median == summary.max == 2.5

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            summarize_errors([])

    def test_as_row(self):
        row = summarize_errors([1.0, 2.0, 3.0]).as_row()
        assert row["trials"] == 3
        assert row["mean_err"] == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property_order_of_quantiles(self, errors):
        summary = summarize_errors(errors)
        assert summary.median <= summary.q90 + 1e-9
        assert summary.q90 <= summary.q95 + 1e-9
        assert summary.q95 <= summary.max + 1e-9
        assert min(errors) - 1e-9 <= summary.mean <= max(errors) + 1e-9
