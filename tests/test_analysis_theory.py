"""Tests for the theoretical bound curves."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    empirical_mean_error_bound,
    gaussian_mean_error_bound,
    gaussian_variance_error_bound,
    heavy_tailed_mean_error_bound,
    heavy_tailed_variance_error_bound,
    iqr_error_bound,
    loglog,
    quantile_rank_error_bound,
)
from repro.analysis.theory import packing_lower_bound_value, paper_log
from repro.exceptions import DomainError


class TestPaperLog:
    def test_small_arguments_clamp_to_one(self):
        assert paper_log(0.5) == 1.0
        assert paper_log(math.e) == 1.0

    def test_large_arguments_are_natural_log(self):
        assert paper_log(math.e**3) == pytest.approx(3.0)

    def test_loglog_always_at_least_one(self):
        for x in (0.1, 1.0, 10.0, 1e6, 1e30):
            assert loglog(x) >= 1.0

    def test_loglog_grows_extremely_slowly(self):
        assert loglog(1e100) < 6.0


class TestEmpiricalBounds:
    def test_mean_bound_scales_inversely_with_n_and_eps(self):
        assert empirical_mean_error_bound(100, 1000, 1.0) > empirical_mean_error_bound(
            100, 10_000, 1.0
        )
        assert empirical_mean_error_bound(100, 1000, 0.1) > empirical_mean_error_bound(
            100, 1000, 1.0
        )

    def test_mean_bound_scales_with_gamma(self):
        assert empirical_mean_error_bound(10_000, 1000, 1.0) > empirical_mean_error_bound(
            100, 1000, 1.0
        )

    def test_quantile_bound_logarithmic_in_gamma(self):
        ratio = quantile_rank_error_bound(10.0**9, 1.0) / quantile_rank_error_bound(10.0**3, 1.0)
        assert ratio < 5.0

    def test_packing_lower_bound_positive(self):
        assert packing_lower_bound_value(2.0**5, 200, 0.5, 2**10) > 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DomainError):
            empirical_mean_error_bound(-1.0, 100, 1.0)
        with pytest.raises(DomainError):
            quantile_rank_error_bound(10.0, 0.0)


class TestStatisticalBounds:
    def test_gaussian_mean_bound_dominated_by_sampling_for_large_eps_n(self):
        bound = gaussian_mean_error_bound(10**6, 1.0, 1.0)
        assert bound == pytest.approx(1.0 / 1000.0, rel=0.5)

    def test_gaussian_mean_bound_decreasing_in_n(self):
        values = [gaussian_mean_error_bound(n, 0.5, 2.0) for n in (10**3, 10**4, 10**5)]
        assert values[0] > values[1] > values[2]

    def test_gaussian_variance_bound_scales_with_sigma_squared(self):
        assert gaussian_variance_error_bound(10**4, 0.5, 2.0) > gaussian_variance_error_bound(
            10**4, 0.5, 1.0
        )

    def test_heavy_tailed_bound_worsens_for_smaller_k(self):
        common = dict(n=10**4, epsilon=0.5, sigma=1.0, phi=1.0)
        k2 = heavy_tailed_mean_error_bound(mu_k=1.0, k=2, **common)
        k4 = heavy_tailed_mean_error_bound(mu_k=1.0, k=4, **common)
        assert k2 > k4

    def test_heavy_tailed_variance_requires_k_at_least_4(self):
        with pytest.raises(DomainError):
            heavy_tailed_variance_error_bound(1000, 0.5, 3.0, 3, 10.0, 1.0)

    def test_heavy_tailed_variance_bound_positive(self):
        assert heavy_tailed_variance_error_bound(10**4, 0.5, 3.0, 4, 10.0, 1.0) > 0

    def test_iqr_bound_max_of_three_regimes(self):
        # Privacy-dominated regime: tiny epsilon.
        privacy_dominated = iqr_error_bound(10**4, 1e-4, 1.0, 1.0)
        assert privacy_dominated == pytest.approx(1.0 / (1e-4 * 10**4 * 1.0))
        # Sampling-dominated regime: huge epsilon.
        sampling_dominated = iqr_error_bound(10**4, 100.0, 1.0, 1.0)
        assert sampling_dominated == pytest.approx(1.0 / (1.0 * 100.0))

    @given(
        n=st.integers(min_value=100, max_value=10**6),
        epsilon=st.floats(min_value=0.01, max_value=2.0),
        sigma=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bounds_positive_and_finite(self, n, epsilon, sigma):
        for bound in (
            gaussian_mean_error_bound(n, epsilon, sigma),
            gaussian_variance_error_bound(n, epsilon, sigma),
            iqr_error_bound(n, epsilon, sigma, 1.0 / sigma),
        ):
            assert bound > 0.0
            assert math.isfinite(bound)
