"""Tests for privacy budgets and parameter validation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.accounting import PrivacyBudget, validate_beta, validate_epsilon
from repro.exceptions import PrivacyParameterError


class TestValidateEpsilon:
    @pytest.mark.parametrize("value", [0.1, 1.0, 0.001, 10.0])
    def test_valid_values_pass_through(self, value):
        assert validate_epsilon(value) == pytest.approx(value)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_values_raise(self, value):
        with pytest.raises(PrivacyParameterError):
            validate_epsilon(value)

    def test_custom_name_in_message(self):
        with pytest.raises(PrivacyParameterError, match="inner_eps"):
            validate_epsilon(-1.0, name="inner_eps")


class TestValidateBeta:
    @pytest.mark.parametrize("value", [0.01, 0.5, 0.99])
    def test_valid_values_pass_through(self, value):
        assert validate_beta(value) == pytest.approx(value)

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.5, 2.0, float("nan")])
    def test_invalid_values_raise(self, value):
        with pytest.raises(PrivacyParameterError):
            validate_beta(value)


class TestPrivacyBudget:
    def test_construction_and_defaults(self):
        budget = PrivacyBudget(0.5)
        assert budget.epsilon == pytest.approx(0.5)
        assert 0.0 < budget.beta < 1.0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(-0.5)

    def test_invalid_beta_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(0.5, beta=1.5)

    def test_split_preserves_total(self):
        budget = PrivacyBudget(1.0)
        parts = budget.split(0.125, 0.75, 0.125)
        assert sum(p.epsilon for p in parts) == pytest.approx(1.0)

    def test_split_rejects_overspend(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0).split(0.6, 0.6)

    def test_split_rejects_nonpositive_fraction(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(1.0).split(0.5, -0.1)

    def test_split_requires_at_least_one_fraction(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split()

    def test_scaled(self):
        assert PrivacyBudget(2.0).scaled(0.25).epsilon == pytest.approx(0.5)

    def test_scaled_rejects_out_of_range(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyBudget(2.0).scaled(1.5)

    def test_compose_adds_epsilons(self):
        composed = PrivacyBudget.compose([PrivacyBudget(0.25, 0.1), PrivacyBudget(0.5, 0.1)])
        assert composed.epsilon == pytest.approx(0.75)
        assert composed.beta == pytest.approx(0.2)

    def test_compose_caps_beta_below_one(self):
        composed = PrivacyBudget.compose([PrivacyBudget(0.1, 0.6), PrivacyBudget(0.1, 0.6)])
        assert composed.beta < 1.0

    def test_compose_empty_raises(self):
        with pytest.raises(ValueError):
            PrivacyBudget.compose([])

    @given(
        epsilon=st.floats(min_value=1e-3, max_value=10.0),
        fractions=st.lists(st.floats(min_value=0.01, max_value=0.3), min_size=1, max_size=3),
    )
    def test_split_never_exceeds_parent(self, epsilon, fractions):
        if sum(fractions) > 1.0:
            fractions = [f / (sum(fractions) + 1e-9) for f in fractions]
        parts = PrivacyBudget(epsilon).split(*fractions)
        assert sum(p.epsilon for p in parts) <= epsilon * (1 + 1e-9)
