"""Tests for the noisy-answer cache."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import DomainError
from repro.service import AnswerCache


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        assert cache.get("k") is None
        cache.put("k", 1.25)
        assert cache.get("k") == 1.25
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = AnswerCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_zero_maxsize_disables_caching(self):
        cache = AnswerCache(maxsize=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(DomainError):
            AnswerCache(maxsize=-1)

    def test_clear(self):
        cache = AnswerCache()
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None

    def test_overwrite_updates_value(self):
        cache = AnswerCache()
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_concurrent_putters_and_getters(self):
        cache = AnswerCache(maxsize=64)
        threads = 8
        barrier = threading.Barrier(threads)

        def worker(worker_id: int):
            barrier.wait()
            for i in range(200):
                key = f"k{(worker_id + i) % 100}"
                cache.put(key, i)
                cache.get(key)

        pool = [threading.Thread(target=worker, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats
        assert stats.size <= 64
        assert stats.hits + stats.misses == threads * 200


class TestEvictionUnderContention:
    def test_eviction_hammer_keeps_invariants(self):
        """Many threads churning a tiny cache: eviction must stay consistent.

        A small ``maxsize`` forces constant LRU eviction while getters race
        putters on overlapping keys.  Throughout and afterwards: occupancy
        never exceeds ``maxsize``, every counter moves monotonically, and the
        accounting identity hits + misses == gets holds exactly.
        """
        maxsize = 8
        cache = AnswerCache(maxsize=maxsize)
        threads = 12
        rounds = 500
        keyspace = 64  # >> maxsize: almost every put evicts
        barrier = threading.Barrier(threads)
        oversize_seen = []
        errors = []

        def worker(worker_id: int):
            try:
                barrier.wait()
                for i in range(rounds):
                    key = f"k{(worker_id * 7 + i * 13) % keyspace}"
                    if (worker_id + i) % 3 == 0:
                        cache.put(key, (worker_id, i))
                    value = cache.get(key)
                    if value is not None and not isinstance(value, tuple):
                        errors.append(f"corrupt value {value!r}")
                    if len(cache) > maxsize:
                        oversize_seen.append(len(cache))
            except Exception as exc:  # noqa: BLE001 - the test asserts on it
                errors.append(repr(exc))

        pool = [threading.Thread(target=worker, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert not errors
        assert not oversize_seen, f"cache exceeded maxsize: {max(oversize_seen)}"
        stats = cache.stats
        assert stats.size <= maxsize
        assert stats.hits + stats.misses == threads * rounds
        assert stats.evictions > 0  # the hammer really exercised eviction
        # Evictions reconcile with occupancy: puts - evictions == size
        # cannot be asserted exactly (puts overwrite), but occupancy plus
        # evictions can never exceed total puts.
        total_puts = sum(
            1
            for worker_id in range(threads)
            for i in range(rounds)
            if (worker_id + i) % 3 == 0
        )
        assert stats.evictions + stats.size <= total_puts
