"""Tests for the noisy-answer cache."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import DomainError
from repro.service import AnswerCache


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        assert cache.get("k") is None
        cache.put("k", 1.25)
        assert cache.get("k") == 1.25
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = AnswerCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_zero_maxsize_disables_caching(self):
        cache = AnswerCache(maxsize=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(DomainError):
            AnswerCache(maxsize=-1)

    def test_clear(self):
        cache = AnswerCache()
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None

    def test_overwrite_updates_value(self):
        cache = AnswerCache()
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_concurrent_putters_and_getters(self):
        cache = AnswerCache(maxsize=64)
        threads = 8
        barrier = threading.Barrier(threads)

        def worker(worker_id: int):
            barrier.wait()
            for i in range(200):
                key = f"k{(worker_id + i) % 100}"
                cache.put(key, i)
                cache.get(key)

        pool = [threading.Thread(target=worker, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats
        assert stats.size <= 64
        assert stats.hits + stats.misses == threads * 200
