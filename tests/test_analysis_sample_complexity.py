"""Tests for the empirical sample-complexity search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import empirical_sample_complexity
from repro.distributions import Gaussian
from repro.exceptions import DomainError


def sample_mean_estimator(data, gen):
    return float(np.mean(data))


class TestEmpiricalSampleComplexity:
    def test_finds_reasonable_n_for_sample_mean(self, rng):
        # For alpha = 0.25 and sigma = 1, n ~ sigma^2/alpha^2 = 16 suffices;
        # the search starts at 32 so it should succeed immediately.
        result = empirical_sample_complexity(
            sample_mean_estimator,
            Gaussian(0.0, 1.0),
            "mean",
            alpha=0.25,
            trials=15,
            min_n=32,
            max_n=8192,
            rng=rng,
        )
        assert result.n_star is not None
        assert result.n_star <= 256

    def test_harder_target_needs_more_samples(self, rng):
        easy = empirical_sample_complexity(
            sample_mean_estimator,
            Gaussian(0.0, 1.0),
            "mean",
            alpha=0.5,
            trials=12,
            min_n=16,
            max_n=65536,
            rng=np.random.default_rng(0),
        )
        hard = empirical_sample_complexity(
            sample_mean_estimator,
            Gaussian(0.0, 1.0),
            "mean",
            alpha=0.02,
            trials=12,
            min_n=16,
            max_n=65536,
            rng=np.random.default_rng(0),
        )
        assert easy.n_star is not None and hard.n_star is not None
        assert hard.n_star > easy.n_star

    def test_unreachable_target_returns_none(self, rng):
        result = empirical_sample_complexity(
            lambda data, gen: float(np.mean(data) + 100.0),  # hopelessly biased
            Gaussian(0.0, 1.0),
            "mean",
            alpha=0.1,
            trials=5,
            min_n=16,
            max_n=64,
            rng=rng,
        )
        assert result.n_star is None
        assert len(result.tested) >= 2

    def test_tested_pairs_recorded(self, rng):
        result = empirical_sample_complexity(
            sample_mean_estimator,
            Gaussian(0.0, 1.0),
            "mean",
            alpha=0.3,
            trials=8,
            min_n=16,
            max_n=1024,
            rng=rng,
        )
        assert all(isinstance(n, int) and 0.0 <= rate <= 1.0 for n, rate in result.tested)

    def test_invalid_alpha_rejected(self, rng):
        with pytest.raises(DomainError):
            empirical_sample_complexity(
                sample_mean_estimator, Gaussian(), "mean", alpha=0.0, rng=rng
            )

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(DomainError):
            empirical_sample_complexity(
                sample_mean_estimator, Gaussian(), "mean", alpha=0.1, min_n=4, max_n=2, rng=rng
            )
