"""Tests for repro.client.ServiceClient against a live threaded server."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.exceptions import DomainError
from repro.service.config import build_service, parse_serving_config

VALUES = [float(v) for v in range(64)]


@pytest.fixture
def live():
    from repro.service import make_server, serve_forever

    config = parse_serving_config(
        {
            "service": {"seed": 3, "quiet": True, "allow_register": True},
            "datasets": [
                {
                    "name": "d", "values": VALUES, "budget": 4.0,
                    "analyst_budgets": {"capped": 0.1},
                }
            ],
            "admin": {"token": "s3cret"},
        }
    )
    built = build_service(config)
    server = make_server(
        built.service, port=0, allow_register=True, quiet=True,
        limiter=built.limiter, admin=built.admin,
    )
    thread = serve_forever(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    built.close()


class TestDataPlane:
    def test_health_stats_kinds(self, live):
        client = ServiceClient(live.url)
        assert client.health()["status"] == "ok"
        assert client.stats()["datasets"][0]["name"] == "d"
        assert "mean" in client.kinds()["kinds"]

    def test_query_canonical_params(self, live):
        client = ServiceClient(live.url)
        status, doc = client.query(
            "d", "quantile", epsilon=0.5, params={"levels": [0.5]}
        )
        assert status == 200
        assert doc["status"] == "ok"
        assert "deprecated" not in doc  # the client speaks canonical v1
        assert "levels" not in doc["query"]

    def test_query_refusal_returned_not_raised(self, live):
        client = ServiceClient(live.url)
        status, doc = client.query("d", "mean", epsilon=99.0)
        assert status == 403
        assert doc["status"] == "refused"
        assert doc["error"]["code"] == "budget_exceeded"

    def test_default_analyst_attached(self, live):
        # the default analyst rides on every query: "capped" (0.1 sub-budget)
        # is refused where an uncapped analyst is served
        client = ServiceClient(live.url, analyst="capped")
        status, doc = client.query("d", "mean", epsilon=0.4)
        assert status == 403
        assert doc["status"] == "refused"
        status, doc = client.query("d", "mean", epsilon=0.4, analyst="free")
        assert status == 200 and doc["status"] == "ok"

    def test_batch(self, live):
        client = ServiceClient(live.url)
        status, doc = client.query_batch(
            [
                {"dataset": "d", "kind": "mean", "epsilon": 0.25},
                {"dataset": "ghost", "kind": "mean", "epsilon": 0.25},
            ]
        )
        assert status == 200
        assert [a["status"] for a in doc["answers"]] == ["ok", "invalid"]

    def test_register(self, live):
        client = ServiceClient(live.url)
        status, doc = client.register("fresh", list(np.arange(100.0)), 2.0)
        assert status == 201
        assert doc["dataset"]["records"] == 100
        status, doc = client.query("fresh", "mean", epsilon=0.5)
        assert status == 200 and doc["status"] == "ok"

    def test_metrics_text(self, live):
        client = ServiceClient(live.url)
        client.query("d", "mean", epsilon=0.2)
        text = client.metrics()
        assert "repro_requests_total" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text


class TestControlPlane:
    def test_admin_state_requires_token(self, live):
        assert ServiceClient(live.url).admin_state()[0] == 401
        status, doc = ServiceClient(live.url, token="s3cret").admin_state()
        assert status == 200
        assert doc["admin"]["enabled"] is True

    def test_admin_reload_inline(self, live):
        client = ServiceClient(live.url, token="s3cret")
        document = {
            "service": {"seed": 3, "quiet": True, "allow_register": True},
            "datasets": [
                {
                    "name": "d", "values": VALUES, "budget": 4.0,
                    "analyst_budgets": {"capped": 0.1},
                },
                {"name": "hot", "values": VALUES, "budget": 1.0},
            ],
            "admin": {"token": "s3cret"},
        }
        status, doc = client.admin_reload(document)
        assert status == 200
        assert [c["action"] for c in doc["applied"]] == ["add_dataset"]
        status, doc = client.query("hot", "mean", epsilon=0.3)
        assert status == 200 and doc["status"] == "ok"
        # same document again: provable no-op
        status, doc = client.admin_reload(document)
        assert status == 200 and doc["unchanged"] is True

    def test_admin_drain(self, live):
        client = ServiceClient(live.url, token="s3cret")
        status, doc = client.admin_drain("d")
        assert status == 200 and doc["dataset"]["draining"] is True
        status, doc = client.admin_drain("d", draining=False)
        assert status == 200 and doc["dataset"]["draining"] is False


class TestTransportErrors:
    def test_unreachable_raises_domain_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(DomainError, match="cannot reach service"):
            client.health()

    def test_base_url_trailing_slash_normalised(self, live):
        client = ServiceClient(live.url + "/")
        assert client.health()["status"] == "ok"
