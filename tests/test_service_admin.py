"""Tests for the live control plane (repro.service.admin).

Covers the declarative differ's full change matrix, the rejection paths
(everything a running process cannot honour), and the AdminController's
auth + reload + drain flows — including the acceptance property that
reloading an unchanged config is a provable no-op.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import DomainError
from repro.service.admin import (
    AdminController,
    ConfigChange,
    ReloadRejected,
    diff_serving_configs,
)
from repro.service.config import (
    build_service,
    load_serving_config,
    parse_serving_config,
)

VALUES = [float(v) for v in range(64)]


def make_config(document=None, **overrides):
    """A small valid config document, parsed; overrides patch the result."""
    if document is None:
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
        }
    config = parse_serving_config(document)
    return dataclasses.replace(config, **overrides) if overrides else config


def actions(changes):
    return [change.action for change in changes]


class TestDiffer:
    def test_unchanged_config_diffs_to_empty(self):
        old = make_config()
        new = make_config()
        assert diff_serving_configs(old, new) == []

    def test_add_dataset_and_group_ordered_group_first(self):
        old = make_config()
        new = make_config(
            {
                "service": {"seed": 7, "quiet": True},
                "groups": {"g": {"budget": 3.0}},
                "datasets": [
                    {"name": "d", "values": VALUES, "budget": 4.0},
                    {"name": "e", "values": VALUES, "group": "g"},
                ],
            }
        )
        changes = diff_serving_configs(old, new)
        assert actions(changes) == ["add_group", "add_dataset"]
        assert changes[0].target == "g"
        assert changes[1].target == "e"
        assert changes[1].detail["group"] == "g"

    def test_removal_requires_drain(self):
        old = make_config(
            {
                "service": {"seed": 7, "quiet": True},
                "datasets": [
                    {"name": "d", "values": VALUES, "budget": 4.0},
                    {"name": "e", "values": VALUES, "budget": 1.0},
                ],
            }
        )
        new = make_config()
        with pytest.raises(ReloadRejected) as excinfo:
            diff_serving_configs(old, new)
        assert any("draining" in problem for problem in excinfo.value.problems)
        changes = diff_serving_configs(old, new, draining=("e",))
        assert actions(changes) == ["remove_dataset"]
        assert changes[0].target == "e"

    def test_restart_fields_rejected_all_problems_listed(self):
        old = make_config()
        new = make_config(
            {
                "service": {"seed": 8, "workers": 3, "quiet": True},
                "datasets": [{"name": "d", "values": VALUES, "budget": 9.0}],
            }
        )
        with pytest.raises(ReloadRejected) as excinfo:
            diff_serving_configs(old, new)
        problems = "\n".join(excinfo.value.problems)
        # one round-trip reports every problem, not just the first
        assert len(excinfo.value.problems) == 3
        assert "seed" in problems and "workers" in problems and "budget=" in problems

    def test_frozen_dataset_fields_rejected(self):
        old = make_config()
        for patch in (
            {"values": [float(v) for v in range(32)]},
            {"budget": 5.0},
        ):
            document = {
                "service": {"seed": 7, "quiet": True},
                "datasets": [dict({"name": "d", "values": VALUES, "budget": 4.0}, **patch)],
            }
            with pytest.raises(ReloadRejected):
                diff_serving_configs(old, make_config(document))

    def test_group_removal_and_budget_change_rejected(self):
        base = {
            "service": {"seed": 7, "quiet": True},
            "groups": {"g": {"budget": 3.0}},
            "datasets": [{"name": "d", "values": VALUES, "group": "g"}],
        }
        old = make_config(base)
        resized = dict(base, groups={"g": {"budget": 6.0}})
        with pytest.raises(ReloadRejected) as excinfo:
            diff_serving_configs(old, make_config(resized))
        assert "joint budget" in excinfo.value.problems[0]

    def test_update_kinds_and_rotate_budgets(self):
        base = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
        }
        old = make_config(base)
        new = make_config(
            {
                "service": {"seed": 7, "quiet": True},
                "datasets": [
                    {
                        "name": "d",
                        "values": VALUES,
                        "budget": 4.0,
                        "kinds": ["mean"],
                        "analyst_budgets": {"alice": 1.0},
                    }
                ],
            }
        )
        changes = diff_serving_configs(old, new)
        assert sorted(actions(changes)) == ["rotate_analyst_budgets", "update_kinds"]
        by_action = {change.action: change for change in changes}
        assert by_action["update_kinds"].detail["kinds"] == ["mean"]
        assert by_action["rotate_analyst_budgets"].detail["analysts"] == ["alice"]

    def test_cache_limits_and_token_changes(self):
        old = make_config()
        new = make_config(
            {
                "service": {"seed": 7, "quiet": True, "cache_size": 16},
                "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
                "admin": {"token": "s3cret"},
                "limits": {"analyst_rate": 5.0},
            }
        )
        changes = diff_serving_configs(old, new)
        assert sorted(actions(changes)) == [
            "resize_cache", "rotate_admin_token", "update_limits",
        ]
        # the secret itself never leaks into a change record
        assert "s3cret" not in json.dumps([c.to_json() for c in changes])

    def test_change_to_json_shape(self):
        change = ConfigChange("add_dataset", "d", {"budget": 1.0})
        assert change.to_json() == {
            "action": "add_dataset", "target": "d", "detail": {"budget": 1.0},
        }


@pytest.fixture
def built():
    config = make_config(
        {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "admin": {"token": "s3cret"},
        }
    )
    service = build_service(config)
    yield service
    service.close()


class TestControllerAuth:
    def test_no_token_configured_is_403(self):
        config = make_config()
        with build_service(config) as service:
            code, doc = service.admin.handle("GET", "/admin/state", None, "anything")
            assert code == 403
            assert doc["error"]["code"] == "admin_disabled"

    def test_wrong_token_is_401(self, built):
        code, doc = built.admin.handle("GET", "/admin/state", None, "wrong")
        assert code == 401
        assert doc["error"]["code"] == "unauthorized"
        code, _ = built.admin.handle("GET", "/admin/state", None, None)
        assert code == 401

    def test_right_token_serves_state(self, built):
        code, doc = built.admin.handle("GET", "/admin/state", None, "s3cret")
        assert code == 200
        assert doc["admin"]["enabled"] is True
        assert doc["admin"]["reloads"] == 0
        assert doc["admin"]["draining"] == []
        assert doc["stats"]["datasets"][0]["name"] == "d"

    def test_env_token_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMIN_TOKEN", "from-env")
        config = make_config()
        with build_service(config) as service:
            code, _ = service.admin.handle("GET", "/admin/state", None, "from-env")
            assert code == 200


class TestControllerReload:
    def test_unchanged_reload_is_a_provable_noop(self, built):
        before = json.dumps(built.service.stats(), sort_keys=True)
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "admin": {"token": "s3cret"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 200
        assert doc["applied"] == []
        assert doc["unchanged"] is True
        assert doc["reloads"] == 1
        assert json.dumps(built.service.stats(), sort_keys=True) == before

    def test_reload_adds_dataset_and_rotates_budget(self, built):
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [
                {
                    "name": "d", "values": VALUES, "budget": 4.0,
                    "analyst_budgets": {"alice": 0.5},
                },
                {"name": "fresh", "values": VALUES, "budget": 2.0},
            ],
            "admin": {"token": "s3cret"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 200
        applied = {change["action"] for change in doc["applied"]}
        assert applied == {"add_dataset", "rotate_analyst_budgets"}
        # the new dataset answers queries without a restart
        answer = built.service.query("fresh", "mean", epsilon=0.5)
        assert answer.status == "ok"
        # the rotated analyst cap is live
        refused = built.service.query("d", "mean", epsilon=0.6, analyst="alice")
        assert refused.status == "refused"

    def test_rejected_reload_is_409_with_all_problems(self, built):
        document = {
            "service": {"seed": 99, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "admin": {"token": "s3cret"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 409
        assert doc["error"]["code"] == "reload_rejected"
        assert any("seed" in p for p in doc["error"]["detail"]["problems"])

    def test_two_phase_apply_aborts_with_service_untouched(self, built):
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [
                {"name": "d", "values": VALUES, "budget": 4.0},
                {"name": "ghost", "source": "does-not-exist.npy", "budget": 1.0},
            ],
            "admin": {"token": "s3cret"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 400
        assert "does-not-exist" in doc["error"]["message"]
        assert [d.name for d in built.service.registry] == ["d"]

    def test_malformed_reload_body_is_400(self, built):
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": "not a table"}, "s3cret"
        )
        assert code == 400
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"something": "else"}, "s3cret"
        )
        assert code == 400

    def test_reload_without_file_or_inline_is_400(self, built):
        code, doc = built.admin.handle("POST", "/admin/reload", None, "s3cret")
        assert code == 400
        assert "config file" in doc["error"]["message"]

    def test_empty_reload_rereads_booted_file(self, tmp_path):
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "admin": {"token": "s3cret"},
        }
        path = tmp_path / "serving.json"
        path.write_text(json.dumps(document))
        with build_service(load_serving_config(path)) as service:
            code, doc = service.admin.handle("POST", "/admin/reload", None, "s3cret")
            assert code == 200 and doc["unchanged"] is True
            # edit the file on disk, reload again: the add is applied
            document["datasets"].append(
                {"name": "fresh", "values": VALUES, "budget": 1.0}
            )
            path.write_text(json.dumps(document))
            code, doc = service.admin.handle("POST", "/admin/reload", None, "s3cret")
            assert code == 200
            assert actions_of(doc) == ["add_dataset"]
            assert service.service.query("fresh", "mean", epsilon=0.5).status == "ok"

    def test_token_rotation_applies_immediately(self, built):
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
            "admin": {"token": "rotated"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 200
        assert actions_of(doc) == ["rotate_admin_token"]
        assert built.admin.handle("GET", "/admin/state", None, "s3cret")[0] == 401
        assert built.admin.handle("GET", "/admin/state", None, "rotated")[0] == 200


def actions_of(doc):
    return [change["action"] for change in doc["applied"]]


class TestControllerDrain:
    def test_drain_then_remove(self, built):
        code, doc = built.admin.handle(
            "POST", "/admin/drain", {"dataset": "d"}, "s3cret"
        )
        assert code == 200
        assert doc["dataset"]["draining"] is True
        _, state = built.admin.handle("GET", "/admin/state", None, "s3cret")
        assert state["admin"]["draining"] == ["d"]

        # drained datasets serve cached answers but refuse fresh releases
        refused = built.service.query("d", "mean", epsilon=0.5)
        assert refused.status == "refused"

        # ...and may now be removed; add a replacement in the same reload
        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [{"name": "d2", "values": VALUES, "budget": 2.0}],
            "admin": {"token": "s3cret"},
        }
        code, doc = built.admin.handle(
            "POST", "/admin/reload", {"config": document}, "s3cret"
        )
        assert code == 200
        assert sorted(actions_of(doc)) == ["add_dataset", "remove_dataset"]
        assert [d.name for d in built.service.registry] == ["d2"]

    def test_undrain(self, built):
        built.admin.handle("POST", "/admin/drain", {"dataset": "d"}, "s3cret")
        code, doc = built.admin.handle(
            "POST", "/admin/drain", {"dataset": "d", "draining": False}, "s3cret"
        )
        assert code == 200 and doc["dataset"]["draining"] is False
        assert built.service.query("d", "mean", epsilon=0.5).status == "ok"

    def test_drain_unknown_dataset_is_404(self, built):
        code, doc = built.admin.handle(
            "POST", "/admin/drain", {"dataset": "ghost"}, "s3cret"
        )
        assert code == 404
        assert doc["error"]["code"] == "unknown_dataset"

    def test_drain_bad_body_is_400(self, built):
        for payload in (None, {}, {"dataset": "d", "draining": "yes"}):
            code, _ = built.admin.handle("POST", "/admin/drain", payload, "s3cret")
            assert code == 400, payload

    def test_unknown_admin_path_is_404(self, built):
        code, doc = built.admin.handle("GET", "/admin/nope", None, "s3cret")
        assert code == 404
        assert doc["error"]["code"] == "unknown_path"


class TestHttpAdminSurface:
    """End-to-end over the threaded front-end (the async twin is covered by CI)."""

    @pytest.fixture
    def server(self):
        import urllib.error
        import urllib.request

        from repro.service import make_server, serve_forever

        config = make_config(
            {
                "service": {"seed": 7, "quiet": True},
                "datasets": [{"name": "d", "values": VALUES, "budget": 4.0}],
                "admin": {"token": "s3cret"},
            }
        )
        built = build_service(config)
        http_server = make_server(
            built.service, port=0, quiet=True,
            limiter=built.limiter, admin=built.admin,
        )
        thread = serve_forever(http_server)

        def call(path, payload=None, token=None, method=None):
            data = None if payload is None else json.dumps(payload).encode()
            headers = {"Content-Type": "application/json"}
            if token is not None:
                headers["Authorization"] = f"Bearer {token}"
            request = urllib.request.Request(
                http_server.url + path, data=data, headers=headers,
                method=method or ("POST" if data is not None else "GET"),
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as response:
                    return response.status, json.loads(response.read().decode())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read().decode())

        yield call
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)
        built.close()

    def test_live_reload_over_http(self, server):
        status, doc = server("/admin/state", token="s3cret")
        assert status == 200 and doc["admin"]["enabled"] is True

        status, doc = server("/admin/state", token="wrong")
        assert status == 401

        document = {
            "service": {"seed": 7, "quiet": True},
            "datasets": [
                {"name": "d", "values": VALUES, "budget": 4.0},
                {"name": "live", "values": VALUES, "budget": 2.0},
            ],
            "admin": {"token": "s3cret"},
        }
        status, doc = server("/admin/reload", {"config": document}, token="s3cret")
        assert status == 200
        assert actions_of(doc) == ["add_dataset"]

        # the dataset added over HTTP serves queries immediately
        status, doc = server(
            "/query", {"dataset": "live", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 200 and doc["status"] == "ok"

    def test_drained_dataset_serves_cache_but_refuses_fresh(self, server):
        query = {"dataset": "d", "kind": "mean", "epsilon": 0.5}
        status, first = server("/query", query)
        assert status == 200

        status, doc = server("/admin/drain", {"dataset": "d"}, token="s3cret")
        assert status == 200

        status, doc = server("/query", query)  # cache hit still served
        assert status == 200 and doc["cached"] is True and doc["value"] == first["value"]

        status, doc = server("/query", dict(query, epsilon=0.25))  # fresh → refused
        assert status == 403
        assert doc["error"]["code"] == "draining"
