"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro.bench import format_series, format_table, render_experiment_header


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["n", "error"], [[100, 0.5], [1000, 0.05]])
        assert "n" in text and "error" in text
        assert "100" in text and "0.05" in text

    def test_alignment_consistent_line_lengths(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333333, 4]])
        lines = text.splitlines()
        assert len({len(line.rstrip()) for line in lines[:2]}) <= 2

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000012345], [123456.789]])
        assert "e-05" in text or "1.234e-05" in text
        assert "e+05" in text or "123456" not in text

    def test_boolean_cells(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_series_named_and_paired(self):
        text = format_series("error vs n", [10, 100], [0.5, 0.05])
        assert "error vs n" in text
        assert "10" in text and "0.05" in text


class TestExperimentHeader:
    def test_header_contains_id_and_description(self):
        text = render_experiment_header("E7", "Gaussian mean comparison")
        assert "E7" in text
        assert "Gaussian mean comparison" in text
        assert "=" in text
