"""Pool lifecycle, grid execution and shared-memory tests for ``repro.engine``.

The contracts under test:

* an :class:`EnginePool` forks once and serves many ``run_batch``/``run_grid``
  calls, each bit-for-bit identical to a fresh serial run;
* a failing cell aborts only itself — the pool survives and later calls
  still work;
* context exit shuts the workers down;
* nested engine use inside a pool worker degrades to the serial path;
* the closure codec ships lambdas/closures to persistent workers faithfully
  (and falls back to in-process execution when it cannot);
* :class:`SharedArray` hands datasets to workers by segment name, preserving
  values exactly.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.engine import (
    EnginePool,
    GridCell,
    SharedArray,
    as_shared,
    run_batch,
    run_grid,
    unlink_all,
)
from repro.engine._closures import CallableTransferError, decode_callable, encode_callable
from repro.exceptions import DomainError, EngineError, MechanismError

ENGINE_WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "3"))


def _noisy_trial(index, generator):
    return float(generator.normal()) + 1000.0 * index


def _failing_cell_fn(index, generator):
    raise MechanismError(f"cell trial {index} failed")


class TestPoolLifecycle:
    def test_pool_is_lazy_until_first_parallel_call(self):
        with EnginePool(ENGINE_WORKERS) as pool:
            assert pool.alive_workers == 0
            run_batch(_noisy_trial, 6, rng=1, pool=pool)
            assert pool.alive_workers == ENGINE_WORKERS

    def test_reuse_across_many_calls_matches_fresh_serial_runs(self):
        """>= 3 batch/grid calls on one pool == fresh serial runs, bit for bit."""
        with EnginePool(ENGINE_WORKERS) as pool:
            outcomes = [
                run_batch(_noisy_trial, 11, rng=101, pool=pool),
                run_batch(_noisy_trial, 7, rng=202, pool=pool),
                run_batch(lambda i, g: float(g.uniform()), 9, rng=303, pool=pool),
                run_grid(
                    [GridCell(_noisy_trial, 5, rng=404, key="a"),
                     GridCell(_noisy_trial, 6, rng=505, key="b")],
                    pool=pool,
                ),
            ]
            workers_forked = pool.alive_workers
        serial = [
            run_batch(_noisy_trial, 11, rng=101),
            run_batch(_noisy_trial, 7, rng=202),
            run_batch(lambda i, g: float(g.uniform()), 9, rng=303),
            run_grid(
                [GridCell(_noisy_trial, 5, rng=404, key="a"),
                 GridCell(_noisy_trial, 6, rng=505, key="b")],
                workers=1,
            ),
        ]
        assert workers_forked == ENGINE_WORKERS  # forked once, never re-forked
        for pooled, reference in zip(outcomes[:3], serial[:3]):
            assert pooled.results == reference.results
            assert pooled.indices == reference.indices
        for pooled_batch, serial_batch in zip(outcomes[3].batches, serial[3].batches):
            assert pooled_batch.results == serial_batch.results

    def test_pool_survives_a_failing_cell(self):
        with EnginePool(ENGINE_WORKERS) as pool:
            with pytest.raises(MechanismError):
                run_batch(_failing_cell_fn, 4, rng=0, pool=pool)
            # Same pool, next call: still correct.
            after = run_batch(_noisy_trial, 8, rng=42, pool=pool)
            assert after.results == run_batch(_noisy_trial, 8, rng=42).results

            grid = run_grid(
                [
                    GridCell(_noisy_trial, 4, rng=1, key="ok-before"),
                    GridCell(_failing_cell_fn, 4, rng=2, key="bad"),
                    GridCell(_noisy_trial, 4, rng=3, key="ok-after"),
                ],
                pool=pool,
                allow_cell_failures=True,
            )
            assert grid.n_failures == 1
            assert grid.failures[0].key == "bad"
            assert grid.failures[0].error == "MechanismError"
            assert grid.by_key("ok-before").results == run_batch(_noisy_trial, 4, rng=1).results
            assert grid.by_key("ok-after").results == run_batch(_noisy_trial, 4, rng=3).results
            with pytest.raises(DomainError):
                grid.by_key("bad")

    def test_clean_shutdown_on_context_exit(self):
        with EnginePool(ENGINE_WORKERS) as pool:
            run_batch(_noisy_trial, 4, rng=0, pool=pool)
            processes = [handle.process for handle in pool._handles]
            assert all(process.is_alive() for process in processes)
        assert pool.closed
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(EngineError):
            run_batch(_noisy_trial, 4, rng=0, pool=pool)

    def test_close_is_idempotent_and_unused_pool_closes(self):
        pool = EnginePool(2)
        pool.close()
        pool.close()
        assert pool.closed

    def test_workers_one_pool_never_forks(self):
        with EnginePool(1) as pool:
            batch = run_batch(_noisy_trial, 6, rng=5, pool=pool)
            assert batch.workers == 1
            assert pool.alive_workers == 0

    def test_nested_use_degrades_to_serial(self):
        """A trial that itself calls run_batch/run_grid works and stays serial."""

        def outer(index, generator):
            inner = run_batch(_noisy_trial, 3, rng=7, workers=4)
            grid = run_grid([GridCell(_noisy_trial, 3, rng=8)], workers=4)
            return (
                sum(inner.results) + sum(grid.batches[0].results),
                inner.workers,
                grid.workers,
                mp.current_process().daemon,
            )

        with EnginePool(2) as pool:
            pooled = run_batch(outer, 4, rng=3, pool=pool)
        serial = run_batch(outer, 4, rng=3)
        assert [entry[0] for entry in pooled.results] == [
            entry[0] for entry in serial.results
        ]
        # Inside a daemonic pool worker both nested calls ran serially.
        assert all(entry[1] == 1 and entry[2] == 1 and entry[3] for entry in pooled.results)

    def test_convenience_methods(self):
        with EnginePool(2) as pool:
            batch = pool.run_batch(_noisy_trial, 5, rng=1)
            grid = pool.run_grid([GridCell(_noisy_trial, 5, rng=1)])
        assert batch.results == grid.batches[0].results

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(DomainError):
            EnginePool(0)

    def test_function_payloads_released_after_each_call(self):
        """A long-lived pool must not accumulate every trial fn it served."""
        with EnginePool(2) as pool:
            for seed in range(5):
                run_batch(_noisy_trial, 8, rng=seed, pool=pool)
                # Parent-side bookkeeping mirrors the worker caches: after a
                # call completes, its tokens are dropped everywhere.
                assert all(not handle.sent_tokens for handle in pool._handles)
            final = run_batch(_noisy_trial, 8, rng=0, pool=pool)
        assert final.results == run_batch(_noisy_trial, 8, rng=0).results

    def test_interrupted_dispatch_fences_the_pool(self, monkeypatch):
        """An exception escaping the dispatch loop closes the pool: a retry
        must raise EngineError instead of reading the stale in-flight
        results of the aborted call (which would be misattributed by span id)."""
        from repro.engine import pool as pool_module

        with EnginePool(2) as pool:
            run_batch(_noisy_trial, 4, rng=1, pool=pool)  # fork the workers

            def interrupted_wait(*args, **kwargs):
                raise KeyboardInterrupt

            monkeypatch.setattr(pool_module, "wait", interrupted_wait)
            with pytest.raises(KeyboardInterrupt):
                run_batch(_noisy_trial, 8, rng=2, pool=pool)
            monkeypatch.undo()
            assert pool.closed
            with pytest.raises(EngineError):
                run_batch(_noisy_trial, 4, rng=3, pool=pool)

    def test_interrupt_is_not_captured_as_cell_failure(self):
        def interrupting(index, generator):
            if index == 2:
                raise KeyboardInterrupt
            return float(index)

        with pytest.raises(KeyboardInterrupt):
            run_grid(
                [GridCell(interrupting, 5, rng=1, key="cell")],
                workers=2,
                allow_cell_failures=True,
            )


class TestGridDeterminism:
    def _cells(self):
        return [
            GridCell(_noisy_trial, 7, rng=11, key=("n", 100)),
            GridCell(lambda i, g: float(g.uniform()), 13, rng=22, key=("n", 200)),
            GridCell(_noisy_trial, 1, rng=33, key=("n", 300)),
            GridCell(_noisy_trial, 0, rng=44, key=("n", 400)),
        ]

    def test_grid_results_invariant_to_workers_and_chunking(self):
        reference = run_grid(self._cells(), workers=1)
        for workers in (2, ENGINE_WORKERS):
            parallel = run_grid(self._cells(), workers=workers)
            for got, expected in zip(parallel.batches, reference.batches):
                assert got.results == expected.results
                assert got.indices == expected.indices
        chunked = run_grid(
            [GridCell(c.trial_fn, c.trials, c.rng, key=c.key, chunk_size=1)
             for c in self._cells()],
            workers=2,
        )
        for got, expected in zip(chunked.batches, reference.batches):
            assert got.results == expected.results

    def test_grid_cells_match_individual_run_batch(self):
        grid = run_grid(self._cells(), workers=ENGINE_WORKERS)
        for cell, batch in zip(self._cells(), grid.batches):
            solo = run_batch(cell.trial_fn, cell.trials, cell.rng)
            assert batch.results == solo.results

    def test_failure_in_one_cell_does_not_shift_other_cells(self):
        clean = run_grid(self._cells(), workers=1)
        with_failure = run_grid(
            self._cells()[:2]
            + [GridCell(_failing_cell_fn, 5, rng=99, key="bad")]
            + self._cells()[2:],
            workers=ENGINE_WORKERS,
            allow_cell_failures=True,
        )
        assert with_failure.n_failures == 1
        surviving = [b for b in with_failure.batches if b is not None]
        for got, expected in zip(surviving, clean.batches):
            assert got.results == expected.results

    def test_cell_failure_propagates_by_default(self):
        with pytest.raises(MechanismError):
            run_grid(
                [GridCell(_noisy_trial, 4, rng=1),
                 GridCell(_failing_cell_fn, 4, rng=2)],
                workers=2,
            )

    def test_per_cell_allow_failures_capture(self):
        def flaky(index, generator):
            if index % 2 == 0:
                raise MechanismError(f"boom {index}")
            return float(generator.normal())

        grid = run_grid(
            [GridCell(flaky, 6, rng=1, key="flaky", allow_failures=True),
             GridCell(_noisy_trial, 4, rng=2, key="solid")],
            workers=ENGINE_WORKERS,
        )
        flaky_batch = grid.by_key("flaky")
        assert flaky_batch.n_failures == 3
        assert [f.index for f in flaky_batch.failures] == [0, 2, 4]
        reference = run_batch(flaky, 6, rng=1, allow_failures=True)
        assert flaky_batch.results == reference.results
        assert flaky_batch.failures == reference.failures

    def test_empty_grid(self):
        grid = run_grid([], workers=2)
        assert len(grid) == 0
        assert grid.n_failures == 0

    def test_unknown_key_rejected(self):
        grid = run_grid([GridCell(_noisy_trial, 2, rng=1, key="a")])
        with pytest.raises(DomainError):
            grid.by_key("zzz")

    def test_invalid_cells_rejected(self):
        with pytest.raises(DomainError):
            run_grid([GridCell(_noisy_trial, -1, rng=1)])
        with pytest.raises(DomainError):
            run_grid([GridCell(_noisy_trial, 2, rng=1, chunk_size=0)])
        with pytest.raises(DomainError):
            run_grid([GridCell(_noisy_trial, 2, rng=1)], workers=0)


class TestClosureCodec:
    def test_module_function_roundtrip(self):
        decoded = decode_callable(encode_callable(_noisy_trial))
        gen = np.random.default_rng(0)
        gen2 = np.random.default_rng(0)
        assert decoded(3, gen) == _noisy_trial(3, gen2)

    def test_lambda_with_closure_roundtrip(self):
        data = np.arange(10.0)
        offset = 5.0
        fn = lambda i, g: float(data.sum()) + offset + i  # noqa: E731
        decoded = decode_callable(encode_callable(fn))
        assert decoded(2, None) == fn(2, None)

    def test_nested_local_function_roundtrip(self):
        def make(scale):
            def inner(x):
                return x * scale

            def outer(i, g):
                return inner(i) + 1.0

            return outer

        fn = make(3.0)
        decoded = decode_callable(encode_callable(fn))
        assert decoded(4, None) == fn(4, None)

    def test_kwonly_defaults_roundtrip(self):
        def fn(i, g, *, bias=2.5):
            return i + bias

        decoded = decode_callable(encode_callable(fn))
        assert decoded(1, None) == 3.5

    def test_untransferable_callable_raises(self):
        handle = open(os.devnull)  # file objects cannot cross the pipe
        try:
            fn = lambda i, g: handle.fileno()  # noqa: E731
            with pytest.raises(CallableTransferError):
                encode_callable(fn)
        finally:
            handle.close()

    def test_untransferable_trial_fn_falls_back_in_process(self):
        """A closure the codec rejects still runs — serially in the parent."""
        handle = open(os.devnull)
        try:
            fn = lambda i, g: float(g.normal()) + (handle.fileno() * 0)  # noqa: E731
            with EnginePool(2) as pool:
                pooled = run_batch(fn, 6, rng=9, pool=pool)
            serial = run_batch(lambda i, g: float(g.normal()), 6, rng=9)
            assert pooled.results == serial.results
        finally:
            handle.close()

    def test_not_callable_rejected(self):
        with pytest.raises(CallableTransferError):
            encode_callable(42)


class TestSharedMemory:
    def test_roundtrip_values_and_zero_copy_metadata(self):
        source = np.random.default_rng(1).normal(size=(50, 3))
        with as_shared(source) as shared:
            assert shared.shape == (50, 3)
            assert shared.size == 150
            assert shared.owner
            np.testing.assert_array_equal(np.asarray(shared), source)
            import pickle

            clone = pickle.loads(pickle.dumps(shared))
            assert not clone.owner
            assert clone.name == shared.name
            np.testing.assert_array_equal(np.asarray(clone), source)

    def test_as_shared_passthrough(self):
        shared = as_shared(np.arange(4.0))
        try:
            assert as_shared(shared) is shared
        finally:
            shared.unlink()

    def test_shared_dataset_through_pool_matches_plain(self):
        data = np.random.default_rng(3).normal(size=10_000)
        shared = as_shared(data)
        try:
            def trial(i, g, ds=shared):
                return float(np.asarray(ds).sum() + g.normal())

            with EnginePool(2) as pool:
                pooled = run_batch(trial, 6, rng=4, pool=pool)
            serial = run_batch(
                lambda i, g: float(data.sum() + g.normal()), 6, rng=4
            )
            assert pooled.results == serial.results
        finally:
            shared.unlink()

    def test_dataset_batch_shared_matches_plain(self):
        from repro.bench import dataset_batch, uniform_integer_dataset

        factory = lambda gen: uniform_integer_dataset(128, width=50, rng=gen)  # noqa: E731
        plain = dataset_batch(factory, 4, rng=7)
        shared = dataset_batch(factory, 4, rng=7, shared=True)
        try:
            assert all(isinstance(array, SharedArray) for array in shared)
            for a, b in zip(plain, shared):
                np.testing.assert_array_equal(a, np.asarray(b))
        finally:
            unlink_all(shared)

    def test_unlink_all_ignores_plain_arrays(self):
        shared = as_shared(np.arange(3.0))
        unlink_all([np.arange(2.0), shared])  # must not raise


class TestVectorEstimates:
    def test_estimates_stacks_vector_results(self):
        batch = run_batch(lambda i, g: np.full(3, float(i)), 4, rng=0)
        stacked = batch.estimates()
        assert stacked.shape == (4, 3)
        np.testing.assert_array_equal(stacked[:, 0], [0.0, 1.0, 2.0, 3.0])

    def test_estimates_scalar_results_stay_1d(self):
        batch = run_batch(lambda i, g: float(i), 4, rng=0)
        assert batch.estimates().shape == (4,)

    def test_estimates_empty(self):
        batch = run_batch(lambda i, g: float(i), 0, rng=0)
        assert batch.estimates().shape == (0,)
