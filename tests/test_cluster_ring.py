"""Stability properties of the consistent-hash ring (repro.cluster.ring).

The cluster's routing correctness rests on two arithmetic facts about the
ring — adding a shard steals only ~1/(N+1) of the keyspace, and every
stolen key lands on the new shard; removing a shard never re-homes a key
it did not own.  Both are asserted here over a real workload-shaped
keyspace, because the router relies on them for cache locality (scale-out
must not blow away every shard's cache) and for pinned-dataset ledger
correctness (a private ledger must never silently migrate).
"""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing, route_key

#: A realistic routed keyspace: dataset x kind spread.
KEYS = [
    f"dataset{d}|{kind}"
    for d in range(40)
    for kind in ("mean", "variance", "iqr", "quantile", "multivariate_mean")
] + [f"pinned{d}" for d in range(50)]


def owners(ring, keys=KEYS):
    return {key: ring.owner(key) for key in keys}


class TestMembership:
    def test_duplicate_add_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add(1)

    def test_remove_unknown_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError):
            ring.remove(7)

    def test_empty_ring_cannot_route(self):
        with pytest.raises(ValueError):
            HashRing().owner("k")

    def test_nodes_and_len(self):
        ring = HashRing([0, 1, 2])
        assert ring.nodes == frozenset({0, 1, 2})
        assert len(ring) == 3 and 2 in ring and 9 not in ring


class TestDeterminism:
    def test_ownership_is_stable_across_instances(self):
        # SHA-1, not the per-process salted hash(): two independent rings
        # (router and compose planner in different processes) must agree.
        assert owners(HashRing([0, 1, 2, 3])) == owners(HashRing([3, 2, 1, 0]))

    def test_all_nodes_receive_load(self):
        spread = owners(HashRing([0, 1, 2, 3])).values()
        assert set(spread) == {0, 1, 2, 3}


class TestScaleOut:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_adding_a_shard_remaps_about_one_over_n_plus_one(self, n):
        before = owners(HashRing(range(n)))
        after_ring = HashRing(range(n))
        after_ring.add(n)
        after = owners(after_ring)
        moved = [key for key in KEYS if before[key] != after[key]]
        expected = len(KEYS) / (n + 1)
        # Generous tolerance: 64 virtual replicas keep the arc sizes close
        # to uniform, but they are still random-ish SHA-1 points.
        assert 0.4 * expected <= len(moved) <= 1.9 * expected, (
            f"adding shard {n} to {n} shards moved {len(moved)} of "
            f"{len(KEYS)} keys (expected ~{expected:.0f})"
        )

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_every_moved_key_moves_to_the_new_shard(self, n):
        before = owners(HashRing(range(n)))
        grown = HashRing(range(n))
        grown.add(n)
        for key, owner in owners(grown).items():
            if owner != before[key]:
                assert owner == n, (
                    f"{key} moved {before[key]}->{owner}, not to the new "
                    f"shard {n}: an old shard stole another old shard's arc"
                )


class TestScaleIn:
    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_removal_never_rehomes_surviving_keys(self, n):
        full = HashRing(range(n))
        before = owners(full)
        for removed in range(n):
            shrunk = HashRing(range(n))
            shrunk.remove(removed)
            after = owners(shrunk)
            for key in KEYS:
                if before[key] != removed:
                    assert after[key] == before[key], (
                        f"removing shard {removed} re-homed {key} "
                        f"{before[key]}->{after[key]} although shard "
                        f"{removed} never owned it"
                    )

    def test_orphaned_keys_redistribute_across_survivors(self):
        full = HashRing(range(4))
        before = owners(full)
        shrunk = HashRing(range(4))
        shrunk.remove(0)
        after = owners(shrunk)
        orphans = [key for key in KEYS if before[key] == 0]
        assert orphans, "shard 0 owned nothing — keyspace fixture too small"
        for key in orphans:
            assert after[key] != 0


class TestRouteKey:
    def test_group_members_spread_per_kind(self):
        assert route_key("salaries", "mean") == "salaries|mean"
        assert route_key("salaries", "iqr") == "salaries|iqr"

    def test_pinned_datasets_hash_on_name_alone(self):
        # every kind of a private-budget dataset must land on one shard:
        # its BudgetManager is shard-local and must see all of its spend
        assert route_key("salaries", "mean", pinned=("salaries",)) == "salaries"
        assert route_key("salaries", "iqr", pinned=("salaries",)) == "salaries"

    def test_missing_kind_falls_back_to_dataset(self):
        # malformed payloads still route deterministically (the owning
        # shard, not the router, produces the 400)
        assert route_key("salaries", None) == "salaries"
        assert route_key("salaries", "") == "salaries"
