"""Tests for the RNG plumbing in ``repro._rng``."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import resolve_rng, spawn_rngs, spawn_seeds


class TestResolveRng:
    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1_000_000, size=5)
        b = resolve_rng(42).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(7)
        assert resolve_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(123)
        assert isinstance(resolve_rng(seq), np.random.Generator)

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(resolve_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises_type_error(self):
        with pytest.raises(TypeError):
            resolve_rng("not-a-seed")  # type: ignore[arg-type]

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 1_000_000, size=10)
        b = resolve_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_spawn_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_deterministic_given_seed(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(99, 3)]
        b = [g.integers(0, 1000) for g in spawn_rngs(99, 3)]
        assert a == b

    def test_children_produce_distinct_streams(self):
        children = spawn_rngs(5, 4)
        draws = [tuple(c.integers(0, 2**32, size=4).tolist()) for c in children]
        assert len(set(draws)) == 4


class TestSpawnSeeds:
    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(spawn_seeds(17, 6), spawn_seeds(17, 6))

    def test_matches_spawn_rngs_streams(self):
        """spawn_rngs(rng, k)[i] must be exactly default_rng(spawn_seeds(rng, k)[i]).

        This identity is what lets the engine ship integer seeds to worker
        processes while staying bit-for-bit identical to the serial path.
        """
        seeds = spawn_seeds(123, 4)
        children = spawn_rngs(123, 4)
        for seed, child in zip(seeds.tolist(), children):
            reference = np.random.default_rng(int(seed))
            np.testing.assert_array_equal(
                child.integers(0, 2**32, size=8), reference.integers(0, 2**32, size=8)
            )

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -2)

    def test_shape_and_dtype(self):
        seeds = spawn_seeds(5, 8)
        assert seeds.shape == (8,)
        assert seeds.dtype == np.int64
        assert spawn_seeds(5, 0).size == 0
