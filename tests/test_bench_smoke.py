"""Tier-1-safe engine smoke test: tiny benchmark cells end to end.

The E-series drivers under ``benchmarks/`` are not collected by ``pytest -x
-q`` (their filenames do not match the test pattern), so this module runs
miniature driver-style cells — the universal mean estimator over a Gaussian,
repeated through :mod:`repro.engine` with multiple workers, and a small
multi-cell sweep through :func:`repro.analysis.run_statistical_grid` on a
shared :class:`repro.engine.EnginePool` — inside the tier-1 suite.  Any
regression in the engine fan-out, the grid layer, the trial runner rewiring,
or the estimator hot path surfaces here.

Set ``REPRO_ENGINE_WORKERS`` to change the worker count (default 2, matching
the ``--engine-workers`` option of the benchmark harness).
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid, run_statistical_trials
from repro.engine import EnginePool
from repro.bench import capability_matrix, dataset_batch, uniform_integer_dataset
from repro.core import estimate_mean
from repro.distributions import Gaussian

ENGINE_WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "2"))


def test_tiny_benchmark_cell_through_engine():
    """A miniature statistical benchmark cell runs and is worker-count invariant."""

    def universal(data, gen):
        return estimate_mean(data, 1.0, 0.1, gen).mean

    dist = Gaussian(5.0, 1.0)
    parallel = run_statistical_trials(
        universal, dist, "mean", 1_500, 4, 20230401, workers=ENGINE_WORKERS
    )
    serial = run_statistical_trials(universal, dist, "mean", 1_500, 4, 20230401, workers=1)

    assert parallel.estimates.size == 4
    assert parallel.failures == 0
    np.testing.assert_array_equal(parallel.estimates, serial.estimates)
    # Loose sanity bound: the universal mean of N(5, 1) at n=1500, eps=1
    # should land within 1.0 of the truth in every trial at this seed.
    assert parallel.summary.max < 1.0


def test_tiny_empirical_workload_batch_through_engine():
    """Workload generation through the engine is worker-count invariant too."""
    factory = lambda gen: uniform_integer_dataset(256, width=100, rng=gen)  # noqa: E731
    serial = dataset_batch(factory, 3, rng=7, workers=1)
    parallel = dataset_batch(factory, 3, rng=7, workers=ENGINE_WORKERS)
    assert len(parallel) == 3
    for a, b in zip(serial, parallel):
        np.testing.assert_array_equal(a, b)


def test_capability_matrix_smoke_through_engine():
    """The Table-1 matrix built with engine fan-out keeps its row structure."""
    rows = capability_matrix(sample_size=512, rng=11, workers=ENGINE_WORKERS)
    names = [row.name for row in rows]
    assert "universal_mean" in names and "sample_mean" in names
    universal = rows[names.index("universal_mean")]
    assert universal.runs_without_assumptions


def test_tiny_grid_sweep_on_shared_pool():
    """A miniature E-driver sweep: grid fan-out on one pool == per-cell serial."""

    def universal(data, gen):
        return estimate_mean(data, 1.0, 0.1, gen).mean

    dist = Gaussian(5.0, 1.0)
    cells = [
        StatisticalCell(universal, dist, "mean", n, 3, seed, key=n)
        for seed, n in enumerate((800, 1_200, 1_600))
    ]
    with EnginePool(ENGINE_WORKERS) as pool:
        pooled = run_statistical_grid(cells, pool=pool)
        # Pool reuse: the capability matrix rides the same forked workers.
        matrix = capability_matrix(sample_size=512, rng=11, pool=pool)
    serial = [
        run_statistical_trials(cell.estimator, cell.distribution, cell.parameter,
                               cell.n, cell.trials, cell.rng)
        for cell in cells
    ]
    for pooled_result, serial_result in zip(pooled, serial):
        np.testing.assert_array_equal(pooled_result.estimates, serial_result.estimates)
    assert len(matrix) == len(capability_matrix(sample_size=512, rng=11))
