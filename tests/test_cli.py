"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.cli import build_parser, load_column, main
from repro.exceptions import DomainError


@pytest.fixture
def salary_csv(tmp_path):
    """A small CSV with a header and two numeric columns."""
    rng = np.random.default_rng(5)
    path = tmp_path / "salaries.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["employee_id", "salary", "age"])
        for i in range(5000):
            writer.writerow([i, f"{rng.lognormal(11.0, 0.5):.2f}", int(rng.integers(21, 65))])
    return path


class TestLoadColumn:
    def test_load_by_header_name(self, salary_csv):
        values = load_column(salary_csv, "salary")
        assert values.size == 5000
        assert np.all(values > 0)

    def test_load_by_index(self, salary_csv):
        by_name = load_column(salary_csv, "age")
        by_index = load_column(salary_csv, "2")
        np.testing.assert_allclose(by_name, by_index)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DomainError):
            load_column(tmp_path / "nope.csv", "salary")

    def test_unknown_column(self, salary_csv):
        with pytest.raises(DomainError):
            load_column(salary_csv, "bonus")

    def test_non_numeric_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("value\n1.0\nnot-a-number\n")
        with pytest.raises(DomainError):
            load_column(path, "value")

    def test_blank_cells_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("value\n1.0\n\n2.0\n")
        values = load_column(path, "value")
        assert values.tolist() == [1.0, 2.0]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantiles_levels_parsed(self, salary_csv):
        args = build_parser().parse_args(
            ["quantiles", str(salary_csv), "--column", "salary", "--levels", "0.5", "0.95"]
        )
        assert args.levels == [0.5, 0.95]
        assert args.command == "quantiles"

    def test_defaults(self, salary_csv):
        args = build_parser().parse_args(["mean", str(salary_csv), "--column", "salary"])
        assert args.epsilon == 1.0
        assert args.seed is None


class TestMain:
    def test_mean_command(self, salary_csv, capsys):
        code = main(["mean", str(salary_csv), "--column", "salary", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dp_mean=" in out
        assert "records=5000" in out
        assert "epsilon_spent=" in out

    def test_variance_command(self, salary_csv, capsys):
        code = main(["variance", str(salary_csv), "--column", "salary", "--seed", "1"])
        assert code == 0
        assert "dp_variance=" in capsys.readouterr().out

    def test_iqr_command_with_ledger(self, salary_csv, capsys):
        code = main(
            ["iqr", str(salary_csv), "--column", "salary", "--seed", "1", "--show-ledger"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dp_iqr=" in out
        assert "PrivacyLedger" in out

    def test_quantiles_command(self, salary_csv, capsys):
        code = main(
            ["quantiles", str(salary_csv), "--column", "salary", "--seed", "1",
             "--levels", "0.5", "0.95"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dp_q0.5=" in out
        assert "dp_q0.95=" in out

    def test_mean_estimate_is_reasonable(self, salary_csv, capsys):
        main(["mean", str(salary_csv), "--column", "salary", "--seed", "3", "--epsilon", "1.0"])
        out = capsys.readouterr().out
        value = float(out.split("dp_mean=")[1].splitlines()[0])
        truth = float(np.mean(load_column(salary_csv, "salary")))
        assert value == pytest.approx(truth, rel=0.1)

    def test_error_exit_code_on_bad_column(self, salary_csv, capsys):
        code = main(["mean", str(salary_csv), "--column", "bonus"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_error_exit_code_on_missing_file(self, tmp_path, capsys):
        code = main(["mean", str(tmp_path / "missing.csv"), "--column", "x"])
        assert code == 2


class TestTrialMode:
    def test_trials_report_spread(self, salary_csv, capsys):
        code = main(
            ["mean", str(salary_csv), "--column", "salary", "--seed", "1",
             "--epsilon", "1.0", "--trials", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dp_mean_median=" in out
        assert "trials=8" in out
        assert "failures=0" in out
        median = float(out.split("dp_mean_median=")[1].splitlines()[0])
        q10 = float(out.split("dp_mean_q10=")[1].splitlines()[0])
        q90 = float(out.split("dp_mean_q90=")[1].splitlines()[0])
        assert q10 <= median <= q90
        truth = float(np.mean(load_column(salary_csv, "salary")))
        assert median == pytest.approx(truth, rel=0.1)
        per_trial = float(out.split("epsilon_per_trial=")[1].splitlines()[0])
        total = float(out.split("epsilon_total_spent=")[1].splitlines()[0])
        assert total == pytest.approx(8 * per_trial)

    def test_trials_show_ledger(self, salary_csv, capsys):
        code = main(
            ["mean", str(salary_csv), "--column", "salary", "--seed", "1",
             "--trials", "3", "--show-ledger"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-trial ledger" in out

    def test_trials_worker_count_invariant(self, salary_csv, capsys):
        args = ["mean", str(salary_csv), "--column", "salary", "--seed", "2",
                "--epsilon", "1.0", "--trials", "6"]
        assert main(args + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical estimates -> identical printed spread, bar the workers line.
        strip = lambda text: [l for l in text.splitlines() if not l.startswith("workers=")]  # noqa: E731
        assert strip(serial) == strip(parallel)

    def test_trials_partial_failure_accounting(self, salary_csv, capsys, monkeypatch):
        """Failed trials' partial budget spend must still be counted."""
        from repro import cli
        from repro.exceptions import MechanismError

        calls = {"n": 0}

        def flaky(data, epsilon, beta, gen, ledger):
            ledger.charge("probe_first_half", epsilon / 2)
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise MechanismError("ptr rejected")
            ledger.charge("probe_second_half", epsilon / 2)
            return float(np.mean(data))

        monkeypatch.setitem(cli._SCALAR_ESTIMATORS, "mean", flaky)
        code = main(
            ["mean", str(salary_csv), "--column", "salary", "--trials", "4",
             "--epsilon", "1.0", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "failures=2" in out
        total = float(out.split("epsilon_total_spent=")[1].splitlines()[0])
        # 2 successes at full epsilon + 2 failures that spent half before aborting.
        assert total == pytest.approx(2 * 1.0 + 2 * 0.5)

    def test_trials_all_failing_exits_with_error(self, salary_csv, capsys, monkeypatch):
        from repro import cli
        from repro.exceptions import MechanismError

        def always_failing(data, epsilon, beta, gen, ledger):
            raise MechanismError("ptr rejected")

        monkeypatch.setitem(cli._SCALAR_ESTIMATORS, "mean", always_failing)
        code = main(["mean", str(salary_csv), "--column", "salary", "--trials", "3"])
        assert code == 2
        assert "all 3 trials failed" in capsys.readouterr().err

    def test_trials_rejected_for_quantiles(self, salary_csv, capsys):
        code = main(
            ["quantiles", str(salary_csv), "--column", "salary", "--trials", "3"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_trials_rejected(self, salary_csv, capsys):
        code = main(["mean", str(salary_csv), "--column", "salary", "--trials", "0"])
        assert code == 2

    def test_invalid_workers_rejected_even_for_single_trial(self, salary_csv, capsys):
        code = main(["mean", str(salary_csv), "--column", "salary", "--workers", "0"])
        assert code == 2
        assert "--workers must be at least 1" in capsys.readouterr().err


class TestSuiteCommand:
    def test_suite_releases_all_three_statistics(self, salary_csv, capsys):
        code = main(["suite", str(salary_csv), "--column", "salary", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dp_mean=" in out
        assert "dp_variance=" in out
        assert "dp_iqr=" in out
        assert "records=5000" in out
        # Three independent full-budget releases: at least epsilon each (some
        # estimators charge auxiliary probes on top, e.g. variance's paired
        # range search).
        total = float(out.split("epsilon_total_spent=")[1].splitlines()[0])
        assert total >= 3 * 1.0 - 1e-9

    def test_suite_with_trials_reports_spread(self, salary_csv, capsys):
        code = main(
            ["suite", str(salary_csv), "--column", "salary", "--seed", "1",
             "--epsilon", "1.0", "--trials", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for stat in ("mean", "variance", "iqr"):
            assert f"dp_{stat}_median=" in out
            assert f"dp_{stat}_failures=0" in out
        assert "trials_per_statistic=5" in out
        total = float(out.split("epsilon_total_spent=")[1].splitlines()[0])
        median = float(out.split("dp_mean_median=")[1].splitlines()[0])
        truth = float(np.mean(load_column(salary_csv, "salary")))
        assert median == pytest.approx(truth, rel=0.1)
        # The spend scales linearly in --trials: 5x the single-shot suite.
        assert main(["suite", str(salary_csv), "--column", "salary", "--seed", "1",
                     "--epsilon", "1.0"]) == 0
        single = capsys.readouterr().out
        base = float(single.split("epsilon_total_spent=")[1].splitlines()[0])
        assert total == pytest.approx(5 * base)

    def test_suite_grid_worker_count_invariant(self, salary_csv, capsys):
        args = ["suite", str(salary_csv), "--column", "salary", "--seed", "2",
                "--trials", "4"]
        assert main(args + ["--grid-workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--grid-workers", "3"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda text: [l for l in text.splitlines()  # noqa: E731
                              if not l.startswith("grid_workers=")]
        assert strip(serial) == strip(parallel)

    def test_suite_deterministic_for_fixed_seed(self, salary_csv, capsys):
        args = ["suite", str(salary_csv), "--column", "salary", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert first == capsys.readouterr().out

    def test_suite_show_ledger(self, salary_csv, capsys):
        code = main(
            ["suite", str(salary_csv), "--column", "salary", "--seed", "1",
             "--show-ledger"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-trial ledger" in out

    def test_suite_invalid_grid_workers_rejected(self, salary_csv, capsys):
        code = main(
            ["suite", str(salary_csv), "--column", "salary", "--grid-workers", "0"]
        )
        assert code == 2
        assert "--grid-workers must be at least 1" in capsys.readouterr().err

    def test_suite_rejects_plain_workers_flag(self, salary_csv, capsys):
        """--workers is meaningless for suite; silently ignoring it would let
        the user believe the trials were parallelised."""
        code = main(
            ["suite", str(salary_csv), "--column", "salary", "--workers", "4"]
        )
        assert code == 2
        assert "--grid-workers" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # Semantic-version shape, sourced from package metadata / __init__.
        assert out.strip().split(" ", 1)[1].count(".") == 2

    def test_version_matches_package_metadata(self):
        from repro.cli import _package_version

        version = _package_version()
        assert isinstance(version, str) and version


class TestCleanErrors:
    def test_unknown_subcommand_is_a_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_invalid_argument_value_is_a_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mean", "x.csv", "--column", "c", "--epsilon", "lots"])
        assert excinfo.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_oserror_becomes_one_line_error(self, tmp_path, capsys):
        # A directory where a CSV is expected raises IsADirectoryError (an
        # OSError that is not a ReproError); the CLI must not print a
        # traceback for it.
        target = tmp_path / "adir"
        target.mkdir()
        code = main(["mean", str(target), "--column", "c"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestServeAndQueryCli:
    @pytest.fixture
    def live_server(self):
        import numpy as np

        from repro.service import QueryService, make_server, serve_forever

        service = QueryService(seed=3)
        service.register("salary", np.random.default_rng(0).lognormal(11, 0.5, 5000), 3.0)
        server = make_server(service, port=0, quiet=True)
        thread = serve_forever(server)
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_query_roundtrip_and_cache(self, live_server, capsys):
        args = ["query", "mean", "--url", live_server.url,
                "--dataset", "salary", "--epsilon", "0.5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "status=ok" in first and "cached=no" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cached=yes" in second
        assert "epsilon_charged=0\n" in second

    def test_query_refusal_exit_code(self, live_server, capsys):
        code = main(["query", "mean", "--url", live_server.url,
                     "--dataset", "salary", "--epsilon", "50"])
        assert code == 3
        out = capsys.readouterr().out
        assert "status=refused" in out
        assert "error=budget_exceeded" in out

    def test_query_unknown_dataset_exit_code(self, live_server, capsys):
        code = main(["query", "mean", "--url", live_server.url,
                     "--dataset", "ghost", "--epsilon", "0.5"])
        assert code == 2
        assert "error=unknown_dataset" in capsys.readouterr().out

    def test_query_quantile_levels(self, live_server, capsys):
        code = main(["query", "quantile", "--url", live_server.url,
                     "--dataset", "salary", "--epsilon", "0.5",
                     "--levels", "0.5", "0.9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status=ok" in out
        assert "value=" in out and "," in out.split("value=")[1].splitlines()[0]

    def test_query_unreachable_service_clean_error(self, capsys):
        code = main(["query", "mean", "--url", "http://127.0.0.1:9",
                     "--dataset", "salary", "--epsilon", "0.5", "--timeout", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot reach service" in err
        assert "Traceback" not in err

    def test_serve_parser_accepts_full_flagset(self, tmp_path):
        csv_file = tmp_path / "x.csv"
        csv_file.write_text("v\n1\n2\n")
        args = build_parser().parse_args(
            ["serve", str(csv_file), "--column", "v", "--budget", "4",
             "--analyst-budget", "alice=1.5", "--port", "0", "--seed", "7",
             "--workers", "2", "--cache-size", "64", "--allow-register", "--quiet"]
        )
        assert args.command == "serve"
        assert args.budget == 4.0
        assert args.analyst_budget == ["alice=1.5"]

    def test_bad_analyst_budget_spec_rejected(self):
        from repro.cli import _parse_analyst_budgets
        from repro.exceptions import DomainError

        with pytest.raises(DomainError):
            _parse_analyst_budgets(["alice"])
        with pytest.raises(DomainError):
            _parse_analyst_budgets(["alice=abc"])
        assert _parse_analyst_budgets(["a=1", "b=0.5"]) == {"a": 1.0, "b": 0.5}
