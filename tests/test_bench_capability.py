"""Tests for the Table-1 capability matrix."""

from __future__ import annotations

import pytest

from repro.bench import capability_matrix, default_estimator_suite


@pytest.fixture(scope="module")
def matrix():
    return capability_matrix(epsilon=1.0, sample_size=2048, rng=7)


class TestCapabilityMatrix:
    def test_contains_all_estimator_families(self, matrix):
        names = {row.name for row in matrix}
        assert {"universal_mean", "universal_variance", "universal_iqr"} <= names
        assert {"karwa_vadhan_mean", "coinpress_mean", "ksu_heavy_tailed_mean"} <= names
        assert "dwork_lei_iqr" in names

    def test_universal_estimators_need_no_assumptions(self, matrix):
        for row in matrix:
            if row.name.startswith("universal"):
                assert not row.needs_a1 and not row.needs_a2 and not row.needs_a3
                assert row.runs_without_assumptions
                assert row.privacy == "pure"

    def test_prior_pure_dp_estimators_need_assumptions(self, matrix):
        """Table 1: every prior pure-DP estimator relies on A1/A2/A3."""
        for row in matrix:
            prior_pure = (
                row.privacy == "pure"
                and not row.name.startswith("universal")
                and not row.name.startswith("sample")
            )
            if prior_pure:
                assert row.needs_a1 or row.needs_a2 or row.needs_a3
                assert not row.runs_without_assumptions

    def test_dl09_is_universal_but_approximate(self, matrix):
        row = next(r for r in matrix if r.name == "dwork_lei_iqr")
        assert row.privacy == "approx"
        assert not (row.needs_a1 or row.needs_a2 or row.needs_a3)

    def test_rows_render_to_cells(self, matrix):
        for row in matrix:
            cells = row.as_cells()
            assert len(cells) == 8
            assert all(isinstance(c, str) for c in cells)


class TestDefaultSuite:
    def test_all_estimators_runnable(self, rng):
        import numpy as np

        data = np.random.default_rng(0).normal(5.0, 2.0, size=4096)
        for estimator in default_estimator_suite():
            value = estimator.estimate(data, 1.0, rng)
            assert isinstance(value, float)

    def test_suite_covers_all_targets(self):
        targets = {est.target for est in default_estimator_suite()}
        assert targets == {"mean", "variance", "iqr"}
