"""Tests for the coordinate-wise multivariate extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PrivacyLedger,
    estimate_mean_multivariate,
    estimate_variance_diagonal,
)
from repro.exceptions import DomainError, InsufficientDataError


def gaussian_matrix(rng, n=12_000, means=(0.0, 100.0, -5.0), sigmas=(1.0, 5.0, 0.1)):
    columns = [rng.normal(m, s, size=n) for m, s in zip(means, sigmas)]
    return np.column_stack(columns)


class TestMultivariateMean:
    def test_recovers_each_coordinate(self, rng):
        data = gaussian_matrix(rng)
        result = estimate_mean_multivariate(data, epsilon=1.5, rng=rng)
        np.testing.assert_allclose(result.mean, [0.0, 100.0, -5.0], atol=1.5)
        assert result.dimension == 3

    def test_budget_split_across_coordinates(self, rng):
        data = gaussian_matrix(rng)
        result = estimate_mean_multivariate(data, epsilon=0.9, rng=rng)
        assert result.epsilon_per_coordinate == pytest.approx(0.3)

    def test_ledger_stays_within_total_budget(self, rng):
        data = gaussian_matrix(rng, n=8_000)
        ledger = PrivacyLedger(capacity=0.9 * (1 + 1e-6))
        estimate_mean_multivariate(data, epsilon=0.9, rng=rng, ledger=ledger)
        assert ledger.total_epsilon <= 0.9 * (1 + 1e-6)

    def test_per_coordinate_results_exposed(self, rng):
        data = gaussian_matrix(rng, n=8_000)
        result = estimate_mean_multivariate(data, epsilon=1.5, rng=rng)
        assert len(result.per_coordinate) == 3
        assert result.sample_mean.shape == (3,)

    def test_single_column_matrix(self, rng):
        data = rng.normal(7.0, 1.0, size=(8_000, 1))
        result = estimate_mean_multivariate(data, epsilon=0.5, rng=rng)
        assert result.mean.shape == (1,)
        assert result.mean[0] == pytest.approx(7.0, abs=0.5)

    def test_one_dimensional_input_rejected(self, rng):
        with pytest.raises(DomainError):
            estimate_mean_multivariate(np.arange(100.0), 1.0, rng=rng)

    def test_too_few_rows_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_mean_multivariate(np.zeros((4, 2)), 1.0, rng=rng)


class TestDiagonalCovariance:
    def test_recovers_per_coordinate_variances(self, rng):
        data = gaussian_matrix(rng, n=20_000, sigmas=(1.0, 5.0, 0.5))
        result = estimate_variance_diagonal(data, epsilon=1.5, rng=rng)
        np.testing.assert_allclose(result.variances, [1.0, 25.0, 0.25], rtol=0.4)
        assert result.dimension == 3

    def test_budget_split(self, rng):
        data = gaussian_matrix(rng, n=8_000)
        result = estimate_variance_diagonal(data, epsilon=0.6, rng=rng)
        assert result.epsilon_per_coordinate == pytest.approx(0.2)

    def test_sample_variances_diagnostic(self, rng):
        data = gaussian_matrix(rng, n=8_000)
        result = estimate_variance_diagonal(data, epsilon=1.5, rng=rng)
        np.testing.assert_allclose(result.sample_variances, np.var(data, axis=0))

    def test_too_few_rows_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_variance_diagonal(np.zeros((8, 2)), 1.0, rng=rng)

    def test_error_grows_with_dimension(self):
        """With the budget split d ways, the per-coordinate error grows with d —
        the d/(eps n) behaviour the paper's open problem is about."""
        n, epsilon = 8_000, 0.4
        errors = {}
        for d in (1, 8):
            per_trial = []
            for seed in range(6):
                gen = np.random.default_rng(seed)
                data = gen.normal(0.0, 1.0, size=(n, d))
                result = estimate_mean_multivariate(data, epsilon, rng=gen)
                per_trial.append(float(np.max(np.abs(result.mean))))
            errors[d] = float(np.median(per_trial))
        assert errors[8] > errors[1]
