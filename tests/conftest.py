"""Shared pytest fixtures.

All randomized tests draw from seeded generators so failures are reproducible.
The ``src`` directory is added to ``sys.path`` as a fallback so the suite also
runs from a source checkout that has not been pip-installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running tests (engine speedup demonstrations)"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; per-test reseeding keeps trials independent."""
    return np.random.default_rng(20230401)


@pytest.fixture
def gaussian_sample(rng) -> np.ndarray:
    """A moderately sized Gaussian sample shared by several statistical tests."""
    return rng.normal(loc=10.0, scale=2.0, size=8192)


@pytest.fixture
def integer_sample(rng) -> np.ndarray:
    """A moderately sized integer dataset for empirical-setting tests."""
    return rng.integers(-500, 500, size=4096).astype(float)
