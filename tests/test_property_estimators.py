"""Property-based tests (hypothesis) on the estimators' structural invariants.

These do not test accuracy (the statistical tests do that on fixed seeds);
they assert invariants that must hold for *every* input and every random seed:
outputs are finite, ranges are well-ordered, clipped counts are consistent,
privatized radii respect the 2x + 3b cap, and the universal estimators are
invariant to the order of the input records (a prerequisite of any sensible
dataset mechanism).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    estimate_empirical_mean,
    estimate_empirical_quantile,
    estimate_iqr_lower_bound,
    estimate_mean,
    estimate_radius,
    estimate_range,
)

# Reasonably sized integer datasets keep each hypothesis example fast.
integer_datasets = st.lists(
    st.integers(min_value=-10_000, max_value=10_000), min_size=20, max_size=200
)
small_epsilons = st.floats(min_value=0.2, max_value=4.0)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

_COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRadiusProperties:
    @given(data=integer_datasets, epsilon=small_epsilons, seed=seeds)
    @settings(**_COMMON_SETTINGS)
    def test_radius_structure_and_finiteness(self, data, epsilon, seed):
        # Note the 2*rad + 3b cap of Theorem 3.1 is NOT asserted here: it
        # holds with probability 1 - beta per run, not for every seed — SVT
        # can legitimately overshoot a doubling step when the noisy threshold
        # draw is unlucky (hypothesis eventually finds such (data, seed)
        # pairs, e.g. a few points just above a power of two with the rest at
        # zero).  The cap is exercised on fixed seeds in
        # test_empirical_radius.py and measured in the E1 benchmark; here we
        # assert only the invariants that hold for *every* seed.
        values = np.asarray(data, dtype=float)
        result = estimate_radius(values, epsilon, 0.2, np.random.default_rng(seed))
        assert math.isfinite(result.radius)
        assert result.radius >= 0.0
        if result.grid_radius != 0:
            # The released radius is always a power of two in grid units.
            assert result.grid_radius & (result.grid_radius - 1) == 0
        assert result.radius == result.bucket_size * result.grid_radius
        assert result.covered_count + result.uncovered_count == values.size

    @given(data=integer_datasets, epsilon=small_epsilons, seed=seeds)
    @settings(**_COMMON_SETTINGS)
    def test_radius_permutation_invariant(self, data, epsilon, seed):
        values = np.asarray(data, dtype=float)
        shuffled = np.random.default_rng(0).permutation(values)
        a = estimate_radius(values, epsilon, 0.2, np.random.default_rng(seed))
        b = estimate_radius(shuffled, epsilon, 0.2, np.random.default_rng(seed))
        assert a.radius == b.radius


class TestRangeProperties:
    @given(data=integer_datasets, epsilon=small_epsilons, seed=seeds)
    @settings(**_COMMON_SETTINGS)
    def test_range_is_ordered_and_width_capped(self, data, epsilon, seed):
        values = np.asarray(data, dtype=float)
        result = estimate_range(values, epsilon, 0.2, np.random.default_rng(seed))
        true_width = float(np.max(values) - np.min(values))
        assert result.low <= result.high
        assert result.width == pytest.approx(result.high - result.low)
        assert result.width <= 4.0 * true_width + 6.0
        assert result.inside_count + result.outside_count == values.size


class TestEmpiricalMeanProperties:
    @given(data=integer_datasets, epsilon=small_epsilons, seed=seeds)
    @settings(**_COMMON_SETTINGS)
    def test_estimate_finite_and_not_wildly_outside_data(self, data, epsilon, seed):
        values = np.asarray(data, dtype=float)
        result = estimate_empirical_mean(values, epsilon, 0.2, np.random.default_rng(seed))
        assert math.isfinite(result.mean)
        # The clipped mean lies inside the privatized range; the Laplace noise
        # has scale 5*width/(eps n), so being 60 noise scales outside the data
        # span would be astronomically unlikely and indicates a bug.
        span = float(np.max(values) - np.min(values)) + 1.0
        slack = 60.0 * (5.0 * 4.0 * span / (epsilon * values.size)) + span
        assert np.min(values) - slack <= result.mean <= np.max(values) + slack


class TestEmpiricalQuantileProperties:
    @given(
        data=integer_datasets,
        epsilon=small_epsilons,
        seed=seeds,
        tau_fraction=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(**_COMMON_SETTINGS)
    def test_quantile_lands_inside_private_range(self, data, epsilon, seed, tau_fraction):
        values = np.asarray(data, dtype=float)
        tau = max(1, min(values.size, int(round(tau_fraction * values.size))))
        result = estimate_empirical_quantile(
            values, tau, epsilon, 0.2, np.random.default_rng(seed)
        )
        assert result.range_used.low <= result.value <= result.range_used.high
        assert 0 <= result.rank_error <= values.size


class TestStatisticalEstimatorProperties:
    @given(seed=seeds, epsilon=small_epsilons)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mean_output_finite_on_gaussian_samples(self, seed, epsilon):
        gen = np.random.default_rng(seed)
        data = gen.normal(gen.uniform(-100, 100), gen.uniform(0.1, 10.0), size=2000)
        result = estimate_mean(data, epsilon, 0.2, gen)
        assert math.isfinite(result.mean)
        assert result.subsample_size <= data.size

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_iqr_lower_bound_is_positive_power_of_two(self, seed):
        gen = np.random.default_rng(seed)
        data = gen.normal(0.0, gen.uniform(0.01, 100.0), size=2000)
        result = estimate_iqr_lower_bound(data, 1.0, 0.2, gen)
        assert result.value > 0
        exponent = math.log2(result.value)
        assert exponent == pytest.approx(round(exponent))
