"""Tests for the v1 wire envelope (repro.service.wire)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import QueryAnswer, QueryService, wire
from repro.service.queries import InvalidQueryError, Query, UnknownQueryKindError


@pytest.fixture
def service():
    svc = QueryService(seed=5)
    svc.register("d", np.random.default_rng(0).normal(10.0, 2.0, 5_000), 3.0)
    return svc


class TestErrorDocuments:
    def test_uniform_shape(self):
        doc = wire.error_document("boom", "it broke", detail={"x": 1})
        assert doc["api"] == wire.API_VERSION
        assert doc["status"] == "error"
        assert doc["error"] == {"code": "boom", "message": "it broke", "detail": {"x": 1}}
        # the one-release top-level aliases are gone: error.* is the shape
        assert "message" not in doc

    def test_detail_omitted_when_empty(self):
        doc = wire.error_document("boom", "it broke")
        assert "detail" not in doc["error"]

    def test_unknown_kind_carries_catalogue(self):
        exc = UnknownQueryKindError("nope", kinds=("mean", "variance"))
        doc = wire.invalid_request(exc)
        assert doc["error"]["code"] == "unknown_kind"
        assert doc["error"]["detail"]["kinds"] == ["mean", "variance"]
        # legacy top-level alias removed after its deprecation window
        assert "kinds" not in doc

    def test_invalid_request_generic(self):
        doc = wire.invalid_request(InvalidQueryError("bad"))
        assert doc["error"]["code"] == "invalid_request"

    def test_builders_have_stable_codes(self):
        assert wire.bad_request("x")["error"]["code"] == "invalid_request"
        assert wire.internal_error(ValueError("x"))["error"]["code"] == "internal"
        assert wire.too_large(10, 5)["error"]["code"] == "payload_too_large"
        assert wire.unknown_path("GET", "/x")["error"]["code"] == "unknown_path"
        assert wire.method_not_allowed("PUT")["error"]["code"] == "method_not_allowed"
        assert wire.registration_disabled()["error"]["code"] == "registration_disabled"
        assert wire.admin_disabled()["error"]["code"] == "admin_disabled"


class TestAnswerDocuments:
    def test_ok_answer(self, service):
        answer = service.query("d", "mean", epsilon=0.5)
        doc = wire.answer_document(answer)
        assert doc["api"] == wire.API_VERSION
        assert doc["status"] == "ok"
        assert doc["value"] == pytest.approx(answer.value)
        assert "error" not in doc
        assert "deprecated" not in doc
        # query echo is canonical: no top-level levels field
        assert "levels" not in doc["query"]

    def test_refusal_error_object(self, service):
        answer = service.query("d", "mean", epsilon=99.0)
        doc = wire.answer_document(answer)
        assert doc["status"] == "refused"
        assert doc["error"]["code"] == "budget_exceeded"
        assert "message" not in doc
        assert wire.answer_status_code(answer) == 403

    def test_batch_document(self):
        doc = wire.answers_document([{"status": "ok"}])
        assert doc["api"] == wire.API_VERSION
        assert doc["status"] == "ok"
        assert doc["answers"] == [{"status": "ok"}]


class TestParseRequest:
    def test_canonical_params_levels(self):
        request = wire.parse_request(
            {"dataset": "d", "kind": "quantile", "epsilon": 0.5,
             "params": {"levels": [0.5]}}
        )
        assert request.query.levels == (0.5,)

    def test_legacy_top_level_levels_rejected(self):
        # the one-release alias is gone: unknown top-level fields are errors
        with pytest.raises(InvalidQueryError):
            wire.parse_request(
                {"dataset": "d", "kind": "quantile", "epsilon": 0.5,
                 "levels": [0.5]}
            )

    def test_missing_dataset(self):
        with pytest.raises(InvalidQueryError):
            wire.parse_request({"kind": "mean", "epsilon": 0.5})


class TestClusterErrorDocuments:
    def test_shard_unavailable(self):
        doc = wire.shard_unavailable(2, "connection refused")
        assert doc["api"] == wire.API_VERSION
        assert doc["status"] == "error"
        assert doc["error"]["code"] == "shard_unavailable"
        assert doc["error"]["detail"]["shard"] == 2
        assert "connection refused" in doc["error"]["message"]

    def test_shard_unavailable_answer_entry(self):
        entry = wire.shard_unavailable_answer("d", "mean", 1, "timed out")
        # answer-shaped so batch responses stay uniform per entry
        assert entry["status"] == "failed"
        assert entry["dataset"] == "d"
        assert entry["kind"] == "mean"
        assert entry["error"]["code"] == "shard_unavailable"
        assert entry["error"]["detail"]["shard"] == 1
        assert entry["epsilon_charged"] == 0.0

    def test_coordinator_unavailable_maps_to_503(self):
        doc = wire.coordinator_unavailable("rpc timeout")
        assert doc["error"]["code"] == "coordinator_unavailable"
        # a refusal caused by a dead coordinator charges nothing and maps
        # to 503 through the answer-status override table
        answer = QueryAnswer(
            dataset="d", kind="mean", status="failed", key="", value=None,
            epsilon_charged=0.0, cached=False, coalesced=False,
            remaining=None, error="coordinator_unavailable",
            message="budget coordinator unavailable: rpc timeout",
        )
        assert wire.answer_status_code(answer) == 503


class TestRateLimitedAnswer:
    def test_shape(self):
        from repro.service.executor import QueryRequest
        from repro.service.qos import RateLimitDecision

        request = QueryRequest(
            dataset="d", query=Query.from_json({"kind": "mean", "epsilon": 0.5})
        )
        decision = RateLimitDecision(
            scope="analyst", key="alice", retry_after=0.4, rate=2.0, burst=2.0
        )
        doc = wire.rate_limited_answer(request, decision)
        assert doc["status"] == "refused"
        assert doc["error"]["code"] == "rate_limited"
        assert doc["error"]["detail"] == {
            "scope": "analyst", "key": "alice", "retry_after": 0.4,
        }
        assert doc["retry_after"] == 0.4
        assert doc["epsilon_charged"] == 0.0
        assert wire.retry_after_header(decision) == "1"


class TestBearerToken:
    def test_bearer(self):
        assert wire.bearer_token("Bearer s3cret") == "s3cret"
        assert wire.bearer_token("bearer  s3cret ") == "s3cret"

    def test_x_admin_token_fallback(self):
        assert wire.bearer_token(None, "tok") == "tok"
        assert wire.bearer_token("Basic abc", "tok") == "tok"

    def test_absent(self):
        assert wire.bearer_token(None, None) is None
        assert wire.bearer_token("Bearer ", "") is None


class TestInfoDocuments:
    def test_health_and_stats_and_kinds(self, service):
        assert wire.health_document(service)["datasets"] == ["d"]
        stats = wire.stats_document(service, frontend={"frontend": "x"})
        assert stats["api"] == wire.API_VERSION
        assert stats["frontend"] == {"frontend": "x"}
        kinds = wire.kinds_document(service)
        assert "mean" in kinds["kinds"]
        assert kinds["datasets"] == {"d": None}
