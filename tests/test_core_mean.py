"""Tests for the universal mean estimator ``EstimateMean`` (Algorithm 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.core import estimate_mean
from repro.distributions import Gaussian, GaussianMixture, LogNormal, StudentT, Uniform
from repro.exceptions import InsufficientDataError, PrivacyParameterError


def _median_error(distribution, n, epsilon, trials=8, **kwargs):
    errors = []
    for seed in range(trials):
        gen = np.random.default_rng(seed)
        data = distribution.sample(n, gen)
        result = estimate_mean(data, epsilon, 0.1, gen, **kwargs)
        errors.append(abs(result.mean - distribution.mean))
    return float(np.median(errors))


class TestUniversalMeanAccuracy:
    def test_standard_gaussian(self):
        err = _median_error(Gaussian(0.0, 1.0), n=20_000, epsilon=0.5)
        assert err < 0.05

    def test_gaussian_with_huge_unknown_mean(self):
        """No assumption A1: the estimator must find a mean of 10^6 on its own."""
        err = _median_error(Gaussian(1.0e6, 1.0), n=20_000, epsilon=0.5)
        assert err < 0.1

    def test_gaussian_with_large_scale(self):
        err = _median_error(Gaussian(0.0, 500.0), n=20_000, epsilon=0.5)
        assert err < 25.0

    def test_gaussian_with_tiny_scale(self):
        err = _median_error(Gaussian(5.0, 1e-4), n=20_000, epsilon=0.5)
        assert err < 1e-2

    def test_uniform(self):
        err = _median_error(Uniform(-3.0, 7.0), n=20_000, epsilon=0.5)
        assert err < 0.2

    def test_heavy_tailed_student_t(self):
        err = _median_error(StudentT(df=3.0), n=20_000, epsilon=0.5)
        assert err < 0.25

    def test_lognormal(self):
        dist = LogNormal(0.0, 1.0)
        err = _median_error(dist, n=20_000, epsilon=0.5)
        assert err < 0.5

    def test_bimodal_mixture(self):
        err = _median_error(GaussianMixture([-10.0, 10.0], [1.0, 1.0], [0.5, 0.5]), 20_000, 0.5)
        assert err < 1.0

    def test_error_decreases_with_n(self):
        dist = Gaussian(0.0, 10.0)
        assert _median_error(dist, 40_000, 0.3) < _median_error(dist, 1_000, 0.3)

    def test_error_decreases_with_epsilon(self):
        dist = Gaussian(0.0, 10.0)
        assert _median_error(dist, 4_000, 2.0, trials=10) <= _median_error(
            dist, 4_000, 0.1, trials=10
        )


class TestUniversalMeanOptions:
    def test_given_bucket_size_skips_iqr_search(self, rng):
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        result = estimate_mean(data, 0.5, 0.1, rng, bucket_size=0.01)
        assert result.iqr_lower_bound.branch == "given"
        assert abs(result.mean) < 0.2

    def test_subsample_size_override(self, rng):
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        result = estimate_mean(data, 0.5, 0.1, rng, subsample_size=2000)
        assert result.subsample_size == 2000

    def test_default_subsample_is_eps_n(self, rng):
        data = Gaussian(0.0, 1.0).sample(10_000, rng)
        result = estimate_mean(data, 0.25, 0.1, rng)
        assert result.subsample_size == 2500

    def test_diagnostics_fields(self, rng):
        data = Gaussian(3.0, 1.0).sample(8000, rng)
        result = estimate_mean(data, 0.5, 0.1, rng)
        assert result.sample_mean == pytest.approx(float(np.mean(data)))
        assert result.noise_scale >= 0.0
        assert result.inner_epsilon > 0.5
        assert result.clipped_count >= 0

    def test_ledger_stays_within_budget(self, rng):
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        ledger = PrivacyLedger(capacity=0.5 * 1.001)
        estimate_mean(data, 0.5, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon <= 0.5 * 1.001


class TestUniversalMeanValidation:
    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_mean(np.arange(4.0), 1.0, 0.1, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_mean(np.arange(100.0), 0.0, 0.1, rng)

    def test_invalid_beta_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_mean(np.arange(100.0), 1.0, 2.0, rng)
