"""Tests for the concrete distribution families."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    Gaussian,
    GaussianMixture,
    LaplaceDistribution,
    LogNormal,
    Pareto,
    SpikeMixture,
    StudentT,
    Uniform,
)
from repro.exceptions import DomainError

ALL_DISTRIBUTIONS = [
    Gaussian(2.0, 3.0),
    Uniform(-4.0, 6.0),
    LaplaceDistribution(1.0, 2.0),
    Exponential(scale=2.0),
    LogNormal(0.5, 0.8),
    StudentT(df=5.0, loc=1.0, scale=2.0),
    Pareto(alpha=4.0, x_m=2.0),
    GaussianMixture([-3.0, 3.0], [1.0, 2.0], [0.3, 0.7]),
    SpikeMixture(bulk_sigma=1.0, spike_width=1e-3, spike_mass=0.2),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
class TestDistributionContract:
    """Every distribution must satisfy the same consistency contract."""

    def test_sample_shape_and_finiteness(self, dist, rng):
        draw = dist.sample(1000, rng)
        assert draw.shape == (1000,)
        assert np.all(np.isfinite(draw))

    def test_sample_mean_matches_analytic_mean(self, dist):
        draws = dist.sample(200_000, np.random.default_rng(42))
        tolerance = 6.0 * dist.std / math.sqrt(draws.size) + 1e-3 + 0.01 * abs(dist.mean)
        assert np.mean(draws) == pytest.approx(dist.mean, abs=max(tolerance, 0.05))

    def test_sample_variance_matches_analytic_variance(self, dist):
        draws = dist.sample(200_000, np.random.default_rng(43))
        assert np.var(draws) == pytest.approx(dist.variance, rel=0.25)

    def test_cdf_quantile_roundtrip(self, dist):
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            x = dist.quantile(q)
            assert float(dist.cdf(x)) == pytest.approx(q, abs=0.01)

    def test_iqr_matches_quantiles(self, dist):
        assert dist.iqr == pytest.approx(
            float(dist.quantile(0.75) - dist.quantile(0.25)), rel=1e-6, abs=1e-9
        )

    def test_iqr_at_most_four_sigma(self, dist):
        """Section 2.1: phi(1/2) <= IQR <= 4 sigma."""
        assert dist.iqr <= 4.0 * dist.std + 1e-12
        assert dist.phi(0.5) <= dist.iqr + 1e-9

    def test_phi_monotone_in_beta(self, dist):
        assert dist.phi(1.0 / 16.0) <= dist.phi(0.5) + 1e-12

    def test_theta_positive(self, dist):
        assert dist.theta(dist.iqr / 10.0) > 0.0

    def test_statistical_width_increases_with_m(self, dist):
        assert dist.statistical_width(10, 0.1) <= dist.statistical_width(1000, 0.1)

    def test_statistical_width_upper_bounds_iqr(self, dist):
        """Section 2.1: IQR <= gamma(m, beta) for m >= log_{4/3}(2/beta)."""
        assert dist.iqr <= dist.statistical_width(100, 0.25) + 1e-9

    def test_describe_keys(self, dist):
        info = dist.describe()
        assert {"name", "mean", "std", "variance", "iqr"} <= set(info)


class TestGaussianSpecifics:
    def test_closed_form_moments(self):
        g = Gaussian(0.0, 2.0)
        assert g.central_moment(2) == pytest.approx(4.0)
        assert g.central_moment(4) == pytest.approx(3 * 16.0)

    def test_phi_is_symmetric_interval(self):
        g = Gaussian(0.0, 1.0)
        # phi(1/2) for a standard normal is 2 * z_{0.75} ≈ 1.349 (the IQR).
        assert g.phi(0.5) == pytest.approx(g.iqr, rel=1e-6)

    def test_invalid_sigma(self):
        with pytest.raises(DomainError):
            Gaussian(0.0, 0.0)


class TestHeavyTailedSpecifics:
    def test_student_t_infinite_high_moments(self):
        t3 = StudentT(df=3.0)
        assert math.isinf(t3.central_moment(3))
        assert math.isfinite(t3.central_moment(2))

    def test_student_t_needs_df_above_two(self):
        with pytest.raises(DomainError):
            StudentT(df=2.0)

    def test_pareto_infinite_high_moments(self):
        p = Pareto(alpha=3.0)
        assert math.isinf(p.central_moment(3))
        assert math.isfinite(p.central_moment(2))

    def test_pareto_support_positive(self, rng):
        p = Pareto(alpha=3.0, x_m=2.0)
        assert np.all(p.sample(1000, rng) >= 2.0)

    def test_pareto_needs_alpha_above_two(self):
        with pytest.raises(DomainError):
            Pareto(alpha=1.5)


class TestMixtures:
    def test_mixture_weights_validated(self):
        with pytest.raises(DomainError):
            GaussianMixture([0.0], [1.0], [0.5, 0.5])
        with pytest.raises(DomainError):
            GaussianMixture([0.0, 1.0], [1.0, 1.0], [0.5, -0.5])

    def test_mixture_mean_is_weighted_average(self):
        mix = GaussianMixture([-2.0, 4.0], [1.0, 1.0], [0.25, 0.75])
        assert mix.mean == pytest.approx(0.25 * -2.0 + 0.75 * 4.0)

    def test_spike_phi_collapses_with_spike_width(self):
        wide = SpikeMixture(1.0, 1e-2, 0.2)
        narrow = SpikeMixture(1.0, 1e-6, 0.2)
        assert narrow.phi(1.0 / 16.0) < wide.phi(1.0 / 16.0)
        assert narrow.std == pytest.approx(wide.std, rel=0.05)

    def test_spike_parameters_validated(self):
        with pytest.raises(DomainError):
            SpikeMixture(1.0, 1e-4, 1.5)
        with pytest.raises(DomainError):
            SpikeMixture(1.0, 0.0, 0.1)
