"""Tests for token-bucket QoS rate limiting (repro.service.qos).

The limiter's clock is injectable, so every refill path is driven
deterministically; the HTTP-level tests prove the headline property — a 429
is decided *before* admission and leaves the budget ledger bit-for-bit
unchanged.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.service.qos import LimitSpec, RateLimitDecision, RateLimiter, RateLimits


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLimitSpec:
    def test_validates(self):
        with pytest.raises(DomainError):
            LimitSpec(rate=0.0, burst=1.0)
        with pytest.raises(DomainError):
            LimitSpec(rate=1.0, burst=0.5)

    def test_limits_enabled(self):
        assert not RateLimits().enabled
        assert RateLimits(analyst=LimitSpec(rate=1.0, burst=1.0)).enabled
        assert RateLimits(kinds={"mean": LimitSpec(rate=1.0, burst=1.0)}).enabled


class TestRateLimiter:
    def test_disabled_admits_everything(self):
        limiter = RateLimiter(None)
        assert limiter.check("alice", "mean") is None
        assert not limiter.enabled
        assert limiter.stats()["allowed"] == 0  # disabled checks aren't counted

    def test_burst_then_refusal_then_refill(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(analyst=LimitSpec(rate=2.0, burst=2.0)), clock=clock
        )
        assert limiter.check("alice", "mean") is None
        assert limiter.check("alice", "mean") is None
        decision = limiter.check("alice", "mean")
        assert isinstance(decision, RateLimitDecision)
        assert decision.scope == "analyst" and decision.key == "alice"
        # bucket empty: one token refills in 1/rate seconds
        assert decision.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        assert limiter.check("alice", "mean") is None
        stats = limiter.stats()
        assert stats["allowed"] == 3 and stats["limited"] == 1

    def test_buckets_are_per_analyst(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(analyst=LimitSpec(rate=1.0, burst=1.0)), clock=clock
        )
        assert limiter.check("alice", "mean") is None
        assert limiter.check("bob", "mean") is None  # bob has his own bucket
        assert limiter.check("alice", "mean") is not None

    def test_anonymous_analysts_share_one_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(analyst=LimitSpec(rate=1.0, burst=1.0)), clock=clock
        )
        assert limiter.check(None, "mean") is None
        decision = limiter.check(None, "variance")
        assert decision is not None and decision.key == ""

    def test_per_name_override_beats_default(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(
                analyst=LimitSpec(rate=100.0, burst=100.0),
                analysts={"greedy": LimitSpec(rate=1.0, burst=1.0)},
            ),
            clock=clock,
        )
        assert limiter.check("greedy", "mean") is None
        assert limiter.check("greedy", "mean") is not None
        for _ in range(50):
            assert limiter.check("polite", "mean") is None

    def test_kind_scope(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(kinds={"variance": LimitSpec(rate=1.0, burst=1.0)}),
            clock=clock,
        )
        assert limiter.check("a", "mean") is None  # mean is unlimited
        assert limiter.check("a", "variance") is None
        decision = limiter.check("b", "variance")  # kind bucket spans analysts
        assert decision is not None and decision.scope == "kind"
        assert decision.key == "variance"

    def test_all_or_none_consumption(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(
                analyst=LimitSpec(rate=1.0, burst=5.0),
                kind=LimitSpec(rate=1.0, burst=1.0),
            ),
            clock=clock,
        )
        assert limiter.check("alice", "mean") is None
        # kind bucket is dry; the analyst bucket must NOT be debited
        for _ in range(3):
            decision = limiter.check("alice", "mean")
            assert decision is not None and decision.scope == "kind"
        clock.advance(1.0)  # kind bucket refills one token
        # analyst bucket still has 4 tokens: the refusals consumed nothing
        assert limiter.check("alice", "mean") is None

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(analyst=LimitSpec(rate=10.0, burst=2.0)), clock=clock
        )
        assert limiter.check("a", "mean") is None
        clock.advance(1_000.0)
        assert limiter.check("a", "mean") is None
        assert limiter.check("a", "mean") is None
        assert limiter.check("a", "mean") is not None  # burst, not rate*elapsed

    def test_configure_swaps_limits_and_resets(self):
        clock = FakeClock()
        limiter = RateLimiter(
            RateLimits(analyst=LimitSpec(rate=1.0, burst=1.0)), clock=clock
        )
        assert limiter.check("a", "mean") is None
        assert limiter.check("a", "mean") is not None
        limiter.configure(RateLimits(analyst=LimitSpec(rate=1.0, burst=2.0)))
        assert limiter.check("a", "mean") is None  # fresh full bucket
        limiter.configure(None)
        for _ in range(10):
            assert limiter.check("a", "mean") is None


class TestHttp429:
    """The acceptance property: a 429 never touches the budget ledger."""

    @pytest.fixture
    def server(self):
        from repro.service import QueryService, make_server, serve_forever

        service = QueryService(seed=13)
        service.register(
            "d", np.random.default_rng(1).normal(50.0, 5.0, 10_000), 5.0,
            analyst_budgets={"bursty": 2.0},
        )
        limiter = RateLimiter(
            RateLimits(analysts={"bursty": LimitSpec(rate=0.001, burst=1.0)})
        )
        http_server = make_server(service, port=0, quiet=True, limiter=limiter)
        thread = serve_forever(http_server)
        yield http_server
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)

    def _call(self, server, payload):
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read().decode()), response.headers
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode()), exc.headers

    def test_429_leaves_ledger_bit_identical(self, server):
        query = {"dataset": "d", "kind": "mean", "epsilon": 0.5, "analyst": "bursty"}
        status, doc, _ = self._call(server, query)
        assert status == 200 and doc["status"] == "ok"

        # bit-for-bit budget snapshot before the refused request
        before = json.dumps(server.service.stats()["datasets"], sort_keys=True)
        status, doc, headers = self._call(server, dict(query, epsilon=0.25))
        assert status == 429
        assert doc["status"] == "refused"
        assert doc["error"]["code"] == "rate_limited"
        assert doc["error"]["detail"]["scope"] == "analyst"
        assert doc["epsilon_charged"] == 0.0
        assert int(headers["Retry-After"]) >= 1
        after = json.dumps(server.service.stats()["datasets"], sort_keys=True)
        assert before == after

    def test_batch_mixes_429_and_answers(self, server):
        batch = {
            "queries": [
                {"dataset": "d", "kind": "mean", "epsilon": 0.5},
                {"dataset": "d", "kind": "mean", "epsilon": 0.5, "analyst": "bursty"},
                {"dataset": "d", "kind": "mean", "epsilon": 0.5, "analyst": "bursty"},
            ]
        }
        status, doc, _ = self._call(server, batch)
        assert status == 200
        outcomes = [
            (entry["status"], (entry.get("error") or {}).get("code"))
            for entry in doc["answers"]
        ]
        assert outcomes[0] == ("ok", None)
        assert outcomes[1][0] in ("ok", "refused")  # first bursty call admitted
        assert outcomes[2] == ("refused", "rate_limited")

    def test_rate_limited_outcome_in_metrics(self, server):
        query = {"dataset": "d", "kind": "mean", "epsilon": 0.5, "analyst": "bursty"}
        self._call(server, query)
        self._call(server, query)
        snapshot = server.service.metrics.snapshot()
        assert snapshot[("mean", "rate_limited")].count >= 1
