"""Tests for the benchmark workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    adversarial_outlier_dataset,
    clustered_integer_dataset,
    packing_level_dataset,
    uniform_integer_dataset,
    wide_spread_dataset,
)
from repro.exceptions import DomainError


class TestUniformIntegerDataset:
    def test_size_and_integrality(self, rng):
        data = uniform_integer_dataset(1000, 200, rng=rng)
        assert data.size == 1000
        np.testing.assert_array_equal(data, np.rint(data))

    def test_width_respected(self, rng):
        data = uniform_integer_dataset(5000, 100, center=50, rng=rng)
        assert np.min(data) >= 50 - 51
        assert np.max(data) <= 50 + 51

    def test_invalid_args(self, rng):
        with pytest.raises(DomainError):
            uniform_integer_dataset(0, 10, rng=rng)
        with pytest.raises(DomainError):
            uniform_integer_dataset(10, -1, rng=rng)


class TestClusteredDataset:
    def test_cluster_location(self, rng):
        data = clustered_integer_dataset(500, cluster_value=10_000, spread=3, rng=rng)
        assert np.all(np.abs(data - 10_000) <= 3)

    def test_zero_spread_is_constant(self, rng):
        data = clustered_integer_dataset(100, 7, spread=0, rng=rng)
        assert np.all(data == 7.0)


class TestAdversarialOutlierDataset:
    def test_composition(self, rng):
        data = adversarial_outlier_dataset(1000, bulk_width=50, outliers=10, outlier_value=10**6, rng=rng)
        assert data.size == 1000
        assert np.count_nonzero(data == 10**6) == 10

    def test_invalid_outlier_count(self, rng):
        with pytest.raises(DomainError):
            adversarial_outlier_dataset(10, 5, outliers=20, outlier_value=100, rng=rng)


class TestWideSpreadDataset:
    def test_exact_width(self, rng):
        data = wide_spread_dataset(500, width=1000, rng=rng)
        assert np.max(data) - np.min(data) == pytest.approx(1000, abs=2)

    def test_minimum_size(self, rng):
        with pytest.raises(DomainError):
            wide_spread_dataset(1, 100, rng=rng)


class TestPackingLevelDataset:
    def test_structure(self):
        data = packing_level_dataset(100, level_value=64, changed=5)
        assert np.count_nonzero(data) == 5
        assert np.max(data) == 64.0
        assert data.size == 100

    def test_invalid_changed(self):
        with pytest.raises(DomainError):
            packing_level_dataset(10, 4, changed=11)
