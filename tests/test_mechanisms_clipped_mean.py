"""Tests for the clipped mean estimator (Section 2.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting import PrivacyLedger
from repro.exceptions import DomainError, InsufficientDataError
from repro.mechanisms import clip_values, clipped_mean, clipped_mean_mechanism
from repro.mechanisms.clipped_mean import count_outside


class TestClipValues:
    def test_values_inside_unchanged(self):
        np.testing.assert_array_equal(clip_values([1.0, 2.0], 0.0, 5.0), [1.0, 2.0])

    def test_values_outside_clipped(self):
        np.testing.assert_array_equal(clip_values([-10.0, 10.0], -1.0, 1.0), [-1.0, 1.0])

    def test_empty_interval_rejected(self):
        with pytest.raises(DomainError):
            clip_values([1.0], 5.0, 4.0)

    def test_non_finite_interval_rejected(self):
        with pytest.raises(DomainError):
            clip_values([1.0], 0.0, float("inf"))

    def test_degenerate_interval_maps_everything_to_point(self):
        np.testing.assert_array_equal(clip_values([-3.0, 0.0, 7.0], 2.0, 2.0), [2.0, 2.0, 2.0])

    @given(
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        low=st.floats(min_value=-100, max_value=0),
        high=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_output_within_bounds(self, values, low, high):
        clipped = clip_values(values, low, high)
        assert np.all(clipped >= low - 1e-12)
        assert np.all(clipped <= high + 1e-12)


class TestCountOutside:
    def test_counts_strictly_outside(self):
        assert count_outside([-5.0, 0.0, 5.0], -1.0, 1.0) == 2

    def test_boundary_values_not_counted(self):
        assert count_outside([-1.0, 1.0], -1.0, 1.0) == 0


class TestClippedMean:
    def test_matches_plain_mean_when_nothing_clipped(self):
        data = [1.0, 2.0, 3.0]
        assert clipped_mean(data, 0.0, 10.0) == pytest.approx(2.0)

    def test_clipping_pulls_mean_inward(self):
        data = [0.0, 0.0, 1000.0]
        assert clipped_mean(data, 0.0, 10.0) == pytest.approx(10.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            clipped_mean([], 0.0, 1.0)

    @given(
        values=st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=40),
        half_width=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_result_in_interval(self, values, half_width):
        result = clipped_mean(values, -half_width, half_width)
        assert -half_width - 1e-9 <= result <= half_width + 1e-9


class TestClippedMeanMechanism:
    def test_close_to_exact_for_large_epsilon(self, rng):
        data = np.linspace(0, 10, 1000)
        noisy = clipped_mean_mechanism(data, 0.0, 10.0, epsilon=50.0, rng=rng)
        assert noisy == pytest.approx(5.0, abs=0.1)

    def test_noise_scales_with_interval_width(self):
        data = np.zeros(100)
        wide = [
            clipped_mean_mechanism(data, -1000.0, 1000.0, 1.0, np.random.default_rng(s))
            for s in range(300)
        ]
        narrow = [
            clipped_mean_mechanism(data, -1.0, 1.0, 1.0, np.random.default_rng(s))
            for s in range(300)
        ]
        assert np.std(wide) > np.std(narrow)

    def test_ledger_records_spend(self, rng):
        ledger = PrivacyLedger()
        clipped_mean_mechanism([1.0, 2.0], 0.0, 5.0, 0.3, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.3)

    def test_empty_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            clipped_mean_mechanism([], 0.0, 1.0, 1.0, rng)

    def test_empty_interval_rejected(self, rng):
        with pytest.raises(DomainError):
            clipped_mean_mechanism([1.0], 1.0, 0.0, 1.0, rng)
