"""Tests for the trial runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_statistical_trials, run_trials
from repro.distributions import Gaussian
from repro.exceptions import DomainError, MechanismError


class TestRunTrials:
    def test_exact_estimator_has_zero_error(self, rng):
        result = run_trials(
            estimator=lambda data, gen: float(np.mean(data)),
            data_generator=lambda gen: np.full(10, 3.0),
            truth=3.0,
            trials=5,
            rng=rng,
        )
        assert result.summary.max == 0.0
        assert result.mean_estimate == pytest.approx(3.0)

    def test_trial_count_respected(self, rng):
        result = run_trials(
            estimator=lambda data, gen: float(gen.normal()),
            data_generator=lambda gen: np.zeros(1),
            truth=0.0,
            trials=17,
            rng=rng,
        )
        assert result.estimates.size == 17
        assert result.summary.trials == 17

    def test_zero_trials_rejected(self, rng):
        with pytest.raises(DomainError):
            run_trials(lambda d, g: 0.0, lambda g: np.zeros(1), 0.0, 0, rng)

    def test_failures_propagate_by_default(self, rng):
        def failing(data, gen):
            raise MechanismError("boom")

        with pytest.raises(MechanismError):
            run_trials(failing, lambda g: np.zeros(1), 0.0, 3, rng)

    def test_failures_counted_when_allowed(self, rng):
        calls = {"count": 0}

        def sometimes_failing(data, gen):
            calls["count"] += 1
            if calls["count"] % 2 == 0:
                raise MechanismError("boom")
            return 1.0

        result = run_trials(
            sometimes_failing, lambda g: np.zeros(1), 1.0, 6, rng, allow_failures=True
        )
        assert result.failures == 3
        assert result.estimates.size == 3

    def test_all_failures_raise_even_when_allowed(self, rng):
        def failing(data, gen):
            raise MechanismError("boom")

        with pytest.raises(MechanismError):
            run_trials(failing, lambda g: np.zeros(1), 0.0, 3, rng, allow_failures=True)


class TestRunStatisticalTrials:
    def test_sample_mean_recovers_distribution_mean(self, rng):
        dist = Gaussian(4.0, 1.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(np.mean(data)),
            distribution=dist,
            parameter="mean",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(4.0)
        assert result.summary.q95 < 0.2

    def test_variance_parameter(self, rng):
        dist = Gaussian(0.0, 2.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(np.var(data)),
            distribution=dist,
            parameter="variance",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(4.0)
        assert result.summary.q95 < 1.0

    def test_iqr_parameter(self, rng):
        dist = Gaussian(0.0, 1.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(
                np.quantile(data, 0.75) - np.quantile(data, 0.25)
            ),
            distribution=dist,
            parameter="iqr",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(dist.iqr, rel=1e-6)

    def test_unknown_parameter_rejected(self, rng):
        with pytest.raises(DomainError):
            run_statistical_trials(
                lambda d, g: 0.0, Gaussian(), "median", 100, 2, rng
            )
