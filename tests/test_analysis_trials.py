"""Tests for the trial runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_statistical_trials, run_trials
from repro.distributions import Gaussian
from repro.exceptions import DomainError, MechanismError


class TestRunTrials:
    def test_exact_estimator_has_zero_error(self, rng):
        result = run_trials(
            estimator=lambda data, gen: float(np.mean(data)),
            data_generator=lambda gen: np.full(10, 3.0),
            truth=3.0,
            trials=5,
            rng=rng,
        )
        assert result.summary.max == 0.0
        assert result.mean_estimate == pytest.approx(3.0)

    def test_trial_count_respected(self, rng):
        result = run_trials(
            estimator=lambda data, gen: float(gen.normal()),
            data_generator=lambda gen: np.zeros(1),
            truth=0.0,
            trials=17,
            rng=rng,
        )
        assert result.estimates.size == 17
        assert result.summary.trials == 17

    def test_zero_trials_rejected(self, rng):
        with pytest.raises(DomainError):
            run_trials(lambda d, g: 0.0, lambda g: np.zeros(1), 0.0, 0, rng)

    def test_failures_propagate_by_default(self, rng):
        def failing(data, gen):
            raise MechanismError("boom")

        with pytest.raises(MechanismError):
            run_trials(failing, lambda g: np.zeros(1), 0.0, 3, rng)

    def test_failures_counted_when_allowed(self, rng):
        calls = {"count": 0}

        def sometimes_failing(data, gen):
            calls["count"] += 1
            if calls["count"] % 2 == 0:
                raise MechanismError("boom")
            return 1.0

        result = run_trials(
            sometimes_failing, lambda g: np.zeros(1), 1.0, 6, rng, allow_failures=True
        )
        assert result.failures == 3
        assert result.estimates.size == 3

    def test_all_failures_raise_even_when_allowed(self, rng):
        def failing(data, gen):
            raise MechanismError("boom")

        with pytest.raises(MechanismError):
            run_trials(failing, lambda g: np.zeros(1), 0.0, 3, rng, allow_failures=True)


class TestEngineIntegration:
    """run_trials riding on repro.engine: determinism and failure isolation."""

    @staticmethod
    def _dp_estimator(data, gen):
        return float(np.mean(data) + gen.laplace(0.0, 0.1))

    def test_worker_count_does_not_change_estimates(self):
        dist = Gaussian(2.0, 1.0)
        serial = run_statistical_trials(
            self._dp_estimator, dist, "mean", 500, 12, 123, workers=1
        )
        parallel = run_statistical_trials(
            self._dp_estimator, dist, "mean", 500, 12, 123, workers=4
        )
        np.testing.assert_array_equal(serial.estimates, parallel.estimates)

    def test_trial_k_invariant_to_earlier_failure(self):
        """Regression for the spawn_rngs promise: a failed trial k-1 must not
        shift the randomness (and hence the estimate) of trial k."""
        state = {"fail_first": False}

        def estimator(data, gen):
            if state["fail_first"]:
                state["fail_first"] = False
                raise MechanismError("boom")
            return float(gen.normal())

        clean = run_trials(
            estimator, lambda g: np.zeros(1), 0.0, 5, 99, allow_failures=True
        )
        state["fail_first"] = True
        with_failure = run_trials(
            estimator, lambda g: np.zeros(1), 0.0, 5, 99, allow_failures=True
        )
        assert with_failure.failures == 1
        assert with_failure.failure_records[0].index == 0
        np.testing.assert_array_equal(with_failure.estimates, clean.estimates[1:])

    def test_failure_records_are_structured(self):
        def failing_on_first_two(data, gen):
            raise MechanismError("ptr failed")

        calls = {"count": 0}

        def estimator(data, gen):
            calls["count"] += 1
            if calls["count"] <= 2:
                return failing_on_first_two(data, gen)
            return 1.0

        result = run_trials(
            estimator, lambda g: np.zeros(1), 1.0, 5, 7, allow_failures=True
        )
        assert result.failures == 2
        assert [record.index for record in result.failure_records] == [0, 1]
        assert result.failure_records[0].error == "MechanismError"
        assert result.failure_records[0].message == "ptr failed"

    def test_shared_policy_reproduces_legacy_stream(self):
        """rng_policy='shared' must match the historical one-stream loop bit-for-bit."""

        def estimator(data, gen):
            return float(np.mean(data) + gen.normal())

        def data_generator(gen):
            return gen.normal(size=16)

        # Reference: the pre-engine implementation, one shared stream.
        legacy_gen = np.random.default_rng(20230401)
        legacy = [
            float(estimator(data_generator(legacy_gen), legacy_gen)) for _ in range(6)
        ]

        result = run_trials(
            estimator, data_generator, 0.0, 6, 20230401, rng_policy="shared"
        )
        np.testing.assert_array_equal(result.estimates, np.asarray(legacy))

    def test_data_generator_failures_propagate_even_when_allowed(self):
        """allow_failures guards the estimator only: a MechanismError from the
        data generator must propagate under both policies and any workers."""

        def failing_generator(gen):
            raise MechanismError("data source failed")

        for kwargs in ({"workers": 1}, {"workers": 2}, {"rng_policy": "shared"}):
            with pytest.raises(MechanismError, match="data source failed"):
                run_trials(
                    lambda d, g: 0.0,
                    failing_generator,
                    0.0,
                    3,
                    0,
                    allow_failures=True,
                    **kwargs,
                )

    def test_shared_policy_rejects_parallel(self):
        with pytest.raises(DomainError):
            run_trials(
                lambda d, g: 0.0,
                lambda g: np.zeros(1),
                0.0,
                3,
                0,
                workers=2,
                rng_policy="shared",
            )

    def test_unknown_rng_policy_rejected(self):
        with pytest.raises(DomainError):
            run_trials(
                lambda d, g: 0.0, lambda g: np.zeros(1), 0.0, 3, 0, rng_policy="global"
            )


class TestRunStatisticalTrials:
    def test_sample_mean_recovers_distribution_mean(self, rng):
        dist = Gaussian(4.0, 1.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(np.mean(data)),
            distribution=dist,
            parameter="mean",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(4.0)
        assert result.summary.q95 < 0.2

    def test_variance_parameter(self, rng):
        dist = Gaussian(0.0, 2.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(np.var(data)),
            distribution=dist,
            parameter="variance",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(4.0)
        assert result.summary.q95 < 1.0

    def test_iqr_parameter(self, rng):
        dist = Gaussian(0.0, 1.0)
        result = run_statistical_trials(
            estimator=lambda data, gen: float(
                np.quantile(data, 0.75) - np.quantile(data, 0.25)
            ),
            distribution=dist,
            parameter="iqr",
            n=4000,
            trials=6,
            rng=rng,
        )
        assert result.truth == pytest.approx(dist.iqr, rel=1e-6)

    def test_unknown_parameter_rejected(self, rng):
        with pytest.raises(DomainError):
            run_statistical_trials(
                lambda d, g: 0.0, Gaussian(), "median", 100, 2, rng
            )
