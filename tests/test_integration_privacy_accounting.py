"""Integration tests for privacy accounting across composite estimators.

These verify the executable counterpart of the paper's composition arguments:
every composite algorithm's recorded spend stays within (a documented constant
multiple of) the epsilon the caller requested, and each sub-mechanism appears
in the ledger exactly as the pseudo-code splits the budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PrivacyLedger,
    estimate_empirical_mean,
    estimate_empirical_quantile,
    estimate_iqr,
    estimate_iqr_lower_bound,
    estimate_mean,
    estimate_radius,
    estimate_range,
    estimate_variance,
)
from repro.distributions import Gaussian


@pytest.fixture
def gaussian_data(rng):
    return Gaussian(3.0, 2.0).sample(8192, rng)


class TestBudgetTotals:
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 1.0])
    def test_empirical_mean_spends_exactly_epsilon(self, gaussian_data, rng, epsilon):
        ledger = PrivacyLedger()
        estimate_empirical_mean(gaussian_data, epsilon, 0.1, rng, bucket_size=0.01, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(epsilon, rel=1e-6)

    @pytest.mark.parametrize("epsilon", [0.25, 1.0])
    def test_empirical_quantile_spends_exactly_epsilon(self, gaussian_data, rng, epsilon):
        ledger = PrivacyLedger()
        estimate_empirical_quantile(
            gaussian_data, 4000, epsilon, 0.1, rng, bucket_size=0.01, ledger=ledger
        )
        assert ledger.total_epsilon == pytest.approx(epsilon, rel=1e-6)

    def test_radius_and_range_spend_exactly(self, gaussian_data, rng):
        ledger = PrivacyLedger()
        estimate_radius(gaussian_data, 0.3, 0.1, rng, bucket_size=0.01, ledger=ledger)
        estimate_range(gaussian_data, 0.7, 0.1, rng, bucket_size=0.01, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(1.0, rel=1e-6)

    def test_statistical_mean_stays_within_budget(self, gaussian_data, rng):
        ledger = PrivacyLedger(capacity=0.5 * (1.0 + 1e-6))
        estimate_mean(gaussian_data, 0.5, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon <= 0.5 * (1.0 + 1e-6)

    def test_statistical_iqr_spends_exactly_epsilon(self, gaussian_data, rng):
        ledger = PrivacyLedger()
        estimate_iqr(gaussian_data, 0.6, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.6, rel=1e-6)

    def test_statistical_variance_spends_at_most_nine_eighths(self, gaussian_data, rng):
        """Algorithm 9's published split adds up to (9/8) eps; the ledger makes
        that overhead visible rather than hiding it."""
        ledger = PrivacyLedger()
        estimate_variance(gaussian_data, 0.4, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon <= 0.4 * 9.0 / 8.0 + 1e-9
        assert ledger.total_epsilon >= 0.4 * 0.5

    def test_iqr_lower_bound_split_between_two_svts(self, gaussian_data, rng):
        ledger = PrivacyLedger()
        estimate_iqr_lower_bound(gaussian_data, 0.2, 0.1, rng, ledger=ledger)
        assert len(ledger) == 2
        assert all(s.effective_epsilon == pytest.approx(0.1) for s in ledger)


class TestLedgerLabels:
    def test_mean_ledger_contains_all_stages(self, gaussian_data, rng):
        ledger = PrivacyLedger()
        estimate_mean(gaussian_data, 0.5, 0.1, rng, ledger=ledger)
        labels = " ".join(s.label for s in ledger)
        assert "iqr_lower_bound" in labels
        assert "range" in labels
        assert "noise" in labels

    def test_amplified_stage_charges_less_than_inner_epsilon(self, gaussian_data, rng):
        ledger = PrivacyLedger()
        estimate_mean(gaussian_data, 0.5, 0.1, rng, ledger=ledger)
        amplified = [s for s in ledger if s.charged_epsilon is not None]
        assert amplified
        for spend in amplified:
            assert spend.charged_epsilon < spend.epsilon
