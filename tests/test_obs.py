"""Unit tests for repro.obs: trace model, recorder ring, audit chain, replay."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import DomainError
from repro.obs import (
    AuditChainError,
    AuditLog,
    Trace,
    TraceRecorder,
    mint_trace_id,
    replay_spend,
    span,
    verify_audit_log,
)
from repro.obs.audit import GENESIS
from repro.obs.trace import accept_trace_id


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Trace ids
# ---------------------------------------------------------------------------
class TestTraceIds:
    def test_minted_ids_are_16_hex_and_distinct(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_wellformed_header_honoured(self):
        assert accept_trace_id("my-trace.01_X") == "my-trace.01_X"
        assert accept_trace_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "bad", [None, "", "   ", "a" * 65, "has space", "héx", "semi;colon"]
    )
    def test_malformed_header_replaced_never_rejected(self, bad):
        result = accept_trace_id(bad)
        assert result != bad
        assert len(result) == 16


# ---------------------------------------------------------------------------
# Trace + spans
# ---------------------------------------------------------------------------
class TestTrace:
    def test_span_timing_and_detail(self):
        clock = FakeClock()
        trace = Trace("t1", clock=clock, frontend="test")
        clock.tick(0.010)
        with trace.span("parse", bytes=42) as info:
            clock.tick(0.005)
            info["fields"] = 3
        assert len(trace.spans) == 1
        recorded = trace.spans[0]
        assert recorded.name == "parse"
        assert recorded.start == pytest.approx(10.0)
        assert recorded.duration == pytest.approx(5.0)
        assert recorded.detail == {"bytes": 42, "fields": 3}

    def test_span_recorded_even_when_stage_raises(self):
        trace = Trace("t2", clock=FakeClock())
        with pytest.raises(RuntimeError):
            with trace.span("engine"):
                raise RuntimeError("boom")
        assert [recorded.name for recorded in trace.spans] == ["engine"]

    def test_finish_latches_duration(self):
        clock = FakeClock()
        trace = Trace("t3", clock=clock)
        clock.tick(0.25)
        first = trace.finish()
        clock.tick(1.0)
        assert trace.finish() == first == pytest.approx(250.0)

    def test_to_json_shape(self):
        clock = FakeClock()
        trace = Trace("t4", clock=clock, frontend="threaded")
        with trace.span("parse"):
            clock.tick(0.001)
        trace.annotate(dataset="d", status="ok")
        document = trace.to_json()
        assert document["trace"] == "t4"
        assert document["meta"] == {
            "frontend": "threaded", "dataset": "d", "status": "ok",
        }
        assert [s["name"] for s in document["spans"]] == ["parse"]
        json.dumps(document)  # JSON-safe throughout

    def test_module_span_noop_without_trace(self):
        with span(None, "anything", key="v") as info:
            info["x"] = 1  # must be writable and discarded
        trace = Trace("t5", clock=FakeClock())
        with span(trace, "stage") as info:
            info["hit"] = True
        assert trace.spans[0].detail == {"hit": True}


# ---------------------------------------------------------------------------
# TraceRecorder
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_ring_evicts_oldest(self):
        recorder = TraceRecorder(ring=2, clock=FakeClock())
        for name in ("a", "b", "c"):
            trace = Trace(name, clock=FakeClock())
            recorder.finish(trace)
        assert recorder.get("a") is None
        assert recorder.get("b") is not None
        assert [t["trace"] for t in recorder.recent()] == ["c", "b"]
        stats = recorder.stats()
        assert stats == {
            "ring": 2, "held": 2, "recorded": 3,
            "slow_query_ms": None, "slow_queries": 0,
        }

    def test_start_accepts_header_id(self):
        recorder = TraceRecorder(ring=4)
        assert recorder.start("client-id").trace_id == "client-id"
        assert recorder.start("bad header!").trace_id != "bad header!"

    def test_slow_query_line_emitted_over_threshold(self):
        lines = []
        clock = FakeClock()
        recorder = TraceRecorder(
            ring=8, slow_query_ms=100.0, clock=clock, emit=lines.append
        )
        fast = recorder.start(None, kind="mean")
        clock.tick(0.05)
        recorder.finish(fast)
        slow = recorder.start(None, kind="iqr", dataset="d")
        clock.tick(0.2)
        recorder.finish(slow)
        assert len(lines) == 1
        assert lines[0].startswith(f"slow query trace={slow.trace_id} ")
        assert "threshold_ms=100" in lines[0]
        assert "dataset=d" in lines[0] and "kind=iqr" in lines[0]
        assert recorder.stats()["slow_queries"] == 1

    def test_configure_hot_swaps_ring_and_threshold(self):
        lines = []
        clock = FakeClock()
        recorder = TraceRecorder(ring=8, clock=clock, emit=lines.append)
        for name in ("a", "b", "c"):
            recorder.finish(Trace(name, clock=clock))
        recorder.configure(ring=1)
        assert recorder.stats()["held"] == 1
        recorder.configure(slow_query_ms=0.0)
        recorder.finish(Trace("d", clock=clock))
        assert len(lines) == 1
        recorder.configure(slow_query_enabled=False)
        recorder.finish(Trace("e", clock=clock))
        assert len(lines) == 1
        assert recorder.stats()["slow_query_ms"] is None

    def test_invalid_settings_rejected(self):
        with pytest.raises(DomainError):
            TraceRecorder(ring=0)
        with pytest.raises(DomainError):
            TraceRecorder(ring=4, slow_query_ms=-1.0)
        recorder = TraceRecorder(ring=4)
        with pytest.raises(DomainError):
            recorder.configure(ring=0)
        with pytest.raises(DomainError):
            recorder.configure(slow_query_ms=-0.5)


# ---------------------------------------------------------------------------
# Audit log: chain, verify, resume
# ---------------------------------------------------------------------------
class TestAuditChain:
    def test_round_trip_verifies(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            first = log.record("reserve", dataset="d", epsilon=0.5)
            second = log.record("commit", dataset="d", epsilon=0.25)
        assert first["seq"] == 1 and first["prev"] == GENESIS
        assert second["prev"] == first["hash"]
        count, final = verify_audit_log(path)
        assert (count, final) == (2, second["hash"])

    def test_empty_or_absent_log_verifies_trivially(self, tmp_path):
        assert verify_audit_log(tmp_path / "missing.jsonl") == (0, GENESIS)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert verify_audit_log(empty) == (0, GENESIS)

    def test_unknown_event_and_reserved_fields_rejected(self, tmp_path):
        with AuditLog(tmp_path / "a.jsonl") as log:
            with pytest.raises(DomainError):
                log.record("made_up_event")
            with pytest.raises(DomainError):
                log.record("commit", seq=99)
        assert verify_audit_log(tmp_path / "a.jsonl") == (0, GENESIS)

    def test_reopen_resumes_the_same_chain(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("reserve", dataset="d", epsilon=0.5)
        with AuditLog(path) as log:
            log.record("commit", dataset="d", epsilon=0.5)
        count, _ = verify_audit_log(path)
        assert count == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[1]["prev"] == records[0]["hash"]
        assert records[1]["seq"] == 2

    def test_closed_log_refuses_records(self, tmp_path):
        log = AuditLog(tmp_path / "a.jsonl")
        log.close()
        with pytest.raises(DomainError):
            log.record("commit", epsilon=0.1)

    def test_single_flipped_byte_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("commit", dataset="d", kind="mean", epsilon=0.5)
            log.record("commit", dataset="d", kind="iqr", epsilon=0.25)
        original = path.read_text()
        # Flip one digit inside the first record's epsilon value (valid JSON
        # before and after): the recomputed hash must disagree.
        tampered = original.replace('"epsilon":0.5', '"epsilon":0.6', 1)
        assert tampered != original
        path.write_text(tampered)
        with pytest.raises(AuditChainError, match="tampered"):
            verify_audit_log(path)

    def test_dropped_line_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            for epsilon in (0.1, 0.2, 0.3):
                log.record("commit", dataset="d", epsilon=epsilon)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(AuditChainError, match="sequence break"):
            verify_audit_log(path)

    def test_unparseable_line_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("commit", dataset="d", epsilon=0.5)
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(AuditChainError, match="unparseable"):
            verify_audit_log(path)

    def test_concurrent_records_keep_chain_intact(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        threads, per_thread = 8, 25
        with AuditLog(path) as log:
            def hammer(worker: int) -> None:
                for i in range(per_thread):
                    log.record("commit", dataset="d", worker=worker,
                               step=i, epsilon=0.25)

            workers = [
                threading.Thread(target=hammer, args=(n,)) for n in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        # No lost or duplicated records, and the chain still verifies.
        count, _ = verify_audit_log(path)
        assert count == threads * per_thread
        report = replay_spend(path)
        assert report["events"] == {"commit": threads * per_thread}
        assert report["owners"][""]["spent"] == pytest.approx(
            threads * per_thread * 0.25
        )


# ---------------------------------------------------------------------------
# Spend replay
# ---------------------------------------------------------------------------
class TestReplaySpend:
    def test_commit_only_positive_epsilon_charges(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("reserve", budget="dataset:d", dataset="d",
                       kind="mean", epsilon=1.0, analyst="alice")
            log.record("commit", budget="dataset:d", dataset="d",
                       kind="mean", epsilon=0.5, analyst="alice")
            log.record("commit", budget="dataset:d", dataset="d",
                       kind="mean", epsilon=0.0, analyst="alice")  # no charge
            log.record("refuse", budget="dataset:d", dataset="d",
                       kind="iqr", analyst="bob", reason="budget_exceeded")
            log.record("commit", budget="group:g", dataset="e",
                       kind="iqr", epsilon=0.25, analyst=None)
        report = replay_spend(path)
        assert report["records"] == 5
        assert report["events"] == {"commit": 3, "refuse": 1, "reserve": 1}
        assert report["owners"] == {
            "dataset:d": {"spent": 0.5, "analysts": {"alice": 0.5}},
            "group:g": {"spent": 0.25, "analysts": {}},
        }
        assert report["kinds"] == {"iqr": 0.25, "mean": 0.5}

    def test_float_totals_reproduce_addition_order_bitwise(self, tmp_path):
        # 0.1 is not representable; repeated addition is order- and
        # rounding-sensitive, exactly what "bit-for-bit" must survive.
        path = tmp_path / "audit.jsonl"
        spends = [0.1, 0.2, 0.3, 0.1, 0.7, 0.123456789]
        expected = 0.0
        with AuditLog(path) as log:
            for epsilon in spends:
                log.record("commit", budget="dataset:d", dataset="d",
                           kind="mean", epsilon=epsilon)
                expected += epsilon
        report = replay_spend(path)
        assert report["owners"]["dataset:d"]["spent"] == expected  # exact ==

    def test_empty_log_replays_empty(self, tmp_path):
        report = replay_spend(tmp_path / "missing.jsonl")
        assert report["records"] == 0
        assert report["owners"] == {} and report["kinds"] == {}

    def test_replay_refuses_tampered_log(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record("commit", budget="dataset:d", dataset="d", epsilon=0.5)
        path.write_text(path.read_text().replace('0.5', '0.9'))
        with pytest.raises(AuditChainError):
            replay_spend(path)
