"""Tests for the universal multi-quantile estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PrivacyLedger, estimate_quantiles
from repro.distributions import Gaussian, LogNormal
from repro.exceptions import DomainError, InsufficientDataError


class TestQuantilesAccuracy:
    def test_gaussian_median_and_tails(self, rng):
        dist = Gaussian(10.0, 2.0)
        data = dist.sample(20_000, rng)
        result = estimate_quantiles(data, [0.25, 0.5, 0.75], epsilon=1.0, rng=rng)
        for level, value in result.as_dict().items():
            assert value == pytest.approx(float(dist.quantile(level)), abs=0.5)

    def test_lognormal_p95(self, rng):
        dist = LogNormal(0.0, 1.0)
        data = dist.sample(20_000, rng)
        result = estimate_quantiles(data, [0.95], epsilon=1.0, rng=rng)
        assert result.values[0] == pytest.approx(float(dist.quantile(0.95)), rel=0.25)

    def test_estimates_are_monotone_in_level(self, rng):
        data = Gaussian(0.0, 1.0).sample(20_000, rng)
        result = estimate_quantiles(data, [0.1, 0.5, 0.9], epsilon=2.0, rng=rng)
        assert result.values[0] <= result.values[1] <= result.values[2]

    def test_error_decreases_with_epsilon(self):
        dist = Gaussian(0.0, 1.0)
        errors = {}
        for epsilon in (0.2, 2.0):
            per_trial = []
            for seed in range(6):
                gen = np.random.default_rng(seed)
                data = dist.sample(8_000, gen)
                result = estimate_quantiles(data, [0.5], epsilon, rng=gen)
                per_trial.append(abs(result.values[0] - dist.quantile(0.5)))
            errors[epsilon] = float(np.median(per_trial))
        assert errors[2.0] <= errors[0.2] + 1e-9


class TestQuantilesMechanics:
    def test_result_structure(self, rng):
        data = Gaussian(0.0, 1.0).sample(5_000, rng)
        result = estimate_quantiles(data, [0.5, 0.9], epsilon=1.0, rng=rng)
        assert result.levels == (0.5, 0.9)
        assert len(result.values) == 2
        assert len(result.per_quantile) == 2
        assert result.epsilon_per_quantile == pytest.approx(1.0 * (2.0 / 3.0) / 2.0)
        assert set(result.as_dict()) == {0.5, 0.9}

    def test_ledger_spend_equals_budget(self, rng):
        data = Gaussian(0.0, 1.0).sample(5_000, rng)
        ledger = PrivacyLedger()
        estimate_quantiles(data, [0.5, 0.9, 0.99], epsilon=0.9, rng=rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.9, rel=1e-6)

    def test_explicit_bucket_skips_lower_bound_search(self, rng):
        data = Gaussian(0.0, 1.0).sample(5_000, rng)
        ledger = PrivacyLedger()
        result = estimate_quantiles(
            data, [0.5], epsilon=0.5, rng=rng, bucket_size=0.001, ledger=ledger
        )
        assert result.iqr_lower_bound.branch == "given"
        # The whole budget goes to the single quantile release.
        assert result.epsilon_per_quantile == pytest.approx(0.5)
        assert ledger.total_epsilon == pytest.approx(0.5, rel=1e-6)

    def test_invalid_levels_rejected(self, rng):
        data = Gaussian(0.0, 1.0).sample(1_000, rng)
        with pytest.raises(DomainError):
            estimate_quantiles(data, [], 1.0, rng=rng)
        with pytest.raises(DomainError):
            estimate_quantiles(data, [0.0], 1.0, rng=rng)
        with pytest.raises(DomainError):
            estimate_quantiles(data, [1.2], 1.0, rng=rng)

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_quantiles(np.arange(4.0), [0.5], 1.0, rng=rng)
