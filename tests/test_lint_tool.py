"""Runner and CLI mechanics: suppression, filtering, JSON schema, exit codes.

Fixture files live in a tmp dir, so these tests exercise the real file
collection path (directory recursion, ``__pycache__`` skipping, parse
errors) exactly as ``repro lint`` in CI does.  The final test pins the
acceptance criterion that the repo's own ``src`` tree lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.exceptions import DomainError
from repro.lint import (
    PARSE_RULE_ID,
    lint_paths,
    parse_suppressions,
    render_json,
    render_text,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

VIOLATION = "import numpy as np\nx = np.random.normal()\n"
SUPPRESSED = (
    "import numpy as np\n"
    "x = np.random.normal()  # repro: ignore[REP001] fixture exception\n"
)


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Suppression mechanics
# ---------------------------------------------------------------------------
class TestSuppression:
    def test_exact_line_suppression(self, tmp_path):
        write(tmp_path, "mod.py", SUPPRESSED)
        result = lint_paths([tmp_path])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule_id == "REP001"
        assert result.suppressed[0].line == 2

    def test_suppression_on_wrong_line_does_not_apply(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import numpy as np\n"
            "# repro: ignore[REP001] comment on the line above, not the call\n"
            "x = np.random.normal()\n",
        )
        result = lint_paths([tmp_path])
        assert len(result.findings) == 1
        assert result.findings[0].line == 3

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import numpy as np\n"
            "x = np.random.normal()  # repro: ignore[REP002]\n",
        )
        result = lint_paths([tmp_path])
        assert len(result.findings) == 1

    def test_star_suppresses_all_rules(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import numpy as np\n"
            "x = np.random.normal()  # repro: ignore[*]\n",
        )
        result = lint_paths([tmp_path])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_comma_separated_ids(self):
        table = parse_suppressions(
            "value = 1  # repro: ignore[REP001, REP003]\n"
        )
        assert table == {1: {"REP001", "REP003"}}

    def test_marker_inside_string_literal_ignored(self):
        table = parse_suppressions(
            'text = "# repro: ignore[REP001]"\n'
        )
        assert table == {}


# ---------------------------------------------------------------------------
# Filtering and collection
# ---------------------------------------------------------------------------
class TestRunner:
    def test_select_restricts_rules(self, tmp_path):
        write(tmp_path, "mod.py", VIOLATION)
        assert lint_paths([tmp_path], select=["REP002"]).findings == []
        assert len(lint_paths([tmp_path], select=["REP001"]).findings) == 1

    def test_ignore_drops_rules(self, tmp_path):
        write(tmp_path, "mod.py", VIOLATION)
        assert lint_paths([tmp_path], ignore=["REP001"]).findings == []

    def test_unknown_rule_id_raises(self, tmp_path):
        write(tmp_path, "mod.py", VIOLATION)
        with pytest.raises(DomainError, match="unknown rule id"):
            lint_paths([tmp_path], select=["REP999"])
        with pytest.raises(DomainError, match="unknown rule id"):
            lint_paths([tmp_path], ignore=["bogus"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(DomainError, match="does not exist"):
            lint_paths([tmp_path / "nope"])

    def test_parse_error_becomes_rep000(self, tmp_path):
        write(tmp_path, "broken.py", "def broken(:\n")
        result = lint_paths([tmp_path])
        assert [f.rule_id for f in result.findings] == [PARSE_RULE_ID]
        assert "does not parse" in result.findings[0].message

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        write(tmp_path, "__pycache__/cached.py", VIOLATION)
        write(tmp_path, ".hidden/mod.py", VIOLATION)
        write(tmp_path, "real.py", "x = 1\n")
        result = lint_paths([tmp_path])
        assert result.files == 1
        assert result.findings == []

    def test_findings_sorted_and_stable(self, tmp_path):
        write(tmp_path, "b.py", VIOLATION)
        write(tmp_path, "a.py", VIOLATION)
        result = lint_paths([tmp_path])
        files = [f.file for f in result.findings]
        assert files == sorted(files)


# ---------------------------------------------------------------------------
# Report formats
# ---------------------------------------------------------------------------
class TestReports:
    def test_json_schema(self, tmp_path):
        write(tmp_path, "mod.py", VIOLATION)
        write(tmp_path, "ok.py", SUPPRESSED)
        document = render_json(lint_paths([tmp_path]))
        assert document["version"] == 1
        assert document["files"] == 2
        assert document["summary"]["total"] == 1
        assert document["summary"]["suppressed"] == 1
        assert document["summary"]["by_rule"] == {"REP001": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"file", "line", "rule", "severity", "message"}
        assert finding["rule"] == "REP001"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_text_report_lists_suppressions(self, tmp_path):
        write(tmp_path, "mod.py", SUPPRESSED)
        text = render_text(lint_paths([tmp_path]))
        assert "suppressed (1):" in text
        assert text.endswith("1 file checked: clean")


# ---------------------------------------------------------------------------
# CLI exit codes and report file
# ---------------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write(tmp_path, "mod.py", VIOLATION)
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "mod.py:2" in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert cli_main(["lint", str(tmp_path), "--select", "NOPE"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_json_format_and_report_file(self, tmp_path, capsys):
        write(tmp_path, "mod.py", VIOLATION)
        report = tmp_path / "report.json"
        code = cli_main(
            ["lint", str(tmp_path / "mod.py"), "--format", "json", "--report", str(report)]
        )
        assert code == 1
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(report.read_text(encoding="utf-8"))
        assert stdout_doc == file_doc
        assert file_doc["summary"]["total"] == 1

    def test_select_flag_passes_through(self, tmp_path, capsys):
        write(tmp_path, "mod.py", VIOLATION)
        assert cli_main(["lint", str(tmp_path), "--select", "REP005"]) == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Acceptance: the repo's own sources lint clean.
# ---------------------------------------------------------------------------
def test_repo_src_tree_is_clean():
    result = lint_paths([SRC_ROOT])
    assert result.findings == [], render_text(result)
    # Suppressions are deliberate, reviewed exceptions — pin their count so a
    # new one is a conscious diff, not drive-by noise.
    assert len(result.suppressed) == 5
    assert {f.rule_id for f in result.suppressed} == {"REP002"}
