"""End-to-end integration tests across the statistical estimators.

These tests exercise the full pipeline (distribution -> sample -> universal
estimator -> error) the way the benchmarks and examples do, and additionally
check the paper's headline comparative claims on small instances:

* the universal estimators track the truth across a diverse suite of
  distributions with no tuning or assumptions;
* the universal mean beats the naive bounded-Laplace baseline when the
  assumed range is loose;
* the universal IQR converges much faster than the DL09 baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import estimate_iqr, estimate_mean, estimate_variance
from repro.baselines import BoundedLaplaceMean, DworkLeiIQR
from repro.distributions import standard_suite
from repro.exceptions import MechanismError


@pytest.mark.parametrize("dist", standard_suite(), ids=lambda d: d.name)
class TestUniversalSuiteAcrossDistributions:
    """One pass of all three universal estimators over the standard suite."""

    N = 16_384
    EPSILON = 1.0

    def test_mean_tracks_truth(self, dist):
        errors = []
        for seed in range(5):
            gen = np.random.default_rng(seed)
            data = dist.sample(self.N, gen)
            errors.append(abs(estimate_mean(data, self.EPSILON, 0.1, gen).mean - dist.mean))
        scale = max(dist.std, 1e-3)
        assert np.median(errors) < 0.25 * scale

    def test_variance_tracks_truth(self, dist):
        errors = []
        for seed in range(5):
            gen = np.random.default_rng(seed)
            data = dist.sample(self.N, gen)
            errors.append(
                abs(estimate_variance(data, self.EPSILON, 0.1, gen).variance - dist.variance)
            )
        assert np.median(errors) < 0.5 * dist.variance

    def test_iqr_tracks_truth(self, dist):
        errors = []
        for seed in range(5):
            gen = np.random.default_rng(seed)
            data = dist.sample(self.N, gen)
            errors.append(abs(estimate_iqr(data, self.EPSILON, 0.1, gen).iqr - dist.iqr))
        assert np.median(errors) < 0.3 * dist.iqr


class TestComparativeClaims:
    def test_universal_mean_beats_loose_bounded_baseline(self):
        """With R = 1e6 the bounded-Laplace noise is ~2R/(eps n), which the
        universal estimator avoids by finding the actual data range."""
        from repro.distributions import Gaussian

        dist = Gaussian(5.0, 1.0)
        universal_errors, baseline_errors = [], []
        for seed in range(10):
            gen = np.random.default_rng(seed)
            data = dist.sample(5_000, gen)
            universal_errors.append(abs(estimate_mean(data, 0.2, 0.1, gen).mean - 5.0))
            baseline = BoundedLaplaceMean(radius=1e6)
            baseline_errors.append(abs(baseline.estimate(data, 0.2, gen) - 5.0))
        assert np.median(universal_errors) < np.median(baseline_errors)

    def test_universal_iqr_beats_dl09_at_moderate_n(self):
        from repro.distributions import Gaussian

        dist = Gaussian(0.0, 1.0)
        universal_errors, dl_errors = [], []
        for seed in range(10):
            gen = np.random.default_rng(seed)
            data = dist.sample(8_000, gen)
            universal_errors.append(abs(estimate_iqr(data, 0.5, 0.1, gen).iqr - dist.iqr))
            try:
                dl_errors.append(abs(DworkLeiIQR().estimate(data, 0.5, gen) - dist.iqr))
            except MechanismError:
                dl_errors.append(dist.iqr)  # a refusal is as bad as a total miss
        assert np.median(universal_errors) < np.median(dl_errors)

    def test_mean_estimator_location_scale_equivariance(self):
        """Shifting and scaling the data shifts and scales the estimate accordingly
        (a sanity check that no hidden absolute-scale assumption crept in)."""
        from repro.distributions import Gaussian

        base = Gaussian(0.0, 1.0)
        shift, scale = 1234.5, 50.0
        base_est, moved_est = [], []
        for seed in range(6):
            gen_a = np.random.default_rng(seed)
            gen_b = np.random.default_rng(seed)
            data = base.sample(10_000, gen_a)
            base_est.append(estimate_mean(data, 0.5, 0.1, gen_b).mean)
            gen_c = np.random.default_rng(seed)
            moved_est.append(estimate_mean(shift + scale * data, 0.5, 0.1, gen_c).mean)
        # Compare the error magnitudes after undoing the transformation.
        base_errors = np.abs(np.array(base_est))
        moved_errors = np.abs((np.array(moved_est) - shift) / scale)
        assert np.median(moved_errors) < 10 * np.median(base_errors) + 0.05
