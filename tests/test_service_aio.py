"""Tests for the asyncio front-end, plus HTTP protocol edges on BOTH front-ends.

The protocol-edge tests (malformed ``Content-Length``, oversized bodies,
pipelined keep-alive requests, mid-request disconnects) run against the
threaded and the async server through one parametrised fixture: the two
front-ends promise identical observable behaviour, so they get identical
tests.  The parity test then checks the strongest form of that promise —
bit-for-bit identical answers for the same service seed and query stream.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro.service import (
    AsyncServerThread,
    QueryRequest,
    QueryService,
    Query,
    make_server,
    serve_forever,
)

MAX_BODY = 64_000


def _make_service(seed: int = 13, budget: float = 5.0) -> QueryService:
    service = QueryService(seed=seed)
    service.register("d", np.random.default_rng(1).normal(50.0, 5.0, 10_000), budget)
    return service


@pytest.fixture(params=["threaded", "async"])
def frontend(request):
    """One running server of each flavour, with a uniform handle."""
    service = _make_service()
    if request.param == "threaded":
        server = make_server(
            service, port=0, allow_register=True, quiet=True, max_body=MAX_BODY
        )
        thread = serve_forever(server)
        yield SimpleNamespace(
            kind="threaded",
            url=server.url,
            address=server.server_address[:2],
            service=service,
            disconnects=lambda: server.disconnects,
        )
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    else:
        runner = AsyncServerThread(
            service, port=0, allow_register=True, quiet=True, max_body=MAX_BODY
        ).start()
        yield SimpleNamespace(
            kind="async",
            url=runner.url,
            address=runner.server.server_address,
            service=service,
            disconnects=lambda: runner.server.disconnects,
        )
        runner.stop()


def _call(url: str, path: str, payload=None, method=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _read_responses(sock: socket.socket, count: int):
    """Read ``count`` HTTP responses off one (possibly keep-alive) socket."""
    reader = sock.makefile("rb")
    responses = []
    for _ in range(count):
        status_line = reader.readline()
        if not status_line:
            break
        headers = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = reader.read(length) if length else b""
        responses.append((int(status_line.split()[1]), headers, body))
    return responses


class TestRoutesBothFrontends:
    def test_health_and_query_lifecycle(self, frontend):
        status, doc = _call(frontend.url, "/health")
        assert status == 200 and doc["datasets"] == ["d"]

        status, doc = _call(
            frontend.url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 200 and doc["status"] == "ok"
        assert doc["value"] == pytest.approx(50.0, abs=3.0)

        status, repeat = _call(
            frontend.url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.5}
        )
        assert repeat["cached"] is True
        assert repeat["value"] == doc["value"]
        assert repeat["epsilon_charged"] == 0.0

        status, refused = _call(
            frontend.url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 50.0}
        )
        assert status == 403 and refused["error"]["code"] == "budget_exceeded"

        status, unknown = _call(
            frontend.url, "/query", {"dataset": "ghost", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 404 and unknown["error"]["code"] == "unknown_dataset"

    def test_batch_coalesces_duplicates(self, frontend):
        payload = {
            "queries": [
                {"dataset": "d", "kind": "iqr", "epsilon": 0.4},
                {"dataset": "d", "kind": "iqr", "epsilon": 0.4},
            ]
        }
        status, doc = _call(frontend.url, "/query", payload)
        assert status == 200
        answers = doc["answers"]
        assert [a["status"] for a in answers] == ["ok", "ok"]
        assert answers[1]["coalesced"] is True
        assert answers[1]["value"] == answers[0]["value"]

    def test_registration_roundtrip(self, frontend):
        status, doc = _call(
            frontend.url, "/datasets",
            {"name": "fresh", "values": list(np.linspace(0.0, 99.0, 200)),
             "budget": 2.0},
        )
        assert status == 201 and doc["dataset"]["records"] == 200
        status, doc = _call(
            frontend.url, "/query", {"dataset": "fresh", "kind": "mean", "epsilon": 0.5}
        )
        assert status == 200 and doc["status"] == "ok"

    def test_datasets_reports_frontend_stats(self, frontend):
        _call(frontend.url, "/query", {"dataset": "d", "kind": "mean", "epsilon": 0.1})
        status, doc = _call(frontend.url, "/datasets")
        assert status == 200
        assert doc["frontend"]["frontend"] == frontend.kind
        assert doc["frontend"]["max_body"] == MAX_BODY
        assert "disconnects" in doc["frontend"]

    def test_kinds_catalogue_served(self, frontend):
        from repro.estimators import registered_kinds

        status, doc = _call(frontend.url, "/kinds")
        assert status == 200
        assert sorted(doc["kinds"]) == registered_kinds()
        assert doc["kinds"]["mean"]["min_records"] == 8

    def test_unknown_kind_400_lists_registered_kinds(self, frontend):
        from repro.estimators import registered_kinds

        status, doc = _call(
            frontend.url, "/query", {"dataset": "d", "kind": "mode", "epsilon": 0.5}
        )
        assert status == 400
        assert doc["error"]["code"] == "unknown_kind"
        assert doc["error"]["detail"]["kinds"] == registered_kinds()
        # the legacy top-level alias is gone
        assert "kinds" not in doc

    def test_baseline_kind_roundtrip(self, frontend):
        status, doc = _call(
            frontend.url, "/query",
            {"dataset": "d", "kind": "baseline.dwork_lei_iqr", "epsilon": 0.5},
        )
        # A rejected PTR stability check is a valid (budgeted) outcome.
        assert status == 200 and doc["status"] in ("ok", "failed")
        assert doc["epsilon_charged"] == pytest.approx(0.5)


class TestProtocolEdges:
    def test_garbage_content_length_is_400(self, frontend):
        with socket.create_connection(frontend.address, timeout=5) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n"
            )
            (code, _, body), = _read_responses(sock, 1)
        assert code == 400
        assert b"Content-Length" in body
        assert b"Traceback" not in body

    def test_negative_content_length_is_400(self, frontend):
        with socket.create_connection(frontend.address, timeout=5) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n"
            )
            (code, _, _), = _read_responses(sock, 1)
        assert code == 400

    def test_oversized_body_is_413_without_reading_it(self, frontend):
        declared = MAX_BODY * 16
        with socket.create_connection(frontend.address, timeout=5) as sock:
            sock.sendall(
                f"POST /query HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {declared}\r\n\r\n".encode()
            )
            # The 413 must arrive although the body was never sent: the
            # server refuses by the declared size instead of buffering it.
            (code, _, body), = _read_responses(sock, 1)
        assert code == 413
        doc = json.loads(body)
        assert doc["error"]["code"] == "payload_too_large"

    def test_empty_body_is_400(self, frontend):
        status, doc = _call(frontend.url, "/query", method="POST")
        assert status == 400
        assert "empty" in doc["error"]["message"]

    def test_invalid_json_is_400(self, frontend):
        with socket.create_connection(frontend.address, timeout=5) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 9\r\n\r\n{not json"
            )
            (code, _, _), = _read_responses(sock, 1)
        assert code == 400

    def test_pipelined_keepalive_requests_answered_in_order(self, frontend):
        query = json.dumps({"dataset": "d", "kind": "mean", "epsilon": 0.25}).encode()
        post = (
            f"POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
            f"Content-Length: {len(query)}\r\n\r\n".encode() + query
        )
        health = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection(frontend.address, timeout=10) as sock:
            sock.sendall(health + post + post + health)
            responses = _read_responses(sock, 4)
        assert [code for code, _, _ in responses] == [200, 200, 200, 200]
        first = json.loads(responses[1][2])
        second = json.loads(responses[2][2])
        assert json.loads(responses[0][2])["status"] == "ok"
        assert first["status"] == "ok"
        # The pipelined repeat of the identical query is the cached answer.
        assert second["cached"] is True and second["value"] == first["value"]

    def test_mid_request_disconnect_is_counted_not_crashed(self, frontend):
        before = frontend.disconnects()
        sock = socket.create_connection(frontend.address, timeout=5)
        sock.sendall(
            b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n{\"par"
        )
        sock.close()  # hang up long before the promised 500 bytes
        deadline = time.time() + 5.0
        while time.time() < deadline and frontend.disconnects() <= before:
            time.sleep(0.05)
        assert frontend.disconnects() > before
        # The server survived and still answers.
        status, doc = _call(frontend.url, "/health")
        assert status == 200 and doc["status"] == "ok"


class TestAsyncStalledClients:
    def test_stalled_header_client_is_reclaimed(self):
        """A slowloris-style client (headers never finish) must not pin its
        connection task: the keep-alive timeout reclaims and counts it."""
        service = _make_service()
        with AsyncServerThread(
            service, port=0, quiet=True, keepalive_timeout=0.5
        ) as runner:
            address = runner.server.server_address
            sock = socket.create_connection(address, timeout=5)
            sock.sendall(b"POST /query HTTP/1.1\r\nHost: x\r\n")  # ...and stall
            deadline = time.time() + 5.0
            while time.time() < deadline and runner.server.disconnects < 1:
                time.sleep(0.05)
            assert runner.server.disconnects >= 1
            # The server dropped the stalled connection...
            assert sock.recv(4096) == b""
            sock.close()
            # ...and keeps serving everyone else.
            status, doc = _call(runner.url, "/health")
            assert status == 200 and doc["status"] == "ok"


class TestFrontendParity:
    def test_both_frontends_answer_bit_for_bit_identically(self):
        """Same seed + same query stream → byte-identical values and statuses."""
        stream = [
            {"dataset": "d", "kind": "mean", "epsilon": 0.4},
            {"dataset": "d", "kind": "variance", "epsilon": 0.3},
            {"dataset": "d", "kind": "quantile", "epsilon": 0.3,
             "params": {"levels": [0.5, 0.9]}},
            {"dataset": "d", "kind": "mean", "epsilon": 0.4},  # cache hit
            {"dataset": "d", "kind": "iqr", "epsilon": 0.5},
            {"dataset": "d", "kind": "mean", "epsilon": 50.0},  # refusal
            {"dataset": "d", "kind": "iqr", "epsilon": 0.5},  # cache hit
        ]

        def drive(url):
            outcomes = []
            for query in stream:
                status, doc = _call(url, "/query", query)
                outcomes.append(
                    (status, doc["status"], doc.get("value"), doc.get("cached"))
                )
            return outcomes

        threaded_service = _make_service()
        server = make_server(threaded_service, port=0, quiet=True)
        thread = serve_forever(server)
        try:
            threaded_outcomes = drive(server.url)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        async_service = _make_service()
        with AsyncServerThread(async_service, port=0, quiet=True) as runner:
            async_outcomes = drive(runner.url)

        assert threaded_outcomes == async_outcomes


class TestPeekFastPath:
    """QueryService.peek is the async loop's fast path: exact, zero side effects."""

    def test_peek_misses_then_hits_after_release(self):
        service = _make_service()
        request = QueryRequest("d", Query("mean", 0.5))
        assert service.peek(request) is None  # cold: needs an estimator run
        released = service.submit(request)
        peeked = service.peek(request)
        assert peeked is not None and peeked.cached
        assert peeked.value == released.value
        assert peeked.epsilon_charged == 0.0

    def test_peek_refuses_over_budget_without_touching_ledger(self):
        service = _make_service(budget=1.0)
        manager = service.registry.get("d").budget
        spends_before = len(manager.ledger)
        answer = service.peek(QueryRequest("d", Query("mean", 50.0)))
        assert answer is not None and answer.status == "refused"
        assert answer.error == "budget_exceeded"
        assert len(manager.ledger) == spends_before
        assert manager.reserved == 0.0

    def test_peek_defers_to_inflight_coalescing_over_refusal(self):
        """An identical in-flight query must coalesce, never peek-refuse.

        With the whole budget held by an in-flight identical query, a
        point-in-time budget probe would refuse — but submit would coalesce
        at zero marginal epsilon.  peek must return None (dispatch to
        submit) so both front-ends answer identically.
        """
        from repro.service.executor import _InFlight

        service = _make_service(budget=1.0)
        request = QueryRequest("d", Query("mean", 1.0))
        key = request.query.canonical_key("d")
        reservation = service.registry.get("d").budget.reserve(1.0)
        try:
            with service._coalesce_lock:
                service._inflight[key] = _InFlight()
            assert service.peek(request) is None  # would refuse if probed
            with service._coalesce_lock:
                service._inflight.pop(key, None)
            # Without the in-flight twin the same state is a sure refusal.
            assert service.peek(request).status == "refused"
        finally:
            with service._coalesce_lock:
                service._inflight.pop(key, None)
            service.registry.get("d").budget.cancel(reservation)

    def test_peek_keeps_cache_counters_exact(self):
        """One request = one counted lookup, across the peek + submit split."""
        service = _make_service()
        request = QueryRequest("d", Query("mean", 0.5))
        assert service.peek(request) is None  # probe: must not count a miss
        service.submit(request)  # counts the one real miss
        stats = service.cache.stats
        assert (stats.hits, stats.misses) == (0, 1)
        answer = service.peek(request)  # loop-served hit: counts exactly one
        assert answer.cached
        stats = service.cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        # A probe-answered refusal counts the same one miss the submission
        # path would — identical streams give identical counters.
        refused = service.peek(QueryRequest("d", Query("mean", 50.0)))
        assert refused.status == "refused"
        assert (service.cache.stats.hits, service.cache.stats.misses) == (1, 2)

    def test_refusal_miss_counting_matches_submit_path(self):
        """The same refused stream leaves identical cache counters either way."""
        peek_service = _make_service()
        submit_service = _make_service()
        request = QueryRequest("d", Query("mean", 50.0))
        assert peek_service.peek(request).status == "refused"
        assert submit_service.submit(request).status == "refused"
        assert peek_service.cache.stats == submit_service.cache.stats

    def test_peek_reports_invalid_requests(self):
        service = _make_service()
        answer = service.peek(QueryRequest("ghost", Query("mean", 0.5)))
        assert answer is not None and answer.error == "unknown_dataset"
        answer = service.peek(QueryRequest("d", Query("multivariate_mean", 0.5)))
        assert answer is not None and answer.status == "invalid"
