"""Tests for the Dwork-Lei propose-test-release IQR baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DworkLeiIQR
from repro.distributions import Gaussian
from repro.exceptions import InsufficientDataError, MechanismError, PrivacyParameterError


class TestDworkLeiIQR:
    def test_metadata(self):
        est = DworkLeiIQR()
        assert est.privacy == "approx"
        assert est.assumptions == frozenset()
        assert est.target == "iqr"

    def test_invalid_delta_rejected(self):
        with pytest.raises(PrivacyParameterError):
            DworkLeiIQR(delta=0.0)

    def test_accuracy_on_large_gaussian_sample(self, rng):
        dist = Gaussian(0.0, 2.0)
        data = dist.sample(50_000, rng)
        est = DworkLeiIQR(delta=1e-6).estimate(data, 1.0, rng)
        assert est == pytest.approx(dist.iqr, rel=0.5)

    def test_small_sample_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            DworkLeiIQR().estimate([1.0, 2.0, 3.0], 1.0, rng)

    def test_degenerate_data_fails_ptr(self, rng):
        data = np.zeros(1000)
        with pytest.raises(MechanismError):
            DworkLeiIQR().estimate(data, 1.0, rng)

    def test_unstable_instance_fails_ptr_often(self):
        """A dataset whose IQR sits on a dyadic boundary and flips with few changes
        should frequently fail the stability test at small epsilon."""
        data = np.concatenate([np.zeros(100), np.full(100, 1.0)])
        failures = 0
        for seed in range(20):
            try:
                DworkLeiIQR(delta=1e-10).estimate(data, 0.1, np.random.default_rng(seed))
            except MechanismError:
                failures += 1
        assert failures >= 10

    def test_convergence_is_slow_in_n(self):
        """The privacy noise scale shrinks only like 1/log(n), so going from
        n=2,000 to n=64,000 barely helps — the behaviour the paper contrasts
        against its own 1/(eps n) rate (E11 measures this quantitatively)."""
        dist = Gaussian(0.0, 1.0)
        errors = {}
        for n in (2_000, 64_000):
            per_trial = []
            for seed in range(15):
                gen = np.random.default_rng(seed)
                data = dist.sample(n, gen)
                try:
                    est = DworkLeiIQR().estimate(data, 0.3, gen)
                    per_trial.append(abs(est - dist.iqr))
                except MechanismError:
                    continue
            errors[n] = np.median(per_trial)
        # Improvement should be visible but far less than the 32x sample increase.
        assert errors[64_000] < errors[2_000] * 1.5
        assert errors[64_000] > errors[2_000] / 32.0
