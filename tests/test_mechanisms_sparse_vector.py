"""Tests for the Sparse Vector Technique (Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.exceptions import MechanismError
from repro.mechanisms import SVTResult, sparse_vector


def constant_queries(values):
    """Turn a list of numbers into a lazy query stream."""
    return [lambda v=v: v for v in values]


class TestSparseVectorBasics:
    def test_returns_svt_result(self, rng):
        result = sparse_vector(0.0, 5.0, constant_queries([100.0]), rng)
        assert isinstance(result, SVTResult)
        assert result.index == 1
        assert result.queries_evaluated == 1

    def test_stops_at_clearly_above_threshold(self, rng):
        # Queries far below the threshold, then one far above.
        queries = constant_queries([-1000.0] * 5 + [1000.0])
        result = sparse_vector(0.0, 2.0, queries, rng)
        assert result.index == 6

    def test_does_not_stop_early_on_low_queries(self, rng):
        # Lemma 2.5: queries well below the threshold are passed over w.h.p.
        margin = (8.0 / 2.0) * math.log(2 * 10 / 0.01)
        queries = constant_queries([-margin] * 10 + [1e6])
        stops = [
            sparse_vector(0.0, 2.0, queries, np.random.default_rng(seed)).index
            for seed in range(50)
        ]
        assert np.mean([s == 11 for s in stops]) > 0.9

    def test_stops_in_time_lemma_2_6(self, rng):
        # Lemma 2.6: a query exceeding T + (6/eps) log(2/beta) stops SVT by then w.h.p.
        epsilon, beta = 1.0, 0.05
        margin = (6.0 / epsilon) * math.log(2.0 / beta)
        queries = constant_queries([0.0] * 3 + [margin + 1.0] + [margin + 1.0] * 5)
        stops = [
            sparse_vector(0.0, epsilon, queries, np.random.default_rng(seed)).index
            for seed in range(50)
        ]
        assert np.mean([s <= 4 for s in stops]) > 0.9

    def test_lazy_evaluation_stops_calling_queries(self, rng):
        calls = []

        def make(i, value):
            def query():
                calls.append(i)
                return value

            return query

        queries = [make(0, 1e6)] + [make(i, 0.0) for i in range(1, 100)]
        sparse_vector(0.0, 5.0, queries, rng)
        assert calls == [0]

    def test_infinite_stream_supported(self, rng):
        def stream():
            i = 0
            while True:
                value = 1e6 if i >= 4 else -1e6
                yield lambda v=value: v
                i += 1

        result = sparse_vector(0.0, 5.0, stream(), rng)
        assert result.index == 5


class TestSparseVectorValidation:
    def test_max_queries_exceeded_raises(self, rng):
        queries = constant_queries([-1e9] * 20)
        with pytest.raises(MechanismError):
            sparse_vector(0.0, 1.0, queries, rng, max_queries=10)

    def test_exhausted_stream_raises(self, rng):
        with pytest.raises(MechanismError):
            sparse_vector(0.0, 1.0, constant_queries([-1e9, -1e9]), rng)

    def test_non_finite_threshold_rejected(self, rng):
        with pytest.raises(MechanismError):
            sparse_vector(float("inf"), 1.0, constant_queries([1.0]), rng)

    def test_invalid_max_queries_rejected(self, rng):
        with pytest.raises(ValueError):
            sparse_vector(0.0, 1.0, constant_queries([1.0]), rng, max_queries=0)

    def test_ledger_charged_once(self, rng):
        ledger = PrivacyLedger()
        sparse_vector(0.0, 0.75, constant_queries([1e6]), rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.75)
        assert len(ledger) == 1

    def test_noisy_threshold_reported(self, rng):
        result = sparse_vector(10.0, 5.0, constant_queries([1e6]), rng)
        assert abs(result.noisy_threshold - 10.0) < 20.0
