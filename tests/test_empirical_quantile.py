"""Tests for ``InfiniteDomainQuantile`` (Algorithm 6, Theorems 3.5/3.9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.analysis.theory import quantile_rank_error_bound
from repro.bench.workloads import uniform_integer_dataset
from repro.empirical import estimate_empirical_quantile
from repro.exceptions import DomainError, InsufficientDataError


class TestEmpiricalQuantileAccuracy:
    def test_median_rank_error_within_bound(self, rng):
        data = uniform_integer_dataset(4000, width=2000, rng=rng)
        result = estimate_empirical_quantile(data, tau=2000, epsilon=1.0, beta=0.1, rng=rng)
        bound = 20.0 * quantile_rank_error_bound(2000.0, 1.0, 0.1)
        assert result.rank_error <= bound

    def test_various_taus_stay_reasonable(self, rng):
        data = uniform_integer_dataset(3000, width=3000, rng=rng)
        for tau in (300, 750, 1500, 2250, 2700):
            result = estimate_empirical_quantile(data, tau, epsilon=2.0, beta=0.1, rng=rng)
            assert result.rank_error <= 600

    def test_rank_error_shrinks_with_epsilon(self):
        errors = {}
        for epsilon in (0.25, 4.0):
            per_trial = []
            for seed in range(10):
                gen = np.random.default_rng(seed)
                data = uniform_integer_dataset(3000, width=3000, rng=gen)
                res = estimate_empirical_quantile(data, 1500, epsilon, 0.1, gen)
                per_trial.append(res.rank_error)
            errors[epsilon] = np.median(per_trial)
        assert errors[4.0] <= errors[0.25]

    def test_value_error_reflects_bucket_size(self, rng):
        data = rng.uniform(0.0, 1.0, size=4000)
        result = estimate_empirical_quantile(
            data, tau=2000, epsilon=2.0, beta=0.1, rng=rng, bucket_size=0.001
        )
        assert abs(result.value - result.true_value) < 0.2

    def test_constant_data(self, rng):
        data = np.full(1000, 7.0)
        result = estimate_empirical_quantile(data, 500, 1.0, 0.2, rng)
        assert abs(result.value - 7.0) <= 5.0


class TestEmpiricalQuantileBookkeeping:
    def test_true_value_diagnostic(self, rng):
        data = uniform_integer_dataset(1000, width=100, rng=rng)
        result = estimate_empirical_quantile(data, 250, 1.0, 0.1, rng)
        assert result.true_value == pytest.approx(float(np.sort(data)[249]))

    def test_tau_out_of_range_rejected(self, rng):
        data = uniform_integer_dataset(100, width=10, rng=rng)
        with pytest.raises(DomainError):
            estimate_empirical_quantile(data, 0, 1.0, 0.1, rng)
        with pytest.raises(DomainError):
            estimate_empirical_quantile(data, 101, 1.0, 0.1, rng)

    def test_empty_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_empirical_quantile([], 1, 1.0, 0.1, rng)

    def test_ledger_total_equals_epsilon(self, rng):
        ledger = PrivacyLedger()
        data = uniform_integer_dataset(1000, width=200, rng=rng)
        estimate_empirical_quantile(data, 500, 0.6, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.6, rel=1e-6)

    def test_result_value_matches_grid(self, rng):
        data = uniform_integer_dataset(1000, width=100, rng=rng)
        result = estimate_empirical_quantile(data, 500, 1.0, 0.1, rng)
        # With bucket size 1 the released value must be an integer.
        assert result.value == pytest.approx(round(result.value))
