"""Tests for the universal variance estimator ``EstimateVariance`` (Algorithm 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.core import estimate_variance
from repro.distributions import Gaussian, LaplaceDistribution, StudentT, Uniform
from repro.exceptions import InsufficientDataError, PrivacyParameterError


def _median_relative_error(distribution, n, epsilon, trials=8, **kwargs):
    errors = []
    truth = distribution.variance
    for seed in range(trials):
        gen = np.random.default_rng(seed)
        data = distribution.sample(n, gen)
        result = estimate_variance(data, epsilon, 0.1, gen, **kwargs)
        errors.append(abs(result.variance - truth) / truth)
    return float(np.median(errors))


class TestUniversalVarianceAccuracy:
    def test_standard_gaussian(self):
        assert _median_relative_error(Gaussian(0.0, 1.0), 20_000, 0.5) < 0.1

    def test_gaussian_with_large_mean_is_location_invariant(self):
        """Variance estimation must not depend on the (unknown, huge) mean."""
        assert _median_relative_error(Gaussian(1.0e6, 2.0), 20_000, 0.5) < 0.1

    def test_gaussian_large_scale(self):
        assert _median_relative_error(Gaussian(0.0, 300.0), 20_000, 0.5) < 0.15

    def test_gaussian_tiny_scale(self):
        assert _median_relative_error(Gaussian(0.0, 1e-3), 20_000, 0.5) < 0.15

    def test_uniform(self):
        assert _median_relative_error(Uniform(-5.0, 5.0), 20_000, 0.5) < 0.15

    def test_laplace(self):
        assert _median_relative_error(LaplaceDistribution(0.0, 2.0), 20_000, 0.5) < 0.2

    def test_student_t_with_finite_fourth_moment(self):
        assert _median_relative_error(StudentT(df=6.0), 30_000, 0.5, trials=6) < 0.35

    def test_error_decreases_with_n(self):
        dist = Gaussian(0.0, 2.0)
        assert _median_relative_error(dist, 40_000, 0.3) < _median_relative_error(
            dist, 2_000, 0.3
        )


class TestUniversalVarianceMechanics:
    def test_result_fields(self, rng):
        data = Gaussian(0.0, 2.0).sample(8000, rng)
        result = estimate_variance(data, 0.5, 0.1, rng)
        assert result.pair_count == 4000
        assert result.sample_variance == pytest.approx(float(np.var(data)))
        assert result.radius_used.radius >= 0.0
        assert result.noise_scale >= 0.0

    def test_estimate_is_nonnegative_typically(self, rng):
        data = Gaussian(0.0, 1.0).sample(20_000, rng)
        result = estimate_variance(data, 1.0, 0.1, rng)
        assert result.variance > 0.0

    def test_given_bucket_size_skips_iqr_search(self, rng):
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        result = estimate_variance(data, 0.5, 0.1, rng, bucket_size=0.01)
        assert result.iqr_lower_bound.branch == "given"

    def test_subsample_size_override(self, rng):
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        result = estimate_variance(data, 0.5, 0.1, rng, subsample_size=500)
        assert result.subsample_size == 500

    def test_ledger_records_spends(self, rng):
        ledger = PrivacyLedger()
        data = Gaussian(0.0, 1.0).sample(8000, rng)
        estimate_variance(data, 0.4, 0.1, rng, ledger=ledger)
        # IQR lower bound (2 SVT) + radius + noise.
        assert len(ledger) == 4
        # Algorithm 9's split spends at most 9 eps / 8 in total.
        assert ledger.total_epsilon <= 0.4 * 9.0 / 8.0 + 1e-9


class TestUniversalVarianceValidation:
    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_variance(np.arange(8.0), 1.0, 0.1, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_variance(np.arange(100.0), -0.5, 0.1, rng)
