"""Tests for ``EstimateIQRLowerBound`` (Algorithm 7, Theorem 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.core import estimate_iqr_lower_bound
from repro.distributions import Gaussian, SpikeMixture, Uniform
from repro.exceptions import InsufficientDataError, PrivacyParameterError


def _success_rate(distribution, n, epsilon, trials=12):
    """Fraction of trials where the output lands in [phi(1/16)/4, IQR]."""
    phi_over_4 = distribution.phi(1.0 / 16.0) / 4.0
    iqr = distribution.iqr
    hits = 0
    for seed in range(trials):
        gen = np.random.default_rng(seed)
        data = distribution.sample(n, gen)
        result = estimate_iqr_lower_bound(data, epsilon, 0.1, gen)
        if phi_over_4 * 0.99 <= result.value <= iqr * 1.01:
            hits += 1
    return hits / trials


class TestIQRLowerBoundGuarantee:
    def test_gaussian_unit_scale(self):
        assert _success_rate(Gaussian(0.0, 1.0), n=8000, epsilon=1.0) >= 0.8

    def test_gaussian_large_scale(self):
        assert _success_rate(Gaussian(50.0, 200.0), n=8000, epsilon=1.0) >= 0.8

    def test_gaussian_small_scale(self):
        assert _success_rate(Gaussian(0.0, 1e-3), n=8000, epsilon=1.0) >= 0.8

    def test_uniform(self):
        assert _success_rate(Uniform(-10.0, 10.0), n=8000, epsilon=1.0) >= 0.8

    def test_spike_mixture_still_lower_bounds_iqr(self, rng):
        """For an ill-behaved P the bound can be tiny but must stay below the IQR."""
        dist = SpikeMixture(bulk_sigma=1.0, spike_width=1e-5, spike_mass=0.3)
        data = dist.sample(8000, rng)
        result = estimate_iqr_lower_bound(data, 1.0, 0.1, rng)
        assert result.value <= dist.iqr * 1.01


class TestIQRLowerBoundMechanics:
    def test_result_is_power_of_two(self, rng):
        data = Gaussian(0.0, 3.0).sample(4000, rng)
        result = estimate_iqr_lower_bound(data, 1.0, 0.1, rng)
        log2_value = np.log2(result.value)
        assert log2_value == pytest.approx(round(log2_value))

    def test_branch_matches_scale(self):
        # Large-scale data should resolve on the upward sweep, tiny-scale data
        # on the downward sweep.
        rng = np.random.default_rng(0)
        large = estimate_iqr_lower_bound(Gaussian(0.0, 500.0).sample(6000, rng), 1.0, 0.1, rng)
        small = estimate_iqr_lower_bound(Gaussian(0.0, 1e-4).sample(6000, rng), 1.0, 0.1, rng)
        assert large.value > small.value
        assert small.value < 1.0

    def test_pair_count(self, rng):
        data = Gaussian().sample(1001, rng)
        result = estimate_iqr_lower_bound(data, 1.0, 0.1, rng)
        assert result.pair_count == 500

    def test_ledger_records_both_svt_instances(self, rng):
        ledger = PrivacyLedger()
        data = Gaussian().sample(2000, rng)
        estimate_iqr_lower_bound(data, 0.4, 0.1, rng, ledger=ledger)
        assert len(ledger) == 2
        assert ledger.total_epsilon == pytest.approx(0.4, rel=1e-6)

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_iqr_lower_bound([1.0, 2.0], 1.0, 0.1, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_iqr_lower_bound(np.arange(100.0), -1.0, 0.1, rng)

    def test_deterministic_given_seed(self):
        data = Gaussian(0.0, 2.0).sample(4000, np.random.default_rng(7))
        a = estimate_iqr_lower_bound(data, 1.0, 0.1, np.random.default_rng(11))
        b = estimate_iqr_lower_bound(data, 1.0, 0.1, np.random.default_rng(11))
        assert a.value == b.value
