"""Registry conformance suite: every registered spec honours the service contract.

Three families of checks:

* **Pre-refactor parity** — the five built-in kinds must reproduce the
  recorded pre-registry :class:`QueryService` answers (cache keys *and*
  values) bit for bit; the registry is a refactor, not a behaviour change.
* **Conformance per spec** — for *every* registered kind (including each
  ``baseline.*`` adapter): the reservation is an upper bound on the
  committed ledger spend, a dataset below ``min_records`` is refused before
  any spend, and answers are bit-for-bit identical for ``workers=1`` and
  ``workers=N``.
* **Sketch-path conformance** — for every registered kind, answers are
  bit-for-bit identical whether the dataset carries registration-time
  sketches (``sketches=True``, the default) or is the bare pre-refactor
  array, serially and across a 4-worker pool, and whether same-kind queries
  execute grouped (one ``submit_many`` cell) or as singletons.
* **Registry mechanics** — registration, duplicate rejection, unregistration
  and the unknown-kind error carrying the authoritative kind list.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine import EnginePool
from repro.estimators import (
    EstimatorSpec,
    ParamField,
    UnknownKindError,
    get_estimator,
    iter_estimators,
    register_estimator,
    registered_kinds,
    unregister,
)
from repro.exceptions import DomainError
from repro.service import Query, QueryRequest, QueryService

PARITY_FIXTURE = Path(__file__).parent / "data" / "service_parity.json"

#: One spare worker pool shared by the parity checks of every kind.
POOL_WORKERS = 2


def _dataset_for(spec: EstimatorSpec, records: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if spec.dimension == "multivariate":
        return rng.normal(5.0, 2.0, size=(records, 3))
    return rng.normal(250.0, 40.0, size=records)


def _query_for(spec: EstimatorSpec, epsilon: float = 0.5) -> Query:
    return Query(
        kind=spec.name, epsilon=epsilon, params=tuple(spec.example_params().items())
    )


@pytest.fixture(scope="module", params=[spec.name for spec in iter_estimators()])
def spec(request) -> EstimatorSpec:
    return get_estimator(request.param)


@pytest.fixture(scope="module")
def pool():
    with EnginePool(POOL_WORKERS) as pool:
        yield pool


@pytest.fixture(scope="module")
def pool4():
    """Wider pool for the sketch-parity sweep (the workers=4 pin)."""
    with EnginePool(4) as pool:
        yield pool


class TestPreRefactorParity:
    def test_recorded_answers_reproduced_bit_for_bit(self):
        doc = json.loads(PARITY_FIXTURE.read_text())
        seed = doc["seed"]
        rng = np.random.default_rng(seed)
        uni = rng.normal(250.0, 40.0, size=4096)
        multi = rng.normal(0.0, 1.0, size=(4096, 3))
        service = QueryService(seed=seed)
        service.register("uni", uni, 100.0)
        service.register("multi", multi, 100.0)
        for record in doc["answers"]:
            query = Query.from_json(record["query"])
            answer = service.submit(
                QueryRequest(dataset=record["dataset"], query=query)
            )
            assert answer.ok, answer
            assert answer.key == record["key"]
            value = (
                list(answer.value)
                if isinstance(answer.value, tuple)
                else answer.value
            )
            assert value == record["value"]
            assert answer.epsilon_charged == record["epsilon_charged"]


class TestSpecConformance:
    def test_reservation_covers_committed_spend(self, spec):
        """reserve >= commit: the factor is an exact upper bound per kind."""
        service = QueryService(seed=11)
        service.register("d", _dataset_for(spec, 512), 100.0)
        query = _query_for(spec, epsilon=0.8)
        answer = service.submit(QueryRequest(dataset="d", query=query))
        # A 'failed' outcome (e.g. a rejected PTR check) is a valid budgeted
        # release; its partial spend must still respect the reservation.
        assert answer.status in ("ok", "failed"), answer
        reserve = 0.8 * spec.reservation
        assert answer.epsilon_charged <= reserve + 1e-12
        budget = service.registry.get("d").budget
        assert budget.spent == answer.epsilon_charged
        assert budget.reserved == 0.0

    def test_min_records_refused_before_any_spend(self, spec):
        service = QueryService(seed=11)
        service.register("tiny", _dataset_for(spec, spec.min_records - 1), 100.0)
        answer = service.submit(
            QueryRequest(dataset="tiny", query=_query_for(spec))
        )
        assert answer.status == "invalid"
        assert answer.error == "insufficient_data"
        budget = service.registry.get("tiny").budget
        assert budget.spent == 0.0
        assert budget.reserved == 0.0
        assert len(budget.ledger) == 0

    def test_worker_parity(self, spec, pool):
        """workers=1 and workers=N answers are bit-for-bit identical."""
        data = _dataset_for(spec, 512)
        requests = [
            QueryRequest(dataset="d", query=_query_for(spec, epsilon=eps))
            for eps in (0.3, 0.5, 0.7)
        ]

        def answers(use_pool):
            service = QueryService(seed=99, pool=pool if use_pool else None)
            service.register("d", data, 100.0, share=use_pool)
            try:
                return [
                    (a.status, a.value, a.epsilon_charged)
                    for a in service.submit_many(requests)
                ]
            finally:
                service.registry.close()

        assert answers(False) == answers(True)


class TestSketchPathConformance:
    """The DatasetView/sketch refactor is invisible in answers.

    ``sketches=False`` registration is the exact pre-refactor execution
    path, so equality here pins the whole sketch machinery — registration-
    time materialisation, estimator fast paths, grouped execution, and the
    shared-memory sketch hand-off — to bit-for-bit behavioural neutrality.
    """

    def _answers(self, spec, data, *, sketches, pool=None, share=False):
        service = QueryService(seed=424, pool=pool)
        service.register("d", data, 100.0, sketches=sketches, share=share)
        requests = [
            QueryRequest(dataset="d", query=_query_for(spec, epsilon=eps))
            for eps in (0.3, 0.5, 0.7)
        ]
        try:
            return [
                (a.status, a.value, a.epsilon_charged, a.key, a.message)
                for a in service.submit_many(requests)
            ]
        finally:
            service.registry.close()

    def test_sketch_parity_every_kind_serial_and_pooled(self, spec, pool4):
        """sketches on == sketches off, at workers=1 and workers=4."""
        data = _dataset_for(spec, 512)
        legacy = self._answers(spec, data, sketches=False)
        assert self._answers(spec, data, sketches=True) == legacy
        assert (
            self._answers(spec, data, sketches=True, pool=pool4, share=True)
            == legacy
        )

    def test_declared_sketches_materialised_at_registration(self):
        service = QueryService(seed=1)
        dataset = service.register(
            "d", np.random.default_rng(0).normal(size=256), 10.0
        )
        view = dataset.view
        assert view is not None
        for kind in ("iqr", "quantile", "baseline.dwork_lei_iqr"):
            for need in get_estimator(kind).needs:
                assert view.has(need), (kind, need)
        np.testing.assert_array_equal(view.sorted_values, np.sort(view.raw))
        doc = dataset.to_json()
        assert doc["sketches"]["total_nbytes"] == view.sketch_nbytes() > 0
        assert doc["sketches"]["names"] == list(view.sketch_footprint())

    def test_grouped_matches_singleton_submission(self):
        """submit_many groups same-kind queries; answers must not change."""
        data = _dataset_for(get_estimator("iqr"), 512)
        requests = [
            QueryRequest(dataset="d", query=Query(kind=kind, epsilon=eps))
            for kind in ("iqr", "mean", "baseline.dwork_lei_iqr")
            for eps in (0.3, 0.5, 0.7)
        ]

        def answers(batched):
            service = QueryService(seed=77)
            service.register("d", data, 100.0)
            produced = (
                service.submit_many(requests)
                if batched
                else [service.submit(r) for r in requests]
            )
            return [(a.status, a.value, a.epsilon_charged) for a in produced]

        assert answers(True) == answers(False)

    def test_batchable_false_kind_runs_per_query(self):
        """Kinds opting out of grouping still answer identically in a batch."""

        @register_estimator(
            "test.unbatchable", reservation=1.0, min_records=4, batchable=False
        )
        def run_unbatchable(data, generator, ledger, *, epsilon, beta):
            ledger.charge("test.unbatchable", epsilon)
            return float(np.mean(np.asarray(data)) + generator.normal(0.0, 1.0))

        try:
            assert not get_estimator("test.unbatchable").batchable
            requests = [
                QueryRequest(
                    dataset="d", query=Query(kind="test.unbatchable", epsilon=eps)
                )
                for eps in (0.3, 0.5, 0.7)
            ]

            def answers(batched):
                service = QueryService(seed=31)
                service.register("d", np.arange(64.0), 100.0)
                produced = (
                    service.submit_many(requests)
                    if batched
                    else [service.submit(r) for r in requests]
                )
                return [(a.status, a.value, a.epsilon_charged) for a in produced]

            assert answers(True) == answers(False)
        finally:
            unregister("test.unbatchable")


class TestRegistryMechanics:
    def test_unknown_kind_error_carries_kind_list(self):
        with pytest.raises(UnknownKindError) as excinfo:
            get_estimator("nope")
        assert list(excinfo.value.kinds) == registered_kinds()

    def test_register_and_unregister_custom_kind(self):
        @register_estimator(
            "test.custom",
            reservation=2.0,
            min_records=4,
            params=(ParamField("shift", default=0.0),),
        )
        def run_custom(data, generator, ledger, *, epsilon, beta, shift):
            ledger.charge("test.custom", epsilon)
            return float(np.mean(data) + shift)

        try:
            assert "test.custom" in registered_kinds()
            spec = get_estimator("test.custom")
            assert spec.reservation == 2.0
            # Immediately servable end-to-end, no service changes needed.
            service = QueryService(seed=5)
            service.register("d", np.arange(16.0), 10.0)
            answer = service.query("d", "test.custom", 0.5, params={"shift": 1.0})
            assert answer.ok and answer.value == pytest.approx(8.5)
            assert answer.epsilon_charged == 0.5
        finally:
            unregister("test.custom")
        assert "test.custom" not in registered_kinds()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DomainError):

            @register_estimator("mean")
            def clash(data, generator, ledger, *, epsilon, beta):  # pragma: no cover
                return 0.0

    def test_every_spec_has_valid_examples(self):
        for spec in iter_estimators():
            params = spec.example_params()
            for field in spec.params:
                if field.required:
                    assert field.name in params, (spec.name, field.name)

    def test_at_least_four_baseline_kinds_registered(self):
        baselines = [k for k in registered_kinds() if k.startswith("baseline.")]
        assert len(baselines) >= 4, baselines

    def test_scalar_param_named_levels_rejected(self):
        # 'levels' is the wire-compat alias; a scalar param under that name
        # would crash the Query mirror and vanish from the cache key.
        with pytest.raises(DomainError, match="levels"):
            EstimatorSpec(
                name="test.weird",
                runner=lambda *a, **k: 0.0,
                params=(ParamField("levels", type="float", default=0.3),),
            )

    def test_dwork_lei_delta_capped_per_release(self):
        # The budget ledger tracks epsilon only; per-release deltas compose
        # additively, so the serving policy caps delta at 1e-4.
        from repro.service import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            Query(
                kind="baseline.dwork_lei_iqr",
                epsilon=0.5,
                params=(("delta", 0.5),),
            )
        assert dict(
            Query(kind="baseline.dwork_lei_iqr", epsilon=0.5).params
        )["delta"] == pytest.approx(1e-6)
        # The documented cap is inclusive: delta = 1e-4 exactly is accepted.
        at_cap = Query(
            kind="baseline.dwork_lei_iqr", epsilon=0.5, params=(("delta", 1e-4),)
        )
        assert dict(at_cap.params)["delta"] == pytest.approx(1e-4)

    def test_kind_registered_after_pool_fork_fails_cleanly(self, pool):
        """Runtime registrations are invisible to already-forked workers:
        the pooled path must answer 'failed' with zero spend, not crash."""
        service = QueryService(seed=5, pool=pool)
        service.register("d", np.arange(64.0), 10.0)
        # Force the pool to fork its workers before the kind exists.
        assert service.query("d", "mean", 0.5).ok

        @register_estimator("test.late", min_records=4)
        def run_late(data, generator, ledger, *, epsilon, beta):
            ledger.charge("test.late", epsilon)
            return float(np.mean(data))

        try:
            answer = service.query("d", "test.late", 0.5)
            assert answer.status == "failed"
            assert "worker" in (answer.message or "")
            budget = service.registry.get("d").budget
            assert budget.reserved == 0.0
            # Nothing ran in the worker: the late kind committed no spend.
            assert answer.epsilon_charged == 0.0
        finally:
            unregister("test.late")


class TestAnalysisBridge:
    def test_estimator_fn_drives_statistical_grid(self):
        """Any registered kind drops into the analysis grid drivers."""
        from repro.analysis import StatisticalCell, run_statistical_grid
        from repro.distributions import Gaussian

        distribution = Gaussian(mu=5.0, sigma=2.0)
        cells = [
            StatisticalCell(
                estimator=get_estimator(kind).estimator_fn(
                    1.0, **get_estimator(kind).example_params()
                ),
                distribution=distribution,
                parameter="mean",
                n=512,
                trials=4,
                rng=17,
                key=kind,
            )
            for kind in ("mean", "baseline.bounded_laplace_mean")
        ]
        results = run_statistical_grid(cells)
        assert len(results) == 2
        for result in results:
            assert result.estimates.size == 4
            assert np.all(np.isfinite(result.estimates))

    def test_estimator_fn_validates_params_up_front(self):
        spec = get_estimator("baseline.bounded_laplace_mean")
        with pytest.raises(DomainError):
            spec.estimator_fn(1.0)  # missing required radius


class TestBaselineAccounting:
    def test_refusal_leaves_ledger_unchanged(self):
        service = QueryService(seed=3)
        service.register("d", np.random.default_rng(0).normal(0, 1, 256), 0.4)
        spec = get_estimator("baseline.bounded_laplace_mean")
        refused = service.submit(
            QueryRequest(dataset="d", query=_query_for(spec, epsilon=1.0))
        )
        assert refused.status == "refused"
        budget = service.registry.get("d").budget
        assert budget.spent == 0.0 and budget.reserved == 0.0
        assert len(budget.ledger) == 0

    def test_full_epsilon_committed_on_release(self):
        service = QueryService(seed=3)
        service.register("d", np.random.default_rng(0).normal(0, 1, 256), 5.0)
        for kind in (
            "baseline.bounded_laplace_mean",
            "baseline.karwa_vadhan_mean",
            "baseline.coinpress_mean",
            "baseline.ksu_heavy_tailed_mean",
        ):
            answer = service.submit(
                QueryRequest(dataset="d", query=_query_for(get_estimator(kind), 0.25))
            )
            assert answer.ok, answer
            assert answer.epsilon_charged == 0.25

    def test_cache_hit_zero_spend_for_baseline_kind(self):
        service = QueryService(seed=3)
        service.register("d", np.random.default_rng(0).normal(0, 1, 256), 1.0)
        spec = get_estimator("baseline.bounded_laplace_mean")
        first = service.submit(QueryRequest(dataset="d", query=_query_for(spec)))
        again = service.submit(QueryRequest(dataset="d", query=_query_for(spec)))
        assert first.ok and again.cached
        assert again.value == first.value
        assert again.epsilon_charged == 0.0

class TestLintConformance:
    """REP004 static analysis agrees with the runtime conformance suite.

    The linter checks registration *sites* (explicit ``reservation=`` /
    ``min_records=``, bounded numeric ``ParamField``\\ s); the runtime checks
    the *resulting specs*.  No spec may pass one gate but not the other, so
    a regression in either is caught by this single test.
    """

    #: ParamField types the linter exempts from bounds (mirrors REP004).
    _UNBOUNDED_TYPES = {"levels", "str", "string", "bool"}

    def _runtime_violations(self):
        violations = []
        for spec in iter_estimators():
            if not spec.reservation > 0.0:
                violations.append(f"{spec.name}: reservation={spec.reservation}")
            if spec.min_records < 1:
                violations.append(f"{spec.name}: min_records={spec.min_records}")
            for param in spec.params:
                if param.type in self._UNBOUNDED_TYPES:
                    continue
                if param.minimum is None and param.maximum is None:
                    violations.append(f"{spec.name}: param {param.name!r} unbounded")
        return violations

    def test_static_and_runtime_conformance_agree(self):
        from repro.lint import lint_paths, render_text

        estimators_dir = Path(__file__).parent.parent / "src" / "repro" / "estimators"
        static = lint_paths([estimators_dir], select=["REP004"])
        runtime = self._runtime_violations()
        # Agreement means both gates pass on the live registry modules: a
        # spec sneaking an implicit default past one would trip the other.
        assert static.findings == [], render_text(static)
        assert runtime == [], runtime
