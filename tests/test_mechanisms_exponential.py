"""Tests for the inverse-sensitivity quantile machinery (Section 2.5, Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting import PrivacyLedger
from repro.exceptions import DomainError, InsufficientDataError
from repro.mechanisms.exponential import (
    QuantileInterval,
    build_quantile_intervals,
    clamped_rank,
    exponential_mechanism_over_intervals,
    finite_domain_quantile,
    inverse_sensitivity_quantile,
    rank_clamp_width,
)


class TestBuildQuantileIntervals:
    def test_intervals_cover_domain_exactly(self):
        intervals = build_quantile_intervals([2, 5, 5, 9], tau=2, domain_low=0, domain_high=12)
        covered = []
        for iv in intervals:
            covered.extend(range(iv.low, iv.high + 1))
        assert covered == list(range(0, 13))

    def test_intervals_are_disjoint_and_ordered(self):
        intervals = build_quantile_intervals([1, 3, 7], tau=1, domain_low=0, domain_high=10)
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur.low == prev.high + 1

    def test_score_zero_at_target_order_statistic(self):
        data = [10, 20, 30, 40, 50]
        intervals = build_quantile_intervals(data, tau=3, domain_low=0, domain_high=60)
        score_at = {v: iv.score for iv in intervals for v in (iv.low, iv.high) if iv.low == iv.high}
        assert score_at[30] == 0

    def test_score_grows_with_rank_distance(self):
        data = [10, 20, 30, 40, 50]
        intervals = build_quantile_intervals(data, tau=3, domain_low=0, domain_high=60)
        by_point = {iv.low: iv.score for iv in intervals if iv.low == iv.high}
        assert by_point[10] > by_point[20] > by_point[30]
        assert by_point[50] > by_point[40] > by_point[30]

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError):
            build_quantile_intervals([1], tau=1, domain_low=5, domain_high=4)

    def test_out_of_domain_data_rejected(self):
        with pytest.raises(DomainError):
            build_quantile_intervals([100], tau=1, domain_low=0, domain_high=10)

    def test_single_point_domain(self):
        intervals = build_quantile_intervals([0, 0, 0], tau=2, domain_low=0, domain_high=0)
        assert len(intervals) == 1
        assert intervals[0].size == 1
        assert intervals[0].score == 0

    def test_empty_dataset_covers_domain_with_zero_scores(self):
        intervals = build_quantile_intervals([], tau=1, domain_low=0, domain_high=5)
        assert sum(iv.size for iv in intervals) == 6

    @given(
        data=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=30),
        tau_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_partition_and_scores(self, data, tau_frac):
        """The intervals always tile [-60, 60] and the true order statistic scores 0."""
        tau = max(1, min(len(data), int(round(tau_frac * len(data)))))
        intervals = build_quantile_intervals(sorted(data), tau, -60, 60)
        total = sum(iv.size for iv in intervals)
        assert total == 121
        target = sorted(data)[tau - 1]
        target_scores = [iv.score for iv in intervals if iv.low <= target <= iv.high]
        assert target_scores and min(target_scores) == 0
        assert all(iv.score >= 0 for iv in intervals)


class TestExponentialMechanism:
    def test_prefers_low_score_interval(self, rng):
        intervals = [
            QuantileInterval(low=0, high=0, score=0),
            QuantileInterval(low=1, high=1, score=50),
        ]
        draws = [exponential_mechanism_over_intervals(intervals, 2.0, rng) for _ in range(200)]
        assert np.mean([d == 0 for d in draws]) > 0.95

    def test_uniform_within_interval(self, rng):
        intervals = [QuantileInterval(low=0, high=9, score=0)]
        draws = [exponential_mechanism_over_intervals(intervals, 1.0, rng) for _ in range(2000)]
        assert set(draws) == set(range(10))

    def test_handles_huge_interval_sizes(self, rng):
        intervals = [
            QuantileInterval(low=0, high=2**40, score=5),
            QuantileInterval(low=2**40 + 1, high=2**40 + 1, score=0),
        ]
        value = exponential_mechanism_over_intervals(intervals, 1.0, rng)
        assert 0 <= value <= 2**40 + 1

    def test_handles_huge_scores_without_underflow(self, rng):
        intervals = [
            QuantileInterval(low=0, high=0, score=10_000_000),
            QuantileInterval(low=1, high=1, score=10_000_001),
        ]
        assert exponential_mechanism_over_intervals(intervals, 1.0, rng) in (0, 1)

    def test_empty_intervals_rejected(self, rng):
        with pytest.raises(DomainError):
            exponential_mechanism_over_intervals([], 1.0, rng)

    def test_malformed_interval_rejected_loudly(self, rng):
        """A high < low interval must fail fast, not poison the cumsum."""
        intervals = [
            QuantileInterval(low=5, high=3, score=0),
            QuantileInterval(low=0, high=3, score=0),
        ]
        with pytest.raises(DomainError, match="malformed interval"):
            exponential_mechanism_over_intervals(intervals, 1.0, rng)

    def test_many_intervals_never_raise_on_normalisation(self):
        """Regression: Generator.choice(p=...) raised ``probabilities do not
        sum to 1`` when float rounding across many intervals left the sum off
        by more than its tolerance; cumulative-sum inversion cannot."""
        intervals = [
            QuantileInterval(low=i, high=i, score=(i * 7919) % 97)
            for i in range(20_000)
        ]
        for seed in range(5):
            value = exponential_mechanism_over_intervals(
                intervals, 0.31, np.random.default_rng(seed)
            )
            assert 0 <= value < 20_000

    def test_inversion_sampler_matches_exponential_weights(self):
        """The cumulative-sum sampler still realises the exponential-mechanism
        distribution: mass ratio between two intervals ~ exp(eps * dscore / 2)
        scaled by interval size."""
        intervals = [
            QuantileInterval(low=0, high=3, score=0),   # weight 4
            QuantileInterval(low=4, high=4, score=2),   # weight exp(-1)
        ]
        generator = np.random.default_rng(20230401)
        draws = np.asarray(
            [
                exponential_mechanism_over_intervals(intervals, 1.0, generator)
                for _ in range(4000)
            ]
        )
        expected_share = 4.0 / (4.0 + np.exp(-1.0))
        assert np.mean(draws <= 3) == pytest.approx(expected_share, abs=0.03)


class TestRankClampWidth:
    def test_decreases_with_epsilon(self):
        assert rank_clamp_width(100, 2.0, 0.1) < rank_clamp_width(100, 0.5, 0.1)

    def test_increases_with_domain_size(self):
        assert rank_clamp_width(10**6, 1.0, 0.1) > rank_clamp_width(10, 1.0, 0.1)

    def test_handles_astronomical_domains(self):
        assert np.isfinite(rank_clamp_width(2**4000, 1.0, 0.1))

    def test_invalid_domain_rejected(self):
        with pytest.raises(DomainError):
            rank_clamp_width(0, 1.0, 0.1)


class TestClampedRank:
    def test_interior_rank_untouched(self):
        assert clamped_rank(50, 100, 10.0) == 50

    def test_low_rank_clamped_up(self):
        assert clamped_rank(1, 100, 10.0) == 10

    def test_high_rank_clamped_down(self):
        assert clamped_rank(100, 100, 10.0) == 90

    def test_empty_window_collapses_to_median(self):
        """Regression: with 2*clamp > n the old elif chain let the low clamp
        land above n - clamp, so *every* rank silently collapsed to n.  The
        empty window now collapses to the median rank instead."""
        n, clamp = 5, 10.0
        assert 2 * clamp > n
        assert clamped_rank(1, n, clamp) == 3
        assert clamped_rank(n, n, clamp) == 3

    def test_exactly_full_window_uses_ordinary_clamps(self):
        """At 2*clamp == n the window is the single safe point n/2; every
        rank must land there (not at the median of n+1)."""
        n, clamp = 10, 5.0
        for tau in (1, 5, 6, 10):
            assert clamped_rank(tau, n, clamp) == 5

    def test_empty_window_is_branch_order_independent(self):
        for n in (1, 2, 3, 4, 7, 10):
            clamp = n / 2.0 + 0.5
            ranks = {clamped_rank(tau, n, clamp) for tau in range(1, n + 1)}
            assert len(ranks) == 1, "all ranks must agree when no rank is safe"
            (rank,) = ranks
            assert rank == int(min(max(round((n + 1) / 2.0), 1), n))

    def test_result_always_in_range(self):
        for n in (1, 2, 10, 1000):
            for clamp in (0.0, 0.4, n / 3.0, n, 10.0 * n):
                for tau in (1, n // 2 or 1, n):
                    assert 1 <= clamped_rank(tau, n, clamp) <= n


class TestFiniteDomainQuantile:
    def test_median_close_to_truth(self, rng):
        data = np.arange(0, 1001)
        estimate = finite_domain_quantile(data, 500, 0, 1000, epsilon=2.0, beta=0.1, rng=rng)
        assert abs(estimate - 500) < 60

    def test_rank_error_within_lemma_bound(self, rng):
        """Lemma 2.8: rank error at most (4/eps) log(|X|/beta) w.p. 1 - beta."""
        epsilon, beta = 1.0, 0.05
        data = np.arange(0, 2001)
        bound = (4.0 / epsilon) * np.log(2001 / beta)
        failures = 0
        for seed in range(30):
            est = finite_domain_quantile(
                data, 1000, 0, 2000, epsilon, beta, np.random.default_rng(seed)
            )
            rank_error = abs(est - 1000)  # data are consecutive integers
            if rank_error > bound:
                failures += 1
        assert failures <= 3

    def test_extreme_ranks_are_clamped(self, rng):
        data = np.arange(0, 101)
        low = finite_domain_quantile(data, 1, 0, 100, 1.0, 0.2, rng)
        high = finite_domain_quantile(data, 101, 0, 100, 1.0, 0.2, rng)
        assert 0 <= low <= 100
        assert 0 <= high <= 100

    def test_empty_data_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            finite_domain_quantile([], 1, 0, 10, 1.0, 0.1, rng)

    def test_invalid_tau_rejected(self, rng):
        with pytest.raises(DomainError):
            finite_domain_quantile([1, 2, 3], 5, 0, 10, 1.0, 0.1, rng)

    def test_ledger_records_spend(self, rng):
        ledger = PrivacyLedger()
        finite_domain_quantile(np.arange(50), 25, 0, 60, 0.5, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.5)

    def test_output_always_in_domain(self, rng):
        data = np.array([5, 5, 5, 5])
        for _ in range(20):
            value = finite_domain_quantile(data, 2, 0, 10, 0.5, 0.3, rng)
            assert 0 <= value <= 10


class TestInverseSensitivityQuantile:
    def test_concentrates_on_true_quantile_at_high_epsilon(self, rng):
        data = [10, 20, 30, 40, 50]
        draws = [
            inverse_sensitivity_quantile(data, 3, 0, 60, epsilon=20.0, rng=rng)
            for _ in range(100)
        ]
        # With a huge epsilon nearly all mass sits on values with score 0,
        # i.e. the single point 30.
        assert np.median(draws) == pytest.approx(30, abs=5)
