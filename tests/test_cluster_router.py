"""The routing tier against a real in-process shard fleet.

Two shard HTTP servers (each a full :class:`QueryService` under the same
seed), one coordinator owning the joint group ledger, one router in front
— the same topology ``repro compose`` boots as processes, collapsed into
threads so the whole suite stays fast.  The assertions are the cluster's
external contract: bit-for-bit parity with a single-process service,
joint-budget atomicity across shards, honest 503s for dead shards, and
cluster-level aggregation documents.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.cluster.coordinator import make_coordinator_server, serve_in_thread
from repro.cluster.router import (
    ShardEndpoint,
    ShardUnavailable,
    make_router,
    serve_router,
)
from repro.cluster.rpc import CoordinatorClient
from repro.service import QueryService, RemoteBudgetManager
from repro.service.http import make_server, serve_forever

SEED = 411
GROUP_BUDGET = 30.0
PRIVATE_BUDGET = 5.0


def _datasets():
    rng = np.random.default_rng(9)
    return {
        "salaries": rng.normal(52_000.0, 9_000.0, 4_000),
        "heights": rng.normal(170.0, 8.0, 4_000),
        "private": rng.normal(0.0, 1.0, 4_000),
    }


def _populate(service, manager=None):
    """Register the fixture datasets the way every shard's config would."""
    if manager is not None:
        service.registry.create_group("clinical", GROUP_BUDGET, manager=manager)
    else:
        service.registry.create_group("clinical", GROUP_BUDGET)
    data = _datasets()
    service.register("salaries", data["salaries"], None, group="clinical")
    service.register("heights", data["heights"], None, group="clinical")
    service.register("private", data["private"], PRIVATE_BUDGET)


@pytest.fixture(scope="module")
def cluster():
    coordinator = make_coordinator_server()
    coordinator_thread = serve_in_thread(coordinator)
    host, port = coordinator.server_address[:2]

    shards, servers, clients = [], [], []
    for index in range(2):
        service = QueryService(seed=SEED)
        client = CoordinatorClient(host, port)
        clients.append(client)
        _populate(
            service,
            RemoteBudgetManager(
                "group:clinical", client, capacity=GROUP_BUDGET
            ),
        )
        server = make_server(service, quiet=True)
        serve_forever(server)
        servers.append(server)
        shards.append(
            ShardEndpoint(index, *server.server_address[:2])
        )

    router = make_router(shards, pinned=("private",), quiet=True)
    serve_router(router)

    yield router

    router.shutdown()
    router.server_close()
    for server in servers:
        server.shutdown()
        server.server_close()
    for client in clients:
        client.close()
    coordinator.shutdown()
    coordinator.server_close()
    coordinator_thread.join(timeout=5)


@pytest.fixture(scope="module")
def via_router(cluster):
    host, port = cluster.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


@pytest.fixture(scope="module")
def reference():
    service = QueryService(seed=SEED)
    _populate(service)
    return service


STREAM = [
    ("salaries", "mean", 0.5),
    ("salaries", "variance", 0.4),
    ("heights", "mean", 0.5),
    ("heights", "iqr", 0.6),
    ("private", "mean", 0.3),
    ("private", "variance", 0.3),
]


class TestParity:
    def test_single_queries_bit_for_bit(self, via_router, reference):
        for dataset, kind, epsilon in STREAM:
            status, doc = via_router.query(dataset, kind, epsilon=epsilon)
            expected = reference.query(dataset, kind, epsilon=epsilon)
            assert status == 200, doc
            assert doc["value"] == expected.value
            assert doc["epsilon_charged"] == expected.epsilon_charged
            assert doc["key"] == expected.key

    def test_batch_fans_out_and_reassembles_in_order(self, via_router, reference):
        queries = [
            {"dataset": dataset, "kind": kind, "epsilon": epsilon}
            for dataset, kind, epsilon in STREAM
        ]
        status, doc = via_router.query_batch(queries)
        assert status == 200
        assert [a["dataset"] for a in doc["answers"]] == [q[0] for q in STREAM]
        for answer, (dataset, kind, epsilon) in zip(doc["answers"], STREAM):
            expected = reference.query(dataset, kind, epsilon=epsilon)
            assert answer["value"] == expected.value, (dataset, kind)

    def test_repeat_is_a_cache_hit_on_the_owning_shard(self, via_router):
        first = via_router.query("salaries", "mean", epsilon=0.5)[1]
        again = via_router.query("salaries", "mean", epsilon=0.5)[1]
        assert again["cached"] is True
        assert again["value"] == first["value"]
        assert again["epsilon_charged"] == 0.0


class TestJointBudgetAcrossShards:
    def test_exhaustion_refuses_on_every_member_everywhere(self, via_router, cluster):
        # burn the group ledger down through whichever shards own the keys
        status, doc = via_router.query("salaries", "mean", epsilon=25.0)
        if status == 200:
            status, doc = via_router.query("heights", "variance", epsilon=25.0)
        assert status == 403
        assert doc["error"]["code"] == "budget_exceeded"
        # now every member refuses on every kind — i.e. on every shard —
        # because there is exactly one ledger, in the coordinator
        for dataset in ("salaries", "heights"):
            for kind in ("mean", "variance", "iqr"):
                status, doc = via_router.query(dataset, kind, epsilon=20.0)
                assert (status, doc["error"]["code"]) == (403, "budget_exceeded"), (
                    dataset, kind
                )

    def test_private_dataset_unaffected_by_group_exhaustion(self, via_router):
        status, doc = via_router.query("private", "iqr", epsilon=0.4)
        assert status == 200 and doc["status"] == "ok"


class TestAggregation:
    def test_health_reports_fleet_totals(self, via_router):
        doc = via_router.health()
        assert doc["status"] == "ok"
        assert doc["shards"] == {"total": 2, "healthy": 2, "unreachable": []}
        assert set(doc["datasets"]) == {"salaries", "heights", "private"}

    def test_datasets_document_keeps_single_process_shape(self, via_router):
        doc = via_router.stats()
        names = {entry["name"] for entry in doc["datasets"]}
        assert names == {"salaries", "heights", "private"}
        assert "clinical" in doc["groups"]
        assert doc["cache"]["hits"] >= 1  # the repeat-query test above
        assert doc["cluster"]["shards"][0]["shard"] == 0
        assert doc["cluster"]["shards"][0]["healthy"] is True
        assert doc["cluster"]["pinned"] == ["private"]

    def test_metrics_exposition(self, via_router):
        text = via_router.metrics()
        assert "repro_router_requests_total" in text
        assert 'repro_router_shard_up{shard="0"} 1' in text
        assert "repro_cache_hits_total" in text

    def test_kinds_proxied(self, via_router):
        assert "mean" in via_router.kinds()["kinds"]

    def test_unknown_dataset_404_through_owning_shard(self, via_router):
        status, doc = via_router.query("nope", "mean", epsilon=0.5)
        assert status == 404
        assert doc["error"]["code"] == "unknown_dataset"

    def test_registration_is_disabled_at_the_router(self, via_router):
        status, doc = via_router.register("new", [1.0, 2.0, 3.0], 1.0)
        assert status == 403
        assert doc["error"]["code"] == "registration_disabled"


class TestDeadShard:
    def test_dead_shard_is_an_honest_503_not_a_silent_retry(self, cluster, via_router):
        victim = cluster.shards[1]
        victim.close()
        original_request = victim.request

        def refuse(*args, **kwargs):
            raise ShardUnavailable("connection refused (test)")

        victim.request = refuse
        try:
            owned = [
                (dataset, kind)
                for dataset, kind, _ in STREAM
                if cluster.owner(dataset, kind) == 1
            ]
            assert owned, "shard 1 owns nothing in STREAM — fixture too small"
            dataset, kind = owned[0]
            status, doc = via_router.query(dataset, kind, epsilon=0.1)
            assert status == 503
            assert doc["error"]["code"] == "shard_unavailable"
            assert doc["error"]["detail"]["shard"] == 1

            # a batch spanning both shards: dead entries fail, live succeed
            live = [
                (d, k) for d, k, _ in STREAM if cluster.owner(d, k) == 0
            ]
            assert live, "shard 0 owns nothing in STREAM — fixture too small"
            status, doc = via_router.query_batch(
                [
                    {"dataset": dataset, "kind": kind, "epsilon": 0.1},
                    {"dataset": live[0][0], "kind": live[0][1], "epsilon": 0.1},
                ]
            )
            assert status == 200
            dead_entry, live_entry = doc["answers"]
            assert dead_entry["status"] == "failed"
            assert dead_entry["error"]["code"] == "shard_unavailable"
            assert live_entry["status"] in ("ok", "refused")

            health = via_router.health()
            assert health["status"] == "degraded"
            assert health["shards"]["unreachable"] == [1]
        finally:
            victim.request = original_request


class TestFraming:
    def test_invalid_json_is_a_router_400(self, cluster):
        host, port = cluster.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        doc = json.loads(excinfo.value.read())
        assert doc["error"]["code"] == "invalid_request"

    def test_unknown_path_is_404(self, via_router):
        status, doc = via_router.call("/wat")
        assert status == 404
        assert doc["error"]["code"] == "unknown_path"
