"""Tests for ``InfiniteDomainRadius`` (Algorithm 3, Theorems 3.1/3.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting import PrivacyLedger
from repro.empirical import estimate_radius
from repro.exceptions import InsufficientDataError, PrivacyParameterError


class TestRadiusBasics:
    def test_all_zero_dataset_gives_zero_radius(self):
        successes = 0
        for seed in range(20):
            result = estimate_radius(np.zeros(500), 1.0, 0.1, np.random.default_rng(seed))
            if result.radius == 0.0:
                successes += 1
        assert successes >= 18

    def test_radius_at_most_twice_true_radius(self):
        data = np.concatenate([np.zeros(900), np.full(100, 1000.0)])
        for seed in range(10):
            result = estimate_radius(data, 1.0, 0.05, np.random.default_rng(seed))
            assert result.radius <= 2.0 * 1000.0 + 3.0

    def test_covers_most_points(self, rng):
        data = rng.integers(-800, 800, size=4000).astype(float)
        result = estimate_radius(data, 1.0, 0.05, rng)
        # Theorem 3.1: all but O(log log(rad)/eps) points are covered.
        assert result.uncovered_count <= 100
        assert result.covered_count + result.uncovered_count == data.size

    def test_grid_radius_is_power_of_two_or_zero(self, rng):
        data = rng.integers(-300, 300, size=2000).astype(float)
        result = estimate_radius(data, 1.0, 0.1, rng)
        if result.grid_radius != 0:
            assert result.grid_radius & (result.grid_radius - 1) == 0

    def test_diagnostics_consistent(self, rng):
        data = rng.integers(-100, 100, size=1000).astype(float)
        result = estimate_radius(data, 1.0, 0.1, rng)
        inside = np.count_nonzero(np.abs(data) <= result.radius)
        assert result.covered_count == inside

    def test_bucket_size_scales_result(self, rng):
        data = rng.normal(0.0, 0.001, size=2000)
        result = estimate_radius(data, 1.0, 0.05, rng, bucket_size=0.0001)
        # Theorem 3.6: radius <= 2 rad(D) + 3b.
        true_radius = float(np.max(np.abs(data)))
        assert result.radius <= 2.0 * true_radius + 3.0 * 0.0001
        assert result.bucket_size == pytest.approx(0.0001)

    def test_huge_values_handled(self, rng):
        data = np.concatenate([np.zeros(1000), [10.0**9]])
        result = estimate_radius(data, 1.0, 0.05, rng)
        assert np.isfinite(result.radius)

    def test_svt_index_consistent_with_radius(self, rng):
        data = rng.integers(-100, 100, size=1000).astype(float)
        result = estimate_radius(data, 1.0, 0.1, rng)
        if result.svt_index == 1:
            assert result.grid_radius == 0
        else:
            assert result.grid_radius == 2 ** (result.svt_index - 2)


class TestRadiusValidation:
    def test_empty_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_radius([], 1.0, 0.1, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_radius([1.0], 0.0, 0.1, rng)

    def test_invalid_beta_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_radius([1.0], 1.0, 1.5, rng)

    def test_ledger_records_spend(self, rng):
        ledger = PrivacyLedger()
        estimate_radius(np.arange(100.0), 0.5, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.5)


class TestRadiusStatisticalBehaviour:
    @given(scale=st.sampled_from([1.0, 10.0, 100.0, 1000.0]))
    @settings(max_examples=8, deadline=None)
    def test_property_radius_tracks_data_scale(self, scale):
        """The private radius grows with the data scale but never exceeds ~2x it."""
        rng = np.random.default_rng(int(scale))
        data = rng.uniform(-scale, scale, size=3000)
        result = estimate_radius(data, 1.0, 0.05, rng, bucket_size=scale / 1000.0)
        true_radius = float(np.max(np.abs(data)))
        assert result.radius <= 2.0 * true_radius + 3.0 * scale / 1000.0
        # It should also not collapse to something far smaller than the bulk.
        assert result.radius >= np.quantile(np.abs(data), 0.5)
