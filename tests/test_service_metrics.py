"""Tests for the latency recorder and the Prometheus exposition.

The exposition tests parse the rendered text with a naive Prometheus
text-format parser (samples + HELP/TYPE headers) and cross-check every value
against the JSON ``stats()`` view the same snapshots feed — the two
monitoring surfaces must never disagree.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.service import QueryService
from repro.service.metrics import (
    DEFAULT_BUCKETS,
    LatencyRecorder,
    render_prometheus,
)

_SAMPLE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$')


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Naive text-format 0.0.4 parser: {(name, sorted labels): value}.

    Validates the structural contract along the way: every sample line must
    parse, and every metric family must carry HELP and TYPE headers.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    helped, typed = set(), set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, raw_labels, raw_value = match.groups()
        labels = []
        if raw_labels:
            for part in raw_labels[1:-1].split(","):
                key, _, value = part.partition("=")
                assert value.startswith('"') and value.endswith('"'), line
                labels.append((key, value[1:-1]))
        key = (name, tuple(sorted(labels)))
        assert key not in samples, f"duplicate sample: {key}"
        samples[key] = float(raw_value)
    for name in {name for name, _ in samples}:
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        assert family in helped, f"{family} has samples but no HELP"
        assert family in typed, f"{family} has samples but no TYPE"
    return samples


def sample(samples, name, **labels) -> float:
    return samples[(name, tuple(sorted(labels.items())))]


class TestLatencyRecorder:
    def test_observe_and_snapshot(self):
        recorder = LatencyRecorder()
        recorder.observe("mean", "ok", 0.002)
        recorder.observe("mean", "ok", 0.3)
        recorder.observe("mean", "cached", 0.0001)
        snap = recorder.snapshot()
        cell = snap[("mean", "ok")]
        assert cell.count == 2
        assert cell.sum == pytest.approx(0.302)
        assert sum(cell.counts) == 2
        assert snap[("mean", "cached")].count == 1

    def test_cumulative_ends_at_total(self):
        recorder = LatencyRecorder()
        for seconds in (0.0001, 0.004, 0.04, 99.0):
            recorder.observe("k", "ok", seconds)
        cumulative = recorder.snapshot()[("k", "ok")].cumulative()
        assert cumulative[-1] == ("+Inf", 4)
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)  # cumulative is monotone
        assert len(cumulative) == len(DEFAULT_BUCKETS) + 1

    def test_overflow_bucket(self):
        recorder = LatencyRecorder(buckets=(0.1, 1.0))
        recorder.observe("k", "ok", 5.0)
        cell = recorder.snapshot()[("k", "ok")]
        assert cell.counts == (0, 0, 1)

    def test_negative_clamped(self):
        recorder = LatencyRecorder()
        recorder.observe("k", "ok", -1.0)
        assert recorder.snapshot()[("k", "ok")].sum == 0.0


class TestExposition:
    @pytest.fixture
    def service(self):
        svc = QueryService(seed=11)
        svc.registry.create_group("g", 4.0)
        svc.register("d", np.random.default_rng(0).normal(0.0, 1.0, 4_000), 2.0)
        svc.register("e", np.random.default_rng(1).normal(0.0, 1.0, 4_000), None, group="g")
        return svc

    def test_cross_checks_against_stats(self, service):
        service.query("d", "mean", epsilon=0.5)
        service.query("d", "mean", epsilon=0.5)  # cached
        service.query("e", "variance", epsilon=0.5)
        service.query("d", "mean", epsilon=99.0)  # refused

        samples = parse_prometheus(render_prometheus(service))
        stats = service.stats()

        # request counters match the recorder-by-outcome view
        assert sample(samples, "repro_requests_total", kind="mean", outcome="ok") == 1
        assert sample(samples, "repro_requests_total", kind="mean", outcome="cached") == 1
        assert sample(samples, "repro_requests_total", kind="mean", outcome="refused") == 1
        assert sample(samples, "repro_requests_total", kind="variance", outcome="ok") == 1

        # cache counters equal the JSON view bit for bit
        assert sample(samples, "repro_cache_hits_total") == stats["cache"]["hits"]
        assert sample(samples, "repro_cache_misses_total") == stats["cache"]["misses"]
        assert sample(samples, "repro_cache_entries") == stats["cache"]["size"]

        # per-dataset budget gauges equal the JSON snapshots
        by_name = {entry["name"]: entry for entry in stats["datasets"]}
        for name in ("d", "e"):
            budget = by_name[name]["budget"]
            assert sample(samples, "repro_budget_capacity_epsilon", dataset=name) \
                == budget["capacity"]
            assert sample(samples, "repro_budget_spent_epsilon", dataset=name) \
                == pytest.approx(budget["spent"])
            assert sample(samples, "repro_budget_remaining_epsilon", dataset=name) \
                == pytest.approx(budget["remaining"])
            assert sample(samples, "repro_dataset_records", dataset=name) \
                == by_name[name]["records"]
            assert sample(samples, "repro_dataset_draining", dataset=name) == 0

        # group gauges
        assert sample(samples, "repro_group_budget_capacity_epsilon", group="g") == 4.0
        assert sample(samples, "repro_group_budget_spent_epsilon", group="g") \
            == pytest.approx(stats["groups"]["g"]["budget"]["spent"])

    def test_histogram_invariants(self, service):
        service.query("d", "mean", epsilon=0.5)
        samples = parse_prometheus(render_prometheus(service))
        labels = dict(kind="mean", outcome="ok")
        count = sample(samples, "repro_request_latency_seconds_count", **labels)
        assert count == 1
        assert sample(
            samples, "repro_request_latency_seconds_bucket", le="+Inf", **labels
        ) == count
        assert sample(samples, "repro_request_latency_seconds_sum", **labels) >= 0.0

    def test_draining_flag_exported(self, service):
        service.registry.set_draining("d")
        samples = parse_prometheus(render_prometheus(service))
        assert sample(samples, "repro_dataset_draining", dataset="d") == 1

    def test_frontend_and_limiter_sections(self, service):
        from repro.service.qos import LimitSpec, RateLimiter, RateLimits

        limiter = RateLimiter(RateLimits(analyst=LimitSpec(rate=1.0, burst=1.0)))
        limiter.check(None, "mean")
        limiter.check(None, "mean")
        text = render_prometheus(
            service,
            frontend={"frontend": "async", "requests": 7, "max_body": 1024},
            limiter=limiter,
        )
        samples = parse_prometheus(text)
        assert sample(
            samples, "repro_frontend_events_total", frontend="async", event="requests"
        ) == 7
        assert ("repro_frontend_events_total", (("event", "max_body"), ("frontend", "async"))) \
            not in samples
        assert sample(samples, "repro_rate_limit_allowed_total") == 1
        assert sample(samples, "repro_rate_limit_refused_total") == 1

    def test_label_escaping(self):
        svc = QueryService(seed=1)
        svc.register("d", np.random.default_rng(0).normal(0.0, 1.0, 64), 1.0)
        svc.metrics.observe('we"ird\nkind', "ok", 0.001)
        samples = parse_prometheus(render_prometheus(svc))
        assert any(name == "repro_requests_total" for name, _ in samples)


class TestHttpScrape:
    def test_metrics_endpoint_parses_and_cross_checks(self):
        from repro.service import make_server, serve_forever
        import urllib.request

        service = QueryService(seed=2)
        service.register("d", np.random.default_rng(0).normal(0.0, 1.0, 4_000), 2.0)
        server = make_server(service, port=0, quiet=True)
        thread = serve_forever(server)
        try:
            service.query("d", "mean", epsilon=0.5)
            with urllib.request.urlopen(server.url + "/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                samples = parse_prometheus(resp.read().decode("utf-8"))
            assert sample(samples, "repro_requests_total", kind="mean", outcome="ok") == 1
            assert sample(samples, "repro_service_workers") == service.stats()["workers"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
