"""Tests for ``InfiniteDomainMean`` (Algorithm 5, Theorems 3.3/3.8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.analysis.theory import empirical_mean_error_bound
from repro.bench.workloads import adversarial_outlier_dataset, uniform_integer_dataset
from repro.empirical import estimate_empirical_mean
from repro.exceptions import InsufficientDataError


class TestEmpiricalMeanAccuracy:
    def test_error_small_relative_to_width(self, rng):
        data = uniform_integer_dataset(5000, width=1000, rng=rng)
        result = estimate_empirical_mean(data, epsilon=1.0, beta=0.1, rng=rng)
        bound = 20.0 * empirical_mean_error_bound(1000.0, data.size, 1.0, 0.1)
        assert result.absolute_error <= bound

    def test_error_shrinks_with_n(self):
        errors = {}
        for n in (1000, 16000):
            trial_errors = []
            for seed in range(8):
                gen = np.random.default_rng(seed)
                data = uniform_integer_dataset(n, width=1000, rng=gen)
                result = estimate_empirical_mean(data, 1.0, 0.1, gen)
                trial_errors.append(result.absolute_error)
            errors[n] = np.median(trial_errors)
        assert errors[16000] < errors[1000]

    def test_error_shrinks_with_epsilon(self):
        errors = {}
        for epsilon in (0.2, 2.0):
            trial_errors = []
            for seed in range(8):
                gen = np.random.default_rng(seed)
                data = uniform_integer_dataset(3000, width=2000, rng=gen)
                result = estimate_empirical_mean(data, epsilon, 0.1, gen)
                trial_errors.append(result.absolute_error)
            errors[epsilon] = np.median(trial_errors)
        assert errors[2.0] < errors[0.2]

    def test_outliers_do_not_blow_up_error(self, rng):
        """A few far outliers should cost ~gamma_bulk * outliers / n, not the full range."""
        data = adversarial_outlier_dataset(
            5000, bulk_width=100, outliers=5, outlier_value=10**7, rng=rng
        )
        result = estimate_empirical_mean(data, epsilon=1.0, beta=0.1, rng=rng)
        # The bulk mean is ~0, the true mean is ~1e7 * 5 / 5000 = 1e4.  A naive
        # range covering the outliers would add noise of order 1e7/(eps n) ~ 2e3
        # and the bias of clipping the outliers is ~1e4, so the total error must
        # stay well below the outlier magnitude itself.
        assert result.absolute_error < 5e4

    def test_mean_error_small_on_tight_cluster(self, rng):
        data = np.full(2000, 37.0) + rng.integers(-2, 3, size=2000)
        result = estimate_empirical_mean(data, 1.0, 0.1, rng)
        assert result.absolute_error < 1.0

    def test_real_valued_data_with_bucket(self, rng):
        data = rng.uniform(-1.0, 1.0, size=5000)
        result = estimate_empirical_mean(data, 1.0, 0.1, rng, bucket_size=0.001)
        assert result.absolute_error < 0.1


class TestEmpiricalMeanDiagnostics:
    def test_result_fields_consistent(self, rng):
        data = uniform_integer_dataset(1000, width=100, rng=rng)
        result = estimate_empirical_mean(data, 1.0, 0.1, rng)
        assert result.true_mean == pytest.approx(float(np.mean(data)))
        assert result.noise_scale == pytest.approx(
            5.0 * result.range_used.width / (1.0 * data.size)
        )
        assert result.clipped_count >= 0

    def test_ledger_total_equals_epsilon(self, rng):
        ledger = PrivacyLedger()
        data = uniform_integer_dataset(1000, width=100, rng=rng)
        estimate_empirical_mean(data, 0.5, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.5, rel=1e-6)

    def test_empty_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_empirical_mean([], 1.0, 0.1, rng)
