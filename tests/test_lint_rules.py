"""Per-rule fixture tests: each REP rule has trigger and pass snippets.

Every fixture is a small in-memory module linted through the real rule
objects (via :class:`repro.lint.ModuleContext`), asserting the exact rule
id and line number — the same contract the CI job relies on.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    AuditCoverageRule,
    ClusterBudgetIsolationRule,
    EstimatorSpecRule,
    FrontEndContainmentRule,
    GlobalRngRule,
    LockDisciplineRule,
    ModuleContext,
    ReserveCommitRule,
    SketchContractRule,
)


def run_rule(rule, source, display="src/repro/somewhere.py"):
    module = ModuleContext.from_source(
        textwrap.dedent(source), Path(display), display
    )
    return list(rule.check(module))


def lines_of(findings):
    return sorted(finding.line for finding in findings)


# ---------------------------------------------------------------------------
# REP001 — global RNG
# ---------------------------------------------------------------------------
class TestGlobalRng:
    def test_numpy_module_function_flagged(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP001"]
        assert findings[0].line == 4
        assert "hidden global NumPy RNG" in findings[0].message

    def test_argless_seed_sequence_flagged_seeded_ok(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            import numpy as np

            fresh = np.random.SeedSequence()
            seeded = np.random.SeedSequence(1234)
            gen = np.random.default_rng(7)
            """,
        )
        assert lines_of(findings) == [3]
        assert findings[0].rule_id == "REP001"
        assert "fresh OS entropy" in findings[0].message

    def test_stdlib_random_functions_flagged(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            import random

            def shuffle_in_place(items):
                random.shuffle(items)
                return random.random()
            """,
        )
        assert lines_of(findings) == [4, 5]
        assert {f.rule_id for f in findings} == {"REP001"}

    def test_from_import_member_resolved(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            from numpy.random import default_rng
            from random import randint

            a = default_rng()
            b = default_rng(99)
            c = randint(0, 10)
            """,
        )
        assert lines_of(findings) == [4, 6]

    def test_whitelisted_seeding_site_exempt(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            import numpy as np

            def resolve():
                return np.random.default_rng()
            """,
            display="src/repro/_rng.py",
        )
        assert findings == []

    def test_generator_method_calls_not_flagged(self):
        findings = run_rule(
            GlobalRngRule(),
            """\
            import numpy as np

            def draw(rng: np.random.Generator):
                return rng.normal(size=3)
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP002 — lock discipline
# ---------------------------------------------------------------------------
_LOCKED_CLASS = """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
"""


class TestLockDiscipline:
    def test_unguarded_read_flagged(self):
        findings = run_rule(LockDisciplineRule(), _LOCKED_CLASS)
        assert [f.rule_id for f in findings] == ["REP002"]
        assert findings[0].line == 13
        assert "'self._count'" in findings[0].message

    def test_guarded_class_clean(self):
        findings = run_rule(
            LockDisciplineRule(),
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    with self._lock:
                        return self._count
            """,
        )
        assert findings == []

    def test_caller_must_hold_docstring_exempts(self):
        findings = run_rule(
            LockDisciplineRule(),
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    \"\"\"Caller must hold ``self._lock``.\"\"\"
                    self._count += 1
            """,
        )
        assert findings == []

    def test_mutator_call_counts_as_write(self):
        findings = run_rule(
            LockDisciplineRule(),
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    self._items.append(item)
            """,
        )
        assert lines_of(findings) == [9]
        assert "'self._items'" in findings[0].message

    def test_dataclass_lock_annotation_detected(self):
        findings = run_rule(
            LockDisciplineRule(),
            """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Ledger:
                _lock: threading.RLock = field(default_factory=threading.RLock)
                total: float = 0.0

                def charge(self, amount):
                    self.total += amount
            """,
        )
        assert lines_of(findings) == [10]

    def test_class_without_lock_ignored(self):
        findings = run_rule(
            LockDisciplineRule(),
            """\
            class Plain:
                def __init__(self):
                    self._count = 0

                def bump(self):
                    self._count += 1
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP003 — reserve/commit pairing
# ---------------------------------------------------------------------------
class TestReserveCommit:
    def test_unpaired_reserve_flagged(self):
        findings = run_rule(
            ReserveCommitRule(),
            """\
            class Runner:
                def handle(self, budget, request):
                    reservation = budget.reserve(request.epsilon)
                    return self._execute(request)

                def _execute(self, request):
                    return request
            """,
        )
        assert [f.rule_id for f in findings] == ["REP003"]
        assert findings[0].line == 3
        assert "leaks the reservation" in findings[0].message

    def test_reserve_with_commit_and_cancel_clean(self):
        findings = run_rule(
            ReserveCommitRule(),
            """\
            class Runner:
                def handle(self, budget, request):
                    reservation = budget.reserve(request.epsilon)
                    try:
                        result = self._execute(request)
                    except Exception:
                        budget.cancel(reservation)
                        raise
                    budget.commit(reservation, request.epsilon)
                    return result
            """,
        )
        assert findings == []

    def test_interprocedural_resolution_through_helper(self):
        findings = run_rule(
            ReserveCommitRule(),
            """\
            class Runner:
                def handle(self, budget, request):
                    reservation = budget.reserve(request.epsilon)
                    return self._settle(budget, reservation)

                def _settle(self, budget, reservation):
                    budget.commit(reservation, 0.5)
            """,
        )
        assert findings == []

    def test_returned_reservation_is_ownership_transfer(self):
        findings = run_rule(
            ReserveCommitRule(),
            """\
            def acquire(budget, epsilon):
                return budget.reserve(epsilon)
            """,
        )
        assert findings == []

    def test_discarded_reservation_always_flagged(self):
        findings = run_rule(
            ReserveCommitRule(),
            """\
            class Runner:
                def handle(self, budget, request):
                    budget.reserve(request.epsilon)
                    budget.commit(None, 0.0)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP003"]
        assert findings[0].line == 3
        assert "discarded" in findings[0].message


# ---------------------------------------------------------------------------
# REP004 — estimator-spec conformance
# ---------------------------------------------------------------------------
class TestEstimatorSpec:
    def test_missing_reservation_and_min_records_flagged(self):
        findings = run_rule(
            EstimatorSpecRule(),
            """\
            from repro.estimators import register_estimator

            @register_estimator("demo", scalar=True)
            def run_demo(data, epsilon, beta, rng, params):
                return 0.0
            """,
        )
        assert [f.rule_id for f in findings] == ["REP004", "REP004"]
        assert lines_of(findings) == [3, 3]
        messages = " ".join(f.message for f in findings)
        assert "reservation=" in messages and "min_records=" in messages

    def test_explicit_spec_clean(self):
        findings = run_rule(
            EstimatorSpecRule(),
            """\
            from repro.estimators import register_estimator
            from repro.estimators.spec import ParamField

            @register_estimator(
                "demo",
                reservation=1.0,
                min_records=8,
                params=[ParamField("radius", minimum=0.0)],
            )
            def run_demo(data, epsilon, beta, rng, params):
                return 0.0
            """,
        )
        assert findings == []

    def test_unbounded_numeric_param_flagged(self):
        findings = run_rule(
            EstimatorSpecRule(),
            """\
            from repro.estimators.spec import ParamField

            FIELD = ParamField("radius", type="float")
            """,
        )
        assert [f.rule_id for f in findings] == ["REP004"]
        assert findings[0].line == 3
        assert "ParamField 'radius'" in findings[0].message

    def test_levels_param_exempt_from_bounds(self):
        findings = run_rule(
            EstimatorSpecRule(),
            """\
            from repro.estimators.spec import ParamField

            FIELD = ParamField("levels", type="levels")
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP005 — front-end exception containment
# ---------------------------------------------------------------------------
_UNCONTAINED_HANDLER = """\
class Handler:
    def do_GET(self):
        payload = self._route()
        self._send_json(200, payload)
"""

_CONTAINED_HANDLER = """\
class Handler:
    def do_GET(self):
        try:
            payload = self._route()
            self._send_json(200, payload)
        except Exception as exc:
            self._send_json(500, {"error": str(exc)})
"""


class TestFrontEndContainment:
    def test_uncontained_handler_flagged(self):
        findings = run_rule(
            FrontEndContainmentRule(),
            _UNCONTAINED_HANDLER,
            display="src/repro/service/http.py",
        )
        assert [f.rule_id for f in findings] == ["REP005"]
        assert findings[0].line == 2
        assert "do_GET" in findings[0].message

    def test_contained_handler_clean(self):
        findings = run_rule(
            FrontEndContainmentRule(),
            _CONTAINED_HANDLER,
            display="src/repro/service/http.py",
        )
        assert findings == []

    def test_out_of_scope_file_ignored(self):
        findings = run_rule(
            FrontEndContainmentRule(),
            _UNCONTAINED_HANDLER,
            display="src/repro/service/executor.py",
        )
        assert findings == []

    def test_bare_reraise_handler_not_containment(self):
        findings = run_rule(
            FrontEndContainmentRule(),
            """\
            class Handler:
                def do_POST(self):
                    try:
                        self._route()
                    except Exception:
                        raise
            """,
            display="src/repro/service/http.py",
        )
        assert [f.rule_id for f in findings] == ["REP005"]

    def test_async_connection_handler_in_scope(self):
        findings = run_rule(
            FrontEndContainmentRule(),
            """\
            class Server:
                async def _handle_connection(self, reader, writer):
                    data = await reader.read()
                    writer.write(data)
            """,
            display="src/repro/service/aio.py",
        )
        assert [f.rule_id for f in findings] == ["REP005"]
        assert findings[0].line == 2


# ---------------------------------------------------------------------------
# REP006 — audit-trail coverage of budget/cache touch-points
# ---------------------------------------------------------------------------
class TestAuditCoverage:
    def test_unaudited_commit_flagged(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Service:
                def settle(self, entry):
                    return entry.dataset.budget.commit(entry.reservation, 0.5)
            """,
            display="src/repro/service/executor.py",
        )
        assert [f.rule_id for f in findings] == ["REP006"]
        assert findings[0].line == 3
        assert "privacy budget" in findings[0].message

    def test_direct_audit_call_clean(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Service:
                def settle(self, entry):
                    actual = entry.dataset.budget.commit(entry.reservation, 0.5)
                    self._audit_event("commit", epsilon=actual)
                    return actual
            """,
            display="src/repro/service/executor.py",
        )
        assert findings == []

    def test_transitive_helper_audit_clean(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Service:
                def settle(self, entry):
                    actual = entry.dataset.budget.commit(entry.reservation, 0.5)
                    self._finish(actual)
                    return actual

                def _finish(self, actual):
                    self.audit.record("commit", epsilon=actual)
            """,
            display="src/repro/service/executor.py",
        )
        assert findings == []

    def test_unaudited_cache_hit_flagged(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Service:
                def lookup(self, key):
                    return self._cache.get(key)
            """,
            display="src/repro/service/executor.py",
        )
        assert [f.rule_id for f in findings] == ["REP006"]
        assert "answer cache" in findings[0].message

    def test_budget_peek_probe_exempt(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Service:
                def probe(self, dataset, epsilon):
                    return dataset.budget.peek(epsilon)
            """,
            display="src/repro/service/executor.py",
        )
        assert findings == []

    def test_out_of_scope_file_ignored(self):
        findings = run_rule(
            AuditCoverageRule(),
            """\
            class Pool:
                def settle(self, entry):
                    return entry.dataset.budget.commit(entry.reservation, 0.5)
            """,
            display="src/repro/engine/pool.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP007 — sketch contract: needs=("sorted",) runners must not re-sort
# ---------------------------------------------------------------------------
class TestSketchContract:
    def test_np_sort_on_data_argument_flagged(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            import numpy as np
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8,
                                needs=("sorted",))
            def run_k(data, generator, ledger, *, epsilon, beta):
                ordered = np.sort(np.asarray(data, dtype=float))
                return float(ordered[0])
            """,
        )
        assert [f.rule_id for f in findings] == ["REP007"]
        assert lines_of(findings) == [7]

    def test_inplace_sort_on_data_argument_flagged(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8,
                                needs=("sorted", "sorted_abs"))
            def run_k(data, generator, ledger, *, epsilon, beta):
                data.sort()
                return float(data[0])
            """,
        )
        assert [f.rule_id for f in findings] == ["REP007"]
        assert lines_of(findings) == [6]

    def test_sketch_reading_runner_passes(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            import numpy as np
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8,
                                needs=("sorted",))
            def run_k(data, generator, ledger, *, epsilon, beta):
                ordered = data.sorted_values
                return float(ordered[0])
            """,
        )
        assert findings == []

    def test_sorting_other_arrays_passes(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            import numpy as np
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8,
                                needs=("sorted",))
            def run_k(data, generator, ledger, *, epsilon, beta):
                noise = generator.standard_normal(8)
                return float(np.sort(noise)[0])
            """,
        )
        assert findings == []

    def test_runner_without_needs_may_sort(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            import numpy as np
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8)
            def run_k(data, generator, ledger, *, epsilon, beta):
                return float(np.sort(data)[0])
            """,
        )
        assert findings == []

    def test_moments_only_needs_may_sort(self):
        findings = run_rule(
            SketchContractRule(),
            """\
            import numpy as np
            from repro.estimators import register_estimator

            @register_estimator("k", reservation=1.0, min_records=8,
                                needs=("moments",))
            def run_k(data, generator, ledger, *, epsilon, beta):
                return float(np.sort(data)[0])
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP008 — cluster budget isolation
# ---------------------------------------------------------------------------
class TestClusterBudgetIsolation:
    CLUSTER = "src/repro/cluster/router.py"

    def test_constructor_flagged_in_cluster_module(self):
        findings = run_rule(
            ClusterBudgetIsolationRule(),
            "from repro.service.registry import BudgetManager\n"
            "ledger = BudgetManager(10.0)\n",
            display=self.CLUSTER,
        )
        assert [f.rule_id for f in findings] == ["REP008", "REP008"]
        assert lines_of(findings) == [1, 2]  # import and constructor

    def test_dotted_constructor_flagged(self):
        findings = run_rule(
            ClusterBudgetIsolationRule(),
            "import repro.service.registry as registry\n"
            "ledger = registry.BudgetManager(10.0)\n",
            display=self.CLUSTER,
        )
        assert lines_of(findings) == [2]

    def test_mutating_protocol_calls_flagged(self):
        findings = run_rule(
            ClusterBudgetIsolationRule(),
            "def admit(manager):\n"
            "    r = manager.reserve(1.0)\n"
            "    manager.commit(r, 0.5, label='q')\n"
            "    manager.cancel(r)\n"
            "    manager.rotate_analyst_budgets({})\n",
            display=self.CLUSTER,
        )
        assert [f.rule_id for f in findings] == ["REP008"] * 4
        assert lines_of(findings) == [2, 3, 4, 5]

    def test_coordinator_module_exempt(self):
        findings = run_rule(
            ClusterBudgetIsolationRule(),
            "from repro.service.registry import BudgetManager\n"
            "ledger = BudgetManager(10.0)\n"
            "r = ledger.reserve(1.0)\n",
            display="src/repro/cluster/coordinator.py",
        )
        assert findings == []

    def test_out_of_scope_modules_exempt(self):
        source = (
            "from repro.service.registry import BudgetManager\n"
            "ledger = BudgetManager(10.0)\n"
            "ledger.reserve(1.0)\n"
        )
        for display in (
            "src/repro/service/registry.py",
            "src/repro/service/config.py",
            "tests/test_cluster_router.py",
        ):
            assert run_rule(
                ClusterBudgetIsolationRule(), source, display=display
            ) == []

    def test_rpc_string_ops_pass(self):
        findings = run_rule(
            ClusterBudgetIsolationRule(),
            "def admit(client):\n"
            "    return client.call('reserve', group='g', amount=1.0)\n",
            display=self.CLUSTER,
        )
        assert findings == []

    def test_real_cluster_sources_clean(self):
        rule = ClusterBudgetIsolationRule()
        root = Path(__file__).resolve().parent.parent
        for path in sorted((root / "src/repro/cluster").glob("*.py")):
            display = path.relative_to(root).as_posix()
            module = ModuleContext.from_source(
                path.read_text(encoding="utf-8"), path, display
            )
            assert list(rule.check(module)) == [], display


# ---------------------------------------------------------------------------
# Injected-violation sweep: one scratch module per rule, correct id + line.
# ---------------------------------------------------------------------------
INJECTED = [
    ("REP001", GlobalRngRule(), "import numpy as np\nx = np.random.normal()\n", 2),
    (
        "REP002",
        LockDisciplineRule(),
        (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = 0\n"
            "    def set(self, v):\n"
            "        self._state = v\n"
        ),
        7,
    ),
    (
        "REP003",
        ReserveCommitRule(),
        (
            "def go(budget):\n"
            "    r = budget.reserve(1.0)\n"
            "    return 1\n"
        ),
        2,
    ),
    (
        "REP004",
        EstimatorSpecRule(),
        "from repro.estimators.spec import ParamField\nf = ParamField('x')\n",
        2,
    ),
    (
        "REP005",
        FrontEndContainmentRule(),
        "class H:\n    def do_GET(self):\n        self.route()\n",
        2,
    ),
    (
        "REP006",
        AuditCoverageRule(),
        "class S:\n    def settle(self, d, r):\n        return d.budget.commit(r, 0.5)\n",
        3,
    ),
    (
        "REP007",
        SketchContractRule(),
        (
            "import numpy as np\n"
            "from repro.estimators import register_estimator\n"
            "@register_estimator('k', reservation=1.0, min_records=8,\n"
            "                    needs=('sorted',))\n"
            "def run_k(data, generator, ledger, *, epsilon, beta):\n"
            "    return float(np.sort(data)[0])\n"
        ),
        6,
    ),
    (
        "REP008",
        ClusterBudgetIsolationRule(),
        "def boot():\n    from repro.service.registry import BudgetManager\n",
        2,
    ),
]


@pytest.mark.parametrize(
    "rule_id,rule,source,line", INJECTED, ids=[case[0] for case in INJECTED]
)
def test_injected_violation_caught_with_id_file_line(rule_id, rule, source, line, tmp_path):
    display = {
        "REP005": "src/repro/service/http.py",
        "REP006": "src/repro/service/executor.py",
        "REP008": "src/repro/cluster/router.py",
    }.get(rule_id, "scratch/mod.py")
    findings = run_rule(rule, source, display=display)
    assert findings, f"{rule_id} fixture produced no findings"
    assert findings[0].rule_id == rule_id
    assert findings[0].file == display
    assert findings[0].line == line
