"""Tests for the privacy spend ledger."""

from __future__ import annotations

import pytest

from repro.accounting import BudgetSpend, PrivacyLedger
from repro.exceptions import BudgetExceededError, PrivacyParameterError


class TestBudgetSpend:
    def test_effective_epsilon_defaults_to_epsilon(self):
        spend = BudgetSpend(label="x", epsilon=0.5)
        assert spend.effective_epsilon == pytest.approx(0.5)

    def test_effective_epsilon_uses_charged_value(self):
        spend = BudgetSpend(label="x", epsilon=2.0, charged_epsilon=0.3)
        assert spend.effective_epsilon == pytest.approx(0.3)


class TestPrivacyLedger:
    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert ledger.total_epsilon == 0.0
        assert len(ledger) == 0
        assert ledger.remaining is None

    def test_charges_accumulate(self):
        ledger = PrivacyLedger()
        ledger.charge("a", 0.25)
        ledger.charge("b", 0.5)
        assert ledger.total_epsilon == pytest.approx(0.75)
        assert [s.label for s in ledger] == ["a", "b"]

    def test_charged_epsilon_counts_amplified_value(self):
        ledger = PrivacyLedger()
        ledger.charge("range", 2.0, charged_epsilon=0.4)
        assert ledger.total_epsilon == pytest.approx(0.4)

    def test_capacity_enforced(self):
        ledger = PrivacyLedger(capacity=1.0)
        ledger.charge("a", 0.8)
        with pytest.raises(BudgetExceededError):
            ledger.charge("b", 0.5)

    def test_capacity_allows_exact_fill(self):
        ledger = PrivacyLedger(capacity=1.0)
        ledger.charge("a", 0.5)
        ledger.charge("b", 0.5)
        assert ledger.remaining == pytest.approx(0.0)

    def test_remaining_tracks_capacity(self):
        ledger = PrivacyLedger(capacity=2.0)
        ledger.charge("a", 0.5)
        assert ledger.remaining == pytest.approx(1.5)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyLedger().charge("a", -0.1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyLedger(capacity=0.0)

    def test_summary_mentions_labels(self):
        ledger = PrivacyLedger()
        ledger.charge("laplace_noise", 0.125)
        text = ledger.summary()
        assert "laplace_noise" in text
        assert "0.125" in text

    def test_failed_charge_not_recorded(self):
        ledger = PrivacyLedger(capacity=0.5)
        ledger.charge("ok", 0.4)
        with pytest.raises(BudgetExceededError):
            ledger.charge("too_much", 0.2)
        assert len(ledger) == 1
        assert ledger.total_epsilon == pytest.approx(0.4)
