"""Tests for the privacy spend ledger."""

from __future__ import annotations

import pytest

from repro.accounting import BudgetSpend, PrivacyLedger
from repro.exceptions import BudgetExceededError, PrivacyParameterError


class TestBudgetSpend:
    def test_effective_epsilon_defaults_to_epsilon(self):
        spend = BudgetSpend(label="x", epsilon=0.5)
        assert spend.effective_epsilon == pytest.approx(0.5)

    def test_effective_epsilon_uses_charged_value(self):
        spend = BudgetSpend(label="x", epsilon=2.0, charged_epsilon=0.3)
        assert spend.effective_epsilon == pytest.approx(0.3)


class TestPrivacyLedger:
    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert ledger.total_epsilon == 0.0
        assert len(ledger) == 0
        assert ledger.remaining is None

    def test_charges_accumulate(self):
        ledger = PrivacyLedger()
        ledger.charge("a", 0.25)
        ledger.charge("b", 0.5)
        assert ledger.total_epsilon == pytest.approx(0.75)
        assert [s.label for s in ledger] == ["a", "b"]

    def test_charged_epsilon_counts_amplified_value(self):
        ledger = PrivacyLedger()
        ledger.charge("range", 2.0, charged_epsilon=0.4)
        assert ledger.total_epsilon == pytest.approx(0.4)

    def test_capacity_enforced(self):
        ledger = PrivacyLedger(capacity=1.0)
        ledger.charge("a", 0.8)
        with pytest.raises(BudgetExceededError):
            ledger.charge("b", 0.5)

    def test_capacity_allows_exact_fill(self):
        ledger = PrivacyLedger(capacity=1.0)
        ledger.charge("a", 0.5)
        ledger.charge("b", 0.5)
        assert ledger.remaining == pytest.approx(0.0)

    def test_remaining_tracks_capacity(self):
        ledger = PrivacyLedger(capacity=2.0)
        ledger.charge("a", 0.5)
        assert ledger.remaining == pytest.approx(1.5)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyLedger().charge("a", -0.1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyLedger(capacity=0.0)

    def test_summary_mentions_labels(self):
        ledger = PrivacyLedger()
        ledger.charge("laplace_noise", 0.125)
        text = ledger.summary()
        assert "laplace_noise" in text
        assert "0.125" in text

    def test_failed_charge_not_recorded(self):
        ledger = PrivacyLedger(capacity=0.5)
        ledger.charge("ok", 0.4)
        with pytest.raises(BudgetExceededError):
            ledger.charge("too_much", 0.2)
        assert len(ledger) == 1
        assert ledger.total_epsilon == pytest.approx(0.4)


class TestConcurrentLedger:
    """The check-and-append in charge() must be atomic across threads."""

    def test_many_threads_hammering_one_ledger(self):
        import threading

        ledger = PrivacyLedger()
        threads = 16
        charges_per_thread = 200
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(charges_per_thread):
                ledger.charge(f"w{worker}.{i}", 0.001)

        workers = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert len(ledger) == threads * charges_per_thread
        assert ledger.total_epsilon == pytest.approx(threads * charges_per_thread * 0.001)

    def test_capped_ledger_never_jointly_overshoots(self):
        """Concurrent charges against a capacity can never exceed it in total.

        Without the internal lock two threads both read the same running
        total, both pass the capacity check, and both append — overshooting
        the cap.  With the lock, exactly floor(capacity / step) charges can
        ever succeed, no matter the interleaving.
        """
        import threading

        capacity = 1.0
        step = 0.01
        ledger = PrivacyLedger(capacity=capacity)
        threads = 8
        barrier = threading.Barrier(threads)
        refused = []

        def spend() -> None:
            barrier.wait()
            for _ in range(50):
                try:
                    ledger.charge("step", step)
                except BudgetExceededError:
                    refused.append(1)

        workers = [threading.Thread(target=spend) for _ in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert ledger.total_epsilon <= capacity * (1.0 + 1e-6)
        assert len(ledger) == 100  # exactly capacity / step successes
        assert len(refused) == threads * 50 - 100

    def test_ledger_pickles_without_its_lock(self):
        import pickle

        ledger = PrivacyLedger(capacity=1.0)
        ledger.charge("a", 0.25)
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.total_epsilon == pytest.approx(0.25)
        clone.charge("b", 0.25)  # the restored ledger has a working lock
        assert clone.total_epsilon == pytest.approx(0.5)
        assert ledger.total_epsilon == pytest.approx(0.25)

    def test_prefilled_spends_total_is_consistent(self):
        """Constructing with existing spends must seed the running total."""
        ledger = PrivacyLedger(
            spends=[BudgetSpend("a", 0.25), BudgetSpend("b", 0.5, charged_epsilon=0.1)]
        )
        assert ledger.total_epsilon == pytest.approx(0.35)
        ledger.charge("c", 0.05)
        assert ledger.total_epsilon == pytest.approx(0.4)
