"""Tests for the assumption-dependent private baselines (A1/A2/A3 estimators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BoundedLaplaceMean,
    BoundedLaplaceVariance,
    CoinPressMean,
    FiniteDomainLaplaceMean,
    KarwaVadhanGaussianMean,
    KarwaVadhanGaussianVariance,
    KSUHeavyTailedMean,
)
from repro.distributions import Gaussian, StudentT
from repro.exceptions import AssumptionRequiredError, InsufficientDataError


class TestAssumptionEnforcement:
    """Every assumption-dependent baseline must refuse to run bare (Table 1)."""

    @pytest.mark.parametrize(
        "factory",
        [
            BoundedLaplaceMean,
            BoundedLaplaceVariance,
            FiniteDomainLaplaceMean,
            KarwaVadhanGaussianMean,
            KarwaVadhanGaussianVariance,
            CoinPressMean,
            KSUHeavyTailedMean,
        ],
    )
    def test_bare_construction_raises(self, factory):
        with pytest.raises(AssumptionRequiredError):
            factory()

    def test_invalid_assumption_values_rejected(self):
        with pytest.raises(AssumptionRequiredError):
            BoundedLaplaceMean(radius=-1.0)
        with pytest.raises(AssumptionRequiredError):
            KarwaVadhanGaussianVariance(sigma_min=2.0, sigma_max=1.0)
        with pytest.raises(AssumptionRequiredError):
            KSUHeavyTailedMean(radius=10.0, moment_order=1, moment_bound=1.0)


class TestBoundedLaplace:
    def test_mean_accuracy_with_tight_bound(self, rng):
        data = Gaussian(5.0, 1.0).sample(20_000, rng)
        est = BoundedLaplaceMean(radius=10.0).estimate(data, 1.0, rng)
        assert est == pytest.approx(5.0, abs=0.2)

    def test_mean_error_grows_with_loose_bound(self):
        tight_errors, loose_errors = [], []
        for seed in range(15):
            gen = np.random.default_rng(seed)
            data = Gaussian(0.0, 1.0).sample(2000, gen)
            tight_errors.append(abs(BoundedLaplaceMean(radius=10.0).estimate(data, 0.5, gen)))
            loose_errors.append(abs(BoundedLaplaceMean(radius=1e6).estimate(data, 0.5, gen)))
        assert np.median(loose_errors) > np.median(tight_errors)

    def test_variance_accuracy(self, rng):
        data = Gaussian(0.0, 2.0).sample(40_000, rng)
        est = BoundedLaplaceVariance(sigma_max=5.0).estimate(data, 1.0, rng)
        assert est == pytest.approx(4.0, rel=0.3)

    def test_clipping_bias_with_wrong_bound(self, rng):
        """If sigma_max is an underestimate, the variance is badly biased down."""
        data = Gaussian(0.0, 10.0).sample(40_000, rng)
        est = BoundedLaplaceVariance(sigma_max=1.0).estimate(data, 1.0, rng)
        assert est < 50.0


class TestFiniteDomain:
    def test_accuracy_inside_domain(self, rng):
        data = rng.uniform(400, 600, size=10_000)
        est = FiniteDomainLaplaceMean(domain_size=1000).estimate(data, 1.0, rng)
        assert est == pytest.approx(float(np.mean(data)), abs=5.0)

    def test_noise_grows_with_domain(self):
        small, large = [], []
        for seed in range(20):
            gen = np.random.default_rng(seed)
            data = np.full(500, 10.0)
            small.append(FiniteDomainLaplaceMean(domain_size=100).estimate(data, 0.5, gen))
            large.append(FiniteDomainLaplaceMean(domain_size=10**6).estimate(data, 0.5, gen))
        assert np.std(large) > np.std(small)


class TestKarwaVadhan:
    def test_mean_accuracy(self, rng):
        data = Gaussian(42.0, 2.0).sample(20_000, rng)
        est = KarwaVadhanGaussianMean(radius=1000.0, sigma_min=0.5, sigma_max=5.0).estimate(
            data, 1.0, rng
        )
        assert est == pytest.approx(42.0, abs=0.5)

    def test_mean_with_far_location(self, rng):
        data = Gaussian(-800.0, 2.0).sample(20_000, rng)
        est = KarwaVadhanGaussianMean(radius=1000.0, sigma_min=0.5, sigma_max=5.0).estimate(
            data, 1.0, rng
        )
        assert est == pytest.approx(-800.0, abs=1.0)

    def test_variance_accuracy(self, rng):
        data = Gaussian(0.0, 3.0).sample(40_000, rng)
        est = KarwaVadhanGaussianVariance(sigma_min=0.1, sigma_max=100.0).estimate(data, 1.0, rng)
        assert est == pytest.approx(9.0, rel=0.4)

    def test_small_sample_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            KarwaVadhanGaussianMean(radius=10.0, sigma_max=1.0).estimate([1.0] * 4, 1.0, rng)


class TestCoinPress:
    def test_accuracy_with_loose_initial_range(self, rng):
        data = Gaussian(77.0, 1.0).sample(20_000, rng)
        est = CoinPressMean(radius=1e5, sigma_max=2.0).estimate(data, 1.0, rng)
        assert est == pytest.approx(77.0, abs=1.0)

    def test_more_rounds_tolerate_looser_range(self):
        one_round_errors, three_round_errors = [], []
        for seed in range(12):
            gen = np.random.default_rng(seed)
            data = Gaussian(5.0, 1.0).sample(5_000, gen)
            one = CoinPressMean(radius=1e6, sigma_max=2.0, rounds=1).estimate(data, 0.5, gen)
            three = CoinPressMean(radius=1e6, sigma_max=2.0, rounds=3).estimate(data, 0.5, gen)
            one_round_errors.append(abs(one - 5.0))
            three_round_errors.append(abs(three - 5.0))
        assert np.median(three_round_errors) < np.median(one_round_errors)


class TestKSUHeavyTailed:
    def test_accuracy_on_student_t(self, rng):
        dist = StudentT(df=3.0, loc=10.0)
        data = dist.sample(40_000, rng)
        est = KSUHeavyTailedMean(radius=100.0, moment_order=2, moment_bound=5.0).estimate(
            data, 1.0, rng
        )
        assert est == pytest.approx(10.0, abs=1.0)

    def test_loose_moment_bound_hurts(self):
        tight, loose = [], []
        for seed in range(12):
            gen = np.random.default_rng(seed)
            data = StudentT(df=3.0).sample(5_000, gen)
            tight.append(
                abs(
                    KSUHeavyTailedMean(radius=100.0, moment_order=2, moment_bound=3.0).estimate(
                        data, 0.5, gen
                    )
                )
            )
            loose.append(
                abs(
                    KSUHeavyTailedMean(
                        radius=100.0, moment_order=2, moment_bound=3000.0
                    ).estimate(data, 0.5, gen)
                )
            )
        assert np.median(loose) > np.median(tight)
