"""``repro compose``: plan generation and a real multi-process up/down.

Plan generation is asserted in detail (port allocation, shared seed,
coordinator wiring, per-shard audit paths, pinned-dataset detection);
one small two-shard cluster is actually booted as subprocesses and driven
through the router — the full operator path, kept to one test so the
tier-1 suite stays quick (the 4-shard soak lives in the CI cluster job).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.cluster.compose import (
    compose_down,
    compose_ps,
    compose_up,
    generate_plan,
)
from repro.exceptions import DomainError
from repro.service import QueryService


@pytest.fixture
def workspace(tmp_path):
    """A serving config with datasets on disk plus a compose directory."""
    rng = np.random.default_rng(3)
    for name in ("salaries", "heights", "ages"):
        np.save(tmp_path / f"{name}.npy", rng.normal(100.0, 10.0, 2_000))
    config = {
        "service": {"seed": 17, "cache_size": 64, "workers": 1},
        "datasets": [
            {"name": "salaries", "source": "salaries.npy", "group": "clinical"},
            {"name": "heights", "source": "heights.npy", "group": "clinical"},
            {"name": "ages", "source": "ages.npy", "budget": 4.0},
        ],
        "groups": {"clinical": {"budget": 20.0}},
        "observability": {"trace_ring": 64, "audit_log": "audit.jsonl"},
        "cluster": {"shards": 2},
    }
    config_path = tmp_path / "cluster.json"
    config_path.write_text(json.dumps(config, indent=2) + "\n")
    return config_path, tmp_path / "deploy"


class TestGeneratePlan:
    def test_plan_files_and_ports(self, workspace):
        config_path, deploy = workspace
        plan = generate_plan(config_path, deploy, shards=3)
        assert plan.shards == 3
        # every allocated port is distinct: nothing can shadow anything
        ports = [plan.coordinator_port, plan.router_port, *plan.shard_ports]
        assert len(set(ports)) == len(ports)
        assert [path.name for path in plan.shard_configs] == [
            "shard0.json", "shard1.json", "shard2.json"
        ]
        assert plan.router_plan.exists()
        assert (deploy / "plan.json").exists()

    def test_shard_configs_share_seed_and_wire_coordinator(self, workspace):
        config_path, deploy = workspace
        plan = generate_plan(config_path, deploy)
        documents = [
            json.loads(path.read_text()) for path in plan.shard_configs
        ]
        # bit-for-bit parity requires one seed across every replica
        assert {doc["service"]["seed"] for doc in documents} == {17}
        for index, doc in enumerate(documents):
            assert doc["cluster"]["shard_index"] == index
            assert doc["cluster"]["coordinator"] == (
                f"{plan.host}:{plan.coordinator_port}"
            )
            assert doc["service"]["port"] == plan.shard_ports[index]
            # one writer per audit hash chain
            assert doc["observability"]["audit_log"].endswith(
                f"audit.shard{index}.jsonl"
            )
            # dataset sources were absolutized against the template's dir
            for dataset in doc["datasets"]:
                assert dataset["source"].startswith("/")

    def test_pinned_is_exactly_the_private_budget_datasets(self, workspace):
        config_path, deploy = workspace
        plan = generate_plan(config_path, deploy)
        assert plan.pinned == ["ages"]
        router = json.loads(plan.router_plan.read_text())
        assert router["pinned"] == ["ages"]
        assert len(router["shards"]) == 2
        assert router["trace_ring"] == 64

    def test_missing_seed_fails_before_any_process(self, workspace):
        config_path, deploy = workspace
        document = json.loads(config_path.read_text())
        del document["service"]["seed"]
        config_path.write_text(json.dumps(document))
        with pytest.raises(DomainError, match="seed"):
            generate_plan(config_path, deploy)

    def test_zero_shards_rejected(self, workspace):
        config_path, deploy = workspace
        with pytest.raises(DomainError, match="shard count"):
            generate_plan(config_path, deploy, shards=0)


class TestComposeLifecycle:
    def test_up_query_parity_ps_down(self, workspace):
        config_path, deploy = workspace
        with compose_up(config_path, deploy) as handle:
            report = compose_ps(deploy)
            assert {entry["name"] for entry in report} == {
                "coordinator", "shard0", "shard1", "router"
            }
            assert all(entry["alive"] for entry in report)

            client = ServiceClient(handle.router_url)
            health = client.health()
            assert health["status"] == "ok"
            assert health["shards"]["healthy"] == 2

            # parity vs a single-process service under the same seed
            reference = QueryService(seed=17)
            reference.registry.create_group("clinical", 20.0)
            rng = np.random.default_rng(3)
            for name in ("salaries", "heights", "ages"):
                data = rng.normal(100.0, 10.0, 2_000)
                if name == "ages":
                    reference.register(name, data, 4.0)
                else:
                    reference.register(name, data, None, group="clinical")
            for dataset, kind in (
                ("salaries", "mean"), ("heights", "variance"), ("ages", "iqr")
            ):
                status, doc = client.query(dataset, kind, epsilon=0.4)
                expected = reference.query(dataset, kind, epsilon=0.4)
                assert status == 200, doc
                assert doc["value"] == expected.value, (dataset, kind)

            pids = [entry["pid"] for entry in report]

        # context exit == down: everything reaped, state cleared
        assert not (deploy / "state.json").exists()
        assert compose_ps(deploy) == []
        assert compose_down(deploy) == 0  # idempotent
        import os

        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

        # no process may have crashed along the way
        for log in deploy.glob("*.log"):
            assert "Traceback" not in log.read_text(), log
