"""Smoke tests running every example end-to-end with a tiny n.

The examples are executable documentation; silently rotting (an API drift, a
renamed argument) would be worse than a test failure.  Each one accepts its
dataset size on the command line precisely so this suite can run it in a
couple of seconds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: (script, tiny-n argument, substrings that must appear on stdout)
CASES = [
    ("quickstart.py", "4000", ["private mean", "private variance", "Total epsilon spent"]),
    ("salary_survey.py", "4000", ["universal estimator", "private IQR"]),
    (
        "service_quickstart.py",
        "4000",
        ["cache hit): yes", "status=refused", "baseline.bounded_laplace_mean",
         "=== Accounting ==="],
    ),
    (
        "service_async_quickstart.py",
        "4000",
        ["cache hit): yes", "status=refused", "joint group 'api'",
         "baseline.bounded_laplace_mean over HTTP", "kinds catalogue",
         "answered on the loop"],
    ),
    (
        "service_admin_quickstart.py",
        "4000",
        ["unchanged reload   : applied=[] (unchanged=True)",
         "applied ['add_dataset', 'rotate_analyst_budgets']",
         "error=draining", "applied ['remove_dataset']", "429",
         "matches JSON stats: True"],
    ),
]


def _run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )


@pytest.mark.parametrize("script, tiny_n, markers", CASES, ids=[c[0] for c in CASES])
def test_example_runs_end_to_end(script, tiny_n, markers):
    completed = _run_example(script, tiny_n)
    assert completed.returncode == 0, (
        f"{script} failed:\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert "Traceback" not in completed.stderr
    for marker in markers:
        assert marker in completed.stdout, (
            f"{script} output is missing {marker!r}:\n{completed.stdout}"
        )
