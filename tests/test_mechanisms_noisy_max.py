"""Tests for the report-noisy-max primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.exceptions import DomainError, PrivacyParameterError
from repro.mechanisms import report_noisy_max


class TestReportNoisyMax:
    def test_picks_clear_winner(self, rng):
        counts = [1.0, 2.0, 1000.0, 3.0]
        picks = [report_noisy_max(counts, 1.0, rng) for _ in range(100)]
        assert np.mean([p == 2 for p in picks]) > 0.95

    def test_returns_valid_index(self, rng):
        counts = np.arange(10.0)
        for _ in range(50):
            assert 0 <= report_noisy_max(counts, 0.5, rng) < 10

    def test_low_epsilon_is_noisier(self):
        counts = [0.0, 5.0]
        noisy_picks = [
            report_noisy_max(counts, 0.05, np.random.default_rng(s)) for s in range(200)
        ]
        exact_picks = [
            report_noisy_max(counts, 50.0, np.random.default_rng(s)) for s in range(200)
        ]
        assert np.mean(exact_picks) > np.mean(noisy_picks)

    def test_single_entry(self, rng):
        assert report_noisy_max([7.0], 1.0, rng) == 0

    def test_empty_rejected(self, rng):
        with pytest.raises(DomainError):
            report_noisy_max([], 1.0, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            report_noisy_max([1.0], 0.0, rng)

    def test_invalid_sensitivity_rejected(self, rng):
        with pytest.raises(DomainError):
            report_noisy_max([1.0], 1.0, rng, sensitivity=0.0)

    def test_ledger_charged(self, rng):
        ledger = PrivacyLedger()
        report_noisy_max([1.0, 2.0], 0.4, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.4)
