"""Tests for the Theorem 3.4 packing construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import build_packing_instance, packing_lower_bound
from repro.exceptions import DomainError


class TestPackingInstance:
    def test_number_of_datasets(self):
        instance = build_packing_instance(domain_size=2**8, n=500, epsilon=0.5)
        assert instance.levels == 8
        assert len(instance.datasets) == 9

    def test_base_dataset_is_all_zeros(self):
        instance = build_packing_instance(2**6, 300, 1.0)
        assert np.all(instance.datasets[0] == 0.0)

    def test_level_datasets_have_expected_structure(self):
        instance = build_packing_instance(2**6, 300, 1.0)
        for level in range(1, instance.levels + 1):
            data = instance.datasets[level]
            changed = np.count_nonzero(data)
            assert changed == instance.changed_per_level
            assert np.max(data) == 2.0**level

    def test_true_means_match_theorem(self):
        instance = build_packing_instance(2**6, 500, 0.5)
        means = instance.true_means()
        assert means[0] == 0.0
        for level in range(1, instance.levels + 1):
            expected = 2.0**level * instance.changed_per_level / instance.n
            assert means[level] == pytest.approx(expected)

    def test_widths(self):
        instance = build_packing_instance(2**5, 300, 1.0)
        widths = instance.widths()
        assert widths[0] == 0.0
        assert widths[3] == 8.0

    def test_lower_bound_grows_with_level(self):
        instance = build_packing_instance(2**10, 500, 0.5)
        assert packing_lower_bound(instance, 8) > packing_lower_bound(instance, 2)
        assert packing_lower_bound(instance, 0) == 0.0

    def test_invalid_level_rejected(self):
        instance = build_packing_instance(2**4, 200, 1.0)
        with pytest.raises(DomainError):
            packing_lower_bound(instance, 99)

    def test_small_n_rejected(self):
        with pytest.raises(DomainError):
            build_packing_instance(2**20, n=2, epsilon=0.01)

    def test_invalid_domain_rejected(self):
        with pytest.raises(DomainError):
            build_packing_instance(1, 100, 1.0)
