"""Tests for the Laplace mechanism primitive."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting import PrivacyLedger
from repro.exceptions import PrivacyParameterError
from repro.mechanisms import laplace_mechanism, laplace_noise, laplace_tail_bound


class TestLaplaceNoise:
    def test_zero_scale_returns_zero(self):
        assert laplace_noise(0.0) == 0.0

    def test_zero_scale_array(self):
        np.testing.assert_array_equal(laplace_noise(0.0, size=5), np.zeros(5))

    def test_negative_scale_rejected(self):
        with pytest.raises(PrivacyParameterError):
            laplace_noise(-1.0)

    def test_non_finite_scale_rejected(self):
        with pytest.raises(PrivacyParameterError):
            laplace_noise(float("inf"))

    def test_deterministic_with_seed(self):
        assert laplace_noise(1.0, rng=3) == laplace_noise(1.0, rng=3)

    def test_size_argument_shape(self):
        draws = laplace_noise(2.0, rng=0, size=100)
        assert draws.shape == (100,)

    def test_empirical_scale_matches(self, rng):
        draws = laplace_noise(3.0, rng=rng, size=200_000)
        # Laplace(b) has standard deviation b * sqrt(2).
        assert np.std(draws) == pytest.approx(3.0 * math.sqrt(2.0), rel=0.05)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.05)


class TestLaplaceMechanism:
    def test_adds_noise_around_value(self, rng):
        draws = [laplace_mechanism(10.0, 1.0, 1.0, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(10.0, abs=0.15)

    def test_zero_sensitivity_is_exact(self, rng):
        assert laplace_mechanism(5.0, 0.0, 1.0, rng) == 5.0

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            laplace_mechanism(1.0, 1.0, 0.0, rng)

    def test_invalid_sensitivity_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            laplace_mechanism(1.0, -1.0, 1.0, rng)

    def test_ledger_records_spend(self, rng):
        ledger = PrivacyLedger()
        laplace_mechanism(1.0, 1.0, 0.25, rng, ledger=ledger, label="count")
        assert ledger.total_epsilon == pytest.approx(0.25)
        assert ledger.spends[0].label == "count"

    def test_smaller_epsilon_means_more_noise(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        tight = [laplace_mechanism(0.0, 1.0, 10.0, rng_a) for _ in range(3000)]
        loose = [laplace_mechanism(0.0, 1.0, 0.1, rng_b) for _ in range(3000)]
        assert np.std(loose) > np.std(tight)


class TestLaplaceTailBound:
    def test_monotone_in_beta(self):
        assert laplace_tail_bound(1.0, 0.01) > laplace_tail_bound(1.0, 0.1)

    def test_scales_linearly_with_scale(self):
        assert laplace_tail_bound(2.0, 0.1) == pytest.approx(2.0 * laplace_tail_bound(1.0, 0.1))

    def test_invalid_beta_rejected(self):
        with pytest.raises(PrivacyParameterError):
            laplace_tail_bound(1.0, 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(PrivacyParameterError):
            laplace_tail_bound(-1.0, 0.1)

    @given(
        scale=st.floats(min_value=0.01, max_value=100.0),
        beta=st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_holds_empirically(self, scale, beta):
        """Pr[|Lap(scale)| > t] is exactly exp(-t/scale), so the bound equals beta."""
        t = laplace_tail_bound(scale, beta)
        assert math.exp(-t / scale) == pytest.approx(beta, rel=1e-9)
