"""Tests for the universal IQR estimator ``EstimateIQR`` (Algorithm 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting import PrivacyLedger
from repro.core import estimate_iqr
from repro.distributions import Gaussian, LaplaceDistribution, LogNormal, Uniform
from repro.exceptions import InsufficientDataError, PrivacyParameterError


def _median_relative_error(distribution, n, epsilon, trials=6, **kwargs):
    errors = []
    truth = distribution.iqr
    for seed in range(trials):
        gen = np.random.default_rng(seed)
        data = distribution.sample(n, gen)
        result = estimate_iqr(data, epsilon, 0.1, gen, **kwargs)
        errors.append(abs(result.iqr - truth) / truth)
    return float(np.median(errors))


class TestUniversalIQRAccuracy:
    def test_gaussian(self):
        assert _median_relative_error(Gaussian(0.0, 1.0), 10_000, 1.0) < 0.1

    def test_gaussian_with_huge_mean(self):
        assert _median_relative_error(Gaussian(1.0e5, 2.0), 10_000, 1.0) < 0.1

    def test_uniform(self):
        assert _median_relative_error(Uniform(0.0, 10.0), 10_000, 1.0) < 0.1

    def test_laplace(self):
        assert _median_relative_error(LaplaceDistribution(0.0, 3.0), 10_000, 1.0) < 0.15

    def test_lognormal(self):
        assert _median_relative_error(LogNormal(0.0, 1.0), 10_000, 1.0) < 0.15

    def test_small_scale(self):
        assert _median_relative_error(Gaussian(0.0, 1e-3), 10_000, 1.0) < 0.15

    def test_error_decreases_with_n(self):
        dist = Gaussian(0.0, 5.0)
        assert _median_relative_error(dist, 20_000, 0.5) < _median_relative_error(
            dist, 1_000, 0.5
        )


class TestUniversalIQRMechanics:
    def test_quartiles_ordered(self, rng):
        data = Gaussian(0.0, 1.0).sample(5000, rng)
        result = estimate_iqr(data, 1.0, 0.1, rng)
        assert result.upper_quartile.value >= result.lower_quartile.value
        assert result.iqr == pytest.approx(
            result.upper_quartile.value - result.lower_quartile.value
        )

    def test_bucket_size_is_lower_bound_over_n(self, rng):
        data = Gaussian(0.0, 1.0).sample(5000, rng)
        result = estimate_iqr(data, 1.0, 0.1, rng)
        assert result.bucket_size == pytest.approx(result.iqr_lower_bound.value / data.size)

    def test_sample_iqr_diagnostic(self, rng):
        data = Gaussian(0.0, 1.0).sample(4000, rng)
        result = estimate_iqr(data, 1.0, 0.1, rng)
        sorted_data = np.sort(data)
        expected = sorted_data[3 * 4000 // 4 - 1] - sorted_data[4000 // 4 - 1]
        assert result.sample_iqr == pytest.approx(float(expected))

    def test_explicit_bucket_size(self, rng):
        data = Gaussian(0.0, 1.0).sample(5000, rng)
        result = estimate_iqr(data, 1.0, 0.1, rng, bucket_size=0.001)
        assert result.bucket_size == pytest.approx(0.001)
        assert result.iqr_lower_bound.branch == "given"

    def test_ledger_spend_close_to_budget(self, rng):
        ledger = PrivacyLedger()
        data = Gaussian(0.0, 1.0).sample(5000, rng)
        estimate_iqr(data, 0.9, 0.1, rng, ledger=ledger)
        assert ledger.total_epsilon == pytest.approx(0.9, rel=1e-6)


class TestUniversalIQRValidation:
    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(InsufficientDataError):
            estimate_iqr(np.arange(4.0), 1.0, 0.1, rng)

    def test_invalid_epsilon_rejected(self, rng):
        with pytest.raises(PrivacyParameterError):
            estimate_iqr(np.arange(100.0), 0.0, 0.1, rng)
