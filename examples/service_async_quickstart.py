"""Async serving quickstart: a config-driven multi-dataset deployment.

The batch examples release statistics once; `service_quickstart.py` runs an
in-process query service.  This example shows the *deployment* shape: a
declarative serving config boots three datasets in one process — two of them
under a **joint budget group** (one epsilon cap spanning both) — behind the
**asyncio front-end**, which answers cache hits and refusals directly on the
event loop and dispatches fresh releases to a worker thread.  An asyncio
client drives the full life cycle over real HTTP:

1. fresh queries charge whichever budget backs the dataset,
2. an identical repeat is a cache hit at zero marginal epsilon,
3. spending the joint cap through one member refuses queries on *both*
   members (the standalone dataset is unaffected),
4. the accounting snapshot shows budgets, groups and front-end counters.

Run as::

    python examples/service_async_quickstart.py [n_records]
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.service import build_service, load_serving_config, start_async_server

CONFIG = """
[service]
seed = 2023
cache_size = 1024
frontend = "async"
port = 0

[groups.api]          # checkout + search share this single epsilon cap
budget = 1.0

[[datasets]]
name = "checkout_ms"
source = "checkout.npy"
group = "api"

[[datasets]]
name = "search_ms"
source = "search.npy"
group = "api"

[[datasets]]
name = "payments_ms"
source = "payments.npy"
budget = 2.0
"""


async def _request(host: str, port: int, path: str, payload=None):
    """Minimal asyncio HTTP client: one keep-alive-less JSON round trip."""
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode()
    method = "GET" if payload is None else "POST"
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()
    status_line = await reader.readline()
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if line.lower().startswith(b"content-length"):
            length = int(line.split(b":")[1])
    document = json.loads(await reader.readexactly(length))
    writer.close()
    await writer.wait_closed()
    return int(status_line.split()[1]), document


async def main(n_records: int = 30_000) -> None:
    rng = np.random.default_rng(23)
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        np.save(base / "checkout.npy", rng.gamma(2.0, 12.0, n_records))
        np.save(base / "search.npy", rng.gamma(1.5, 4.0, n_records))
        np.save(base / "payments.npy", rng.gamma(3.0, 30.0, n_records))
        (base / "serving.toml").write_text(CONFIG)

        config = load_serving_config(base / "serving.toml")
        with build_service(config) as built:
            server = await start_async_server(built.service, quiet=True)
            host, port = server.server_address
            print("=== async multi-dataset serving quickstart ===")
            print(f"serving {len(config.datasets)} datasets at {server.url} "
                  f"(joint group 'api': epsilon = 1.0)\n")

            _, doc = await _request(
                host, port, "/query",
                {"dataset": "checkout_ms", "kind": "mean", "epsilon": 0.4},
            )
            print(f"checkout mean      : {doc['value']:8.3f} ms"
                  f"   (charged {doc['epsilon_charged']:.3f} of the joint cap)")

            _, doc = await _request(
                host, port, "/query",
                {"dataset": "checkout_ms", "kind": "mean", "epsilon": 0.4},
            )
            print(f"refresh (cache hit): {'yes' if doc['cached'] else 'no'}"
                  f"            (charged {doc['epsilon_charged']:.3f}, "
                  "answered on the event loop)")

            _, doc = await _request(
                host, port, "/query",
                {"dataset": "search_ms", "kind": "quantile", "epsilon": 0.35,
                 "params": {"levels": [0.5, 0.99]}},
            )
            p50, p99 = doc["value"]
            print(f"search p50 / p99   : {p50:8.3f} / {p99:.3f} ms"
                  f"   (same joint cap: charged {doc['epsilon_charged']:.3f})")

            # The joint cap is nearly gone — BOTH members now refuse...
            for dataset in ("checkout_ms", "search_ms"):
                status, doc = await _request(
                    host, port, "/query",
                    {"dataset": dataset, "kind": "iqr", "epsilon": 0.5},
                )
                print(f"{dataset:<19}: status={doc['status']} "
                      f"(HTTP {status}, joint budget exhausted)")

            # ...while the standalone dataset still has its private budget.
            _, doc = await _request(
                host, port, "/query",
                {"dataset": "payments_ms", "kind": "mean", "epsilon": 0.5},
            )
            print(f"payments mean      : {doc['value']:8.3f} ms"
                  f"   (own budget: charged {doc['epsilon_charged']:.3f})")

            # Every registered estimator kind — including the adapted
            # prior-work baselines — is servable over HTTP; GET /kinds
            # advertises the catalogue with each kind's parameter schema.
            _, catalogue = await _request(host, port, "/kinds")
            n_baselines = sum(
                1 for kind in catalogue["kinds"] if kind.startswith("baseline.")
            )
            print(f"kinds catalogue    : {len(catalogue['kinds'])} kinds "
                  f"({n_baselines} adapted baselines)")
            _, doc = await _request(
                host, port, "/query",
                {"dataset": "payments_ms",
                 "kind": "baseline.bounded_laplace_mean",
                 "epsilon": 0.25, "params": {"radius": 2000.0}},
            )
            print(f"baseline mean      : {doc['value']:8.3f} ms"
                  f"   (baseline.bounded_laplace_mean over HTTP, "
                  f"charged {doc['epsilon_charged']:.3f})")

            print("\n=== Accounting ===")
            _, stats = await _request(host, port, "/datasets")
            group = stats["groups"]["api"]
            print(f"joint group 'api'  : spent {group['budget']['spent']:.3f} of "
                  f"{group['budget']['capacity']:.3f} epsilon across "
                  f"{group['datasets']}")
            cache = stats["cache"]
            front = stats["frontend"]
            print(f"cache              : {cache['hits']} hits / "
                  f"{cache['misses']} misses")
            print(f"frontend           : {front['frontend']} — "
                  f"{front['answered_on_loop']} answered on the loop, "
                  f"{front['executed']} dispatched to workers")
            await server.aclose()


if __name__ == "__main__":
    asyncio.run(main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000))
