"""Scenario: choosing epsilon — the privacy/accuracy frontier for a release.

A data custodian deciding how much budget to spend on a statistic wants the
error as a function of epsilon.  This example sweeps epsilon for all three
universal estimators on a fixed dataset-generating process and prints the
frontier table (the script equivalent of benchmark E15), together with the
non-private sampling error floor so the custodian can see where extra budget
stops buying accuracy.

Run as::

    python examples/privacy_accuracy_frontier.py
"""

from __future__ import annotations

import numpy as np

from repro import estimate_iqr, estimate_mean, estimate_variance
from repro.analysis import run_statistical_trials
from repro.bench import format_table
from repro.distributions import Gaussian


def main() -> None:
    dist = Gaussian(mu=120.0, sigma=15.0)  # e.g. systolic blood pressure
    n = 20_000
    trials = 6
    epsilons = [0.05, 0.1, 0.25, 0.5, 1.0]

    print("=== Privacy/accuracy frontier (n = 20,000, blood-pressure-like data) ===\n")

    rows = []
    for epsilon in epsilons:
        mean_res = run_statistical_trials(
            lambda d, g, e=epsilon: estimate_mean(d, e, 0.1, g).mean,
            dist, "mean", n, trials, np.random.default_rng(int(epsilon * 1000)),
        )
        var_res = run_statistical_trials(
            lambda d, g, e=epsilon: estimate_variance(d, e, 0.1, g).variance,
            dist, "variance", n, trials, np.random.default_rng(int(epsilon * 1000) + 1),
        )
        iqr_res = run_statistical_trials(
            lambda d, g, e=epsilon: estimate_iqr(d, e, 0.1, g).iqr,
            dist, "iqr", n, trials, np.random.default_rng(int(epsilon * 1000) + 2),
        )
        rows.append(
            [epsilon, mean_res.summary.q90, var_res.summary.q90, iqr_res.summary.q90]
        )

    floor_mean = run_statistical_trials(
        lambda d, g: float(np.mean(d)), dist, "mean", n, trials, np.random.default_rng(99)
    ).summary.q90
    floor_var = run_statistical_trials(
        lambda d, g: float(np.var(d)), dist, "variance", n, trials, np.random.default_rng(98)
    ).summary.q90
    floor_iqr = run_statistical_trials(
        lambda d, g: float(np.quantile(d, 0.75) - np.quantile(d, 0.25)),
        dist, "iqr", n, trials, np.random.default_rng(97),
    ).summary.q90
    rows.append(["(non-private)", floor_mean, floor_var, floor_iqr])

    print(format_table(["epsilon", "mean q90 error", "variance q90 error", "IQR q90 error"], rows))
    print(
        "\nReading the table: once the privacy error drops below the sampling floor\n"
        "(bottom row), increasing epsilon further buys essentially nothing — the\n"
        "'privacy is free' regime discussed in the paper's introduction."
    )


if __name__ == "__main__":
    main()
