"""Scenario: private aggregates over a telemetry table with no domain bounds.

Section 1.1.1 of the paper points out that empirical sum/mean estimation over
an unbounded domain is exactly the problem of answering self-join-free SQL
aggregates (``SELECT AVG(col) ...``) under user-level differential privacy: a
database engine cannot assume a public upper bound ``N`` on a column, and the
state-of-the-art truncation mechanisms pay for the assumed domain size.  This
example simulates that setting:

* a telemetry table with one latency reading per request, dominated by normal
  traffic but with a handful of pathological multi-minute outliers, and
* three DP queries over the raw column using the *empirical* (per-dataset)
  estimators of Section 3 — mean, median and p95 — with a per-query epsilon.

The private range finding keeps the noise proportional to the *actual* data
spread instead of the worst-case column domain, which is the practical content
of the instance-optimality result (Theorem 3.3).

Run as::

    python examples/sensor_telemetry_sql.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PrivacyLedger,
    estimate_empirical_mean,
    estimate_empirical_quantile,
)


def build_latency_table(rng: np.random.Generator, rows: int = 200_000) -> np.ndarray:
    """Latencies in microseconds: log-normal bulk plus rare timeout spikes."""
    bulk = rng.lognormal(mean=np.log(8_000), sigma=0.6, size=rows)
    timeouts = rng.uniform(30_000_000, 120_000_000, size=rows // 2000)  # 30-120 s
    table = np.concatenate([bulk, timeouts])
    rng.shuffle(table)
    return np.rint(table)  # the column is stored as integer microseconds


def main() -> None:
    rng = np.random.default_rng(3)
    latencies = build_latency_table(rng)
    n = latencies.size
    epsilon_per_query = 0.5
    ledger = PrivacyLedger()

    print("=== Telemetry table: SELECT-style DP aggregates (integer microseconds) ===")
    print(f"rows: {n}, per-query epsilon: {epsilon_per_query}\n")

    # AVG(latency)
    mean = estimate_empirical_mean(latencies, epsilon_per_query, 0.1, rng, ledger=ledger)
    print(f"DP AVG(latency)    : {mean.mean:12.0f} us   (exact {mean.true_mean:12.0f} us, "
          f"{mean.clipped_count} rows clipped)")
    print(f"  private range    : [{mean.range_used.low:.0f}, {mean.range_used.high:.0f}] us")

    # MEDIAN(latency)
    median = estimate_empirical_quantile(latencies, n // 2, epsilon_per_query, 0.1, rng, ledger=ledger)
    print(f"DP MEDIAN(latency) : {median.value:12.0f} us   (exact {median.true_value:12.0f} us, "
          f"rank error {median.rank_error})")

    # P95(latency)
    p95_rank = int(0.95 * n)
    p95 = estimate_empirical_quantile(latencies, p95_rank, epsilon_per_query, 0.1, rng, ledger=ledger)
    print(f"DP P95(latency)    : {p95.value:12.0f} us   (exact {p95.true_value:12.0f} us, "
          f"rank error {p95.rank_error})")

    print("\n=== Privacy accounting across the three queries ===")
    print(ledger.summary())


if __name__ == "__main__":
    main()
