"""Quickstart: estimate mean, variance and IQR of a dataset under pure ε-DP.

The point of the universal estimators is that this script needs to know
*nothing* about the data: no range for the mean, no bounds on the variance,
no distribution family.  Run it as::

    python examples/quickstart.py [n_records]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import PrivacyLedger, estimate_iqr, estimate_mean, estimate_variance


def main(n_records: int = 50_000) -> None:
    rng = np.random.default_rng(7)

    # Synthetic "adult heights in cm" dataset.  In a real deployment this would
    # be the sensitive column of a database table.
    heights = rng.normal(loc=171.3, scale=9.2, size=n_records)

    epsilon_per_query = 0.5

    print("=== Universal private estimators (no assumptions required) ===")
    print(f"records: {heights.size}, epsilon per query: {epsilon_per_query}\n")

    ledger = PrivacyLedger()
    mean_result = estimate_mean(heights, epsilon_per_query, rng=rng, ledger=ledger)
    print(f"private mean      : {mean_result.mean:9.3f}  (sample mean      {mean_result.sample_mean:9.3f})")
    print(f"  clipping range  : [{mean_result.range_used.low:.1f}, {mean_result.range_used.high:.1f}]"
          f"  points clipped: {mean_result.clipped_count}")

    variance_result = estimate_variance(heights, epsilon_per_query, rng=rng, ledger=ledger)
    print(f"private variance  : {variance_result.variance:9.3f}  (sample variance  {variance_result.sample_variance:9.3f})")

    iqr_result = estimate_iqr(heights, epsilon_per_query, rng=rng, ledger=ledger)
    print(f"private IQR       : {iqr_result.iqr:9.3f}  (sample IQR       {iqr_result.sample_iqr:9.3f})")

    print("\n=== Privacy accounting ===")
    print(ledger.summary())
    print(f"\nTotal epsilon spent across the three queries: {ledger.total_epsilon:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
