"""Control-plane quickstart: live reload, QoS, and metrics over HTTP.

`service_quickstart.py` runs the query service in-process and
`service_async_quickstart.py` shows the config-driven deployment; this
example adds the **operations** layer on top: the authenticated ``/admin``
surface, per-analyst token-bucket rate limiting, and the Prometheus
``/metrics`` exposition — all driven through :class:`repro.client.ServiceClient`,
the same stdlib client the ``repro query`` and ``repro admin`` CLI commands
use.  The life cycle:

1. boot a server from a declarative config with ``[admin]`` and ``[limits]``,
2. reload the *unchanged* config — a provable no-op (zero changes applied),
3. live-reload a config that adds a dataset and rotates an analyst budget:
   both take effect with no restart and no dropped requests,
4. drain the new dataset: cached answers keep serving while fresh releases
   refuse, then remove it in a follow-up reload,
5. burst past a rate limit and get structured 429s that never touch the
   privacy ledger,
6. scrape ``/metrics`` and cross-check a counter against the JSON stats,
7. follow one query end-to-end by trace id (client-supplied, echoed on the
   answer, inspectable via ``/debug/traces`` with per-stage spans),
8. after shutdown, verify the hash-chained audit trail and replay it to
   the exact epsilon every budget ledger reported — the privacy history is
   tamper-evident and reproducible offline.

Run as::

    python examples/service_admin_quickstart.py [n_records]
"""

from __future__ import annotations

import copy
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.client import ServiceClient
from repro.obs import replay_spend, verify_audit_log
from repro.service import build_service, make_server, parse_serving_config, serve_forever

TOKEN = "quickstart-secret"


def config_document(n_records: int, audit_log: Path) -> dict:
    rng = np.random.default_rng(23)
    return {
        "service": {"seed": 2023, "port": 0, "quiet": True},
        "datasets": [
            {
                "name": "latency_ms",
                "values": [round(v, 3) for v in rng.gamma(2.0, 12.0, n_records)],
                "budget": 4.0,
            }
        ],
        "admin": {"token": TOKEN},
        "limits": {"analysts": {"burster": {"rate": 0.001, "burst": 2}}},
        "observability": {"trace_ring": 64, "audit_log": str(audit_log)},
    }


def main(n_records: int = 30_000) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        audit_log = Path(tmp) / "audit.jsonl"
        document = config_document(n_records, audit_log)
        config = parse_serving_config(document)
        with build_service(config) as built:
            server = make_server(
                built.service, port=0, quiet=True,
                limiter=built.limiter, admin=built.admin,
            )
            thread = serve_forever(server)
            try:
                drive(server.url, document)
                ledgers = {
                    dataset.name: dataset.budget.to_json()["spent"]
                    for dataset in built.service.registry
                }
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        # build_service closed the audit log on exit; audit it offline.
        audit_offline(audit_log, ledgers)


def audit_offline(audit_log: Path, ledgers: dict) -> None:
    records, final_hash = verify_audit_log(audit_log)
    print(f"\n=== Audit trail (offline, server down) ===")
    print(f"chain verified     : {records} records, final hash "
          f"{final_hash[:16]}… (any flipped byte would fail here)")
    report = replay_spend(audit_log)
    for name, spent in sorted(ledgers.items()):
        replayed = report["owners"].get(f"dataset:{name}", {}).get("spent", 0.0)
        print(f"replayed spend     : dataset {name}: {replayed!r} epsilon "
              f"== live ledger: {replayed == spent}")


def drive(url: str, document: dict) -> None:
    client = ServiceClient(url, token=TOKEN)
    print("=== control-plane quickstart: live reload, QoS, metrics ===")
    print(f"server at {url}, admin token configured\n")

    _, state = client.admin_state()
    print(f"admin state        : enabled={state['admin']['enabled']}, "
          f"reloads={state['admin']['reloads']}")

    # 1. Reloading the unchanged config is a provable no-op.
    _, doc = client.admin_reload(document)
    print(f"unchanged reload   : applied={doc['applied']} "
          f"(unchanged={doc['unchanged']})")

    # 2. A live reload: add a dataset, rotate an analyst budget. No restart.
    candidate = copy.deepcopy(document)
    candidate["datasets"][0]["analyst_budgets"] = {"dashboard": 0.5}
    candidate["datasets"].append(
        {"name": "errors", "values": [float(v % 7) for v in range(512)],
         "budget": 1.0}
    )
    _, doc = client.admin_reload(candidate)
    actions = [change["action"] for change in doc["applied"]]
    print(f"live reload        : applied {sorted(actions)}")

    status, doc = client.query("errors", "mean", epsilon=0.3)
    print(f"new dataset serves : status={doc['status']} "
          f"(value {doc['value']:.3f}, no restart)")
    status, doc = client.query("latency_ms", "mean", epsilon=0.8,
                               analyst="dashboard")
    print(f"rotated budget live: status={doc['status']} "
          f"(dashboard capped at 0.5)")

    # 3. Drain: cached answers survive, fresh releases refuse, then remove.
    client.admin_drain("errors")
    status, doc = client.query("errors", "mean", epsilon=0.3)
    print(f"drained, cache hit : status={doc['status']} cached={doc['cached']}")
    status, doc = client.query("errors", "mean", epsilon=0.2)
    print(f"drained, fresh     : status={doc['status']} "
          f"(HTTP {status}, error={doc['error']['code']})")
    final = copy.deepcopy(candidate)
    final["datasets"] = [d for d in final["datasets"] if d["name"] != "errors"]
    _, doc = client.admin_reload(final)
    print(f"drained removal    : applied "
          f"{[change['action'] for change in doc['applied']]}")

    # 4. Rate limiting: the 'burster' analyst has a 2-token bucket.
    outcomes = []
    for step in range(4):
        status, doc = client.query("latency_ms", "mean",
                                   epsilon=0.11 + step / 100, analyst="burster")
        outcomes.append(status)
    print(f"burst of 4 queries : HTTP {outcomes} "
          "(429s are pre-admission: the ledger never moves)")

    # 5. /metrics: the Prometheus view agrees with the JSON stats.
    metrics = client.metrics()
    cache_hits = next(
        float(line.rpartition(" ")[2])
        for line in metrics.splitlines()
        if line.startswith("repro_cache_hits_total")
    )
    stats = client.stats()
    print(f"\n=== Metrics ===")
    print(f"scraped {len(metrics.splitlines())} exposition lines; "
          f"repro_cache_hits_total={cache_hits:.0f} "
          f"matches JSON stats: {cache_hits == stats['cache']['hits']}")
    _, state = client.admin_state()
    print(f"admin state        : reloads={state['admin']['reloads']}, "
          f"changes_applied={state['admin']['changes_applied']}, "
          f"rate limited={state['limits']['limited']}")

    # 6. Tracing: supply a trace id, get it echoed, inspect every stage.
    print("\n=== Tracing ===")
    status, doc = client.query("latency_ms", "variance", epsilon=0.4,
                               trace_id="quickstart-trace")
    print(f"traced query       : status={doc['status']} "
          f"trace={doc['trace']} (echoed from X-Repro-Trace-Id)")
    _, found = client.trace("quickstart-trace")
    stages = " -> ".join(span["name"] for span in found["trace"]["spans"])
    print(f"stages             : {stages}")
    engine = next(s for s in found["trace"]["spans"] if s["name"] == "engine")
    print(f"engine fan-out     : {engine['detail']['cells']} cell(s), "
          f"per-cell ms {engine['detail']['per_cell_ms']}")
    _, listing = client.traces()
    print(f"trace ring         : {listing['tracing']['held']} held of "
          f"{listing['tracing']['ring']}, "
          f"{listing['tracing']['recorded']} recorded")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
