"""Scenario: releasing salary statistics from a skewed, heavy-tailed survey.

Income data is the classic case where boundedness assumptions bite: salaries
are highly skewed, a handful of extreme earners dominate the tail, and nobody
knows a tight a-priori upper bound.  This example compares three releases of
the mean salary at the same privacy budget:

1. the **universal estimator** of this library (no assumptions),
2. a naive **bounded-Laplace** release with a cautious (i.e. loose) cap of
   $100M — the kind of "safe" bound an analyst would pick without better
   information, and
3. the same bounded-Laplace release with an overly tight $100k cap, showing
   the opposite failure mode (clipping bias).

It also releases the IQR — the robust scale statistic the paper studies —
which is far more informative than the variance for skewed pay data.

Run as::

    python examples/salary_survey.py [n_respondents]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import estimate_iqr, estimate_mean
from repro.baselines import BoundedLaplaceMean
from repro.distributions import LogNormal


def main(n_respondents: int = 80_000) -> None:
    rng = np.random.default_rng(11)

    # Salaries: log-normal body (median ~$58k) plus a sprinkle of executives
    # (one for every 200 regular respondents).
    body = LogNormal(mu_log=11.0, sigma_log=0.55).sample(n_respondents, rng)
    executives = LogNormal(mu_log=14.5, sigma_log=0.8).sample(
        max(n_respondents // 200, 2), rng
    )
    salaries = np.concatenate([body, executives])
    rng.shuffle(salaries)

    epsilon = 0.5
    true_mean = float(np.mean(salaries))
    sorted_salaries = np.sort(salaries)
    n = salaries.size
    true_iqr = float(sorted_salaries[3 * n // 4 - 1] - sorted_salaries[n // 4 - 1])

    print("=== Salary survey: private mean release (epsilon = 0.5) ===")
    print(f"records: {n},  exact sample mean: ${true_mean:,.0f}\n")

    universal = estimate_mean(salaries, epsilon, rng=rng)
    print(f"universal estimator (no assumptions) : ${universal.mean:,.0f}"
          f"   error ${abs(universal.mean - true_mean):,.0f}")

    loose = BoundedLaplaceMean(radius=100_000_000.0).estimate(salaries, epsilon, rng)
    print(f"bounded Laplace, cap $100M (loose A1) : ${loose:,.0f}"
          f"   error ${abs(loose - true_mean):,.0f}")

    tight = BoundedLaplaceMean(radius=100_000.0).estimate(salaries, epsilon, rng)
    print(f"bounded Laplace, cap $100k (tight A1) : ${tight:,.0f}"
          f"   error ${abs(tight - true_mean):,.0f}  (biased by clipping)")

    print("\n=== Salary spread: private IQR release (epsilon = 0.5) ===")
    iqr = estimate_iqr(salaries, epsilon, rng=rng)
    print(f"exact sample IQR  : ${true_iqr:,.0f}")
    print(f"private IQR       : ${iqr.iqr:,.0f}   error ${abs(iqr.iqr - true_iqr):,.0f}")
    print(f"(bucket size chosen privately: ${iqr.bucket_size:,.2f})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80_000)
