"""Serving quickstart: a budgeted private-query service in a dozen lines.

The batch examples release statistics once; a deployment answers *queries*
from many analysts against registered datasets, forever — until the privacy
budget is gone.  This example drives :class:`repro.service.QueryService`
through the full life cycle:

1. register a dataset with a finite total budget (and an analyst sub-budget),
2. answer fresh queries (each one charges the budget with the epsilon its
   estimator actually spent),
3. answer a *repeated* query from cache at zero marginal epsilon,
4. hit the budget wall and get a structured refusal — the ledger untouched,
5. inspect the accounting.

Run as::

    python examples/service_quickstart.py [n_records]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.service import QueryService


def main(n_records: int = 30_000) -> None:
    rng = np.random.default_rng(23)
    latencies_ms = rng.gamma(shape=2.0, scale=12.0, size=n_records)

    # A fixed service seed makes every answer reproducible and independent of
    # how many engine workers the service runs with.
    service = QueryService(seed=2023)
    service.register(
        "latency_ms",
        latencies_ms,
        total_budget=2.0,
        analyst_budgets={"dashboard": 0.75},
    )

    print("=== repro.service quickstart: private latency dashboard ===")
    print(f"records: {n_records}, total budget: epsilon = 2.0\n")

    answer = service.query("latency_ms", "mean", epsilon=0.5, analyst="dashboard")
    print(f"mean latency       : {answer.value:8.3f} ms"
          f"   (charged {answer.epsilon_charged:.3f}, remaining {answer.remaining:.3f})")

    answer = service.query(
        "latency_ms", "quantile", epsilon=0.25,
        params={"levels": [0.5, 0.99]}, analyst="dashboard",
    )
    p50, p99 = answer.value
    print(f"p50 / p99 latency  : {p50:8.3f} / {p99:.3f} ms"
          f"   (charged {answer.epsilon_charged:.3f}, remaining {answer.remaining:.3f})")

    # The dashboard refreshes: the identical query costs nothing the second time.
    repeat = service.query(
        "latency_ms", "quantile", epsilon=0.25,
        params={"levels": [0.5, 0.99]}, analyst="dashboard",
    )
    print(f"refresh (cache hit): {'yes' if repeat.cached else 'no'}"
          f"            (charged {repeat.epsilon_charged:.3f})")

    # The dashboard analyst has a 0.75 sub-budget and has spent ~0.735 of it.
    refused = service.query("latency_ms", "iqr", epsilon=0.5, analyst="dashboard")
    print(f"\nanalyst over-budget: status={refused.status} ({refused.message})")

    # Another analyst still has room in the shared total budget.
    answer = service.query("latency_ms", "iqr", epsilon=0.5, analyst="batch-report")
    print(f"iqr (other analyst): {answer.value:8.3f} ms"
          f"   (charged {answer.epsilon_charged:.3f}, remaining {answer.remaining:.3f})")

    # Prior-work baselines are first-class query kinds via the estimator-spec
    # registry: their assumption parameters travel as typed query params.
    answer = service.query(
        "latency_ms", "baseline.bounded_laplace_mean", epsilon=0.2,
        params={"radius": 500.0},
    )
    print(f"baseline mean      : {answer.value:8.3f} ms"
          f"   (baseline.bounded_laplace_mean, charged {answer.epsilon_charged:.3f})")

    # Spending the rest of the total budget produces a structured refusal.
    refused = service.query("latency_ms", "variance", epsilon=5.0)
    print(f"over total budget  : status={refused.status}")

    print("\n=== Accounting ===")
    stats = service.stats()
    budget = stats["datasets"][0]["budget"]
    cache = stats["cache"]
    print(f"spent {budget['spent']:.3f} of {budget['capacity']:.3f} epsilon "
          f"across {budget['releases']} releases; remaining {budget['remaining']:.3f}")
    print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
          f"({cache['size']} stored answers)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
