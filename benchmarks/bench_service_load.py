"""SERVICE_LOAD / CLUSTER_SCALING — open-loop load and shard scale-out.

**SERVICE_LOAD** drives one threaded ``repro serve`` front-end with an
*open-loop* workload: thousands of simulated analysts whose queries are
drawn from a catalogue under a zipfian popularity skew (a handful of hot
queries absorb most of the traffic — the regime the answer cache exists
for), arrivals scheduled on a fixed clock rather than after the previous
response (so queueing delay is *measured*, not hidden), a small slice of
over-budget queries mixed in so the refusal path runs under load.
Reported: achieved QPS, p50/p95/p99 latency from *scheduled arrival* to
completion, cache-hit share, refusal rate.

**CLUSTER_SCALING** boots a real 4-shard ``repro compose`` cluster
(coordinator + shards + router as separate processes) and replays the same
batched cache-warm workload against the router and against a single-process
server: the cluster must sustain >= 2x the single-process cached QPS.  The
workload is batched (``BATCH`` queries per POST over ~16 keep-alive
connections) because a single query per round-trip measures connection
handling, not the tier — batches amortise the router's parse/route cost and
let the shards' four GILs work in parallel.  The >= 2x floor is asserted on
machines with >= 4 cores (the CI cluster job); on smaller boxes the numbers
are still reported but a scale-out floor would be fiction — four shards
cannot beat one process on one core.

Emits ``results/service_load.json`` and ``results/cluster_scaling.json``.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.service import QueryService, make_server, serve_forever

SEED = 20230401
N = 4_000
TOTAL_BUDGET = 400.0

# -- SERVICE_LOAD shape ------------------------------------------------------
ANALYSTS = 2_000
CATALOGUE = 48          # distinct queries analysts can ask
ZIPF_S = 1.1            # popularity skew exponent
REQUESTS = 1_200        # total scheduled arrivals
CONNECTIONS = 16        # keep-alive worker connections
OFFERED_QPS = 600.0     # open-loop arrival rate
REFUSAL_SHARE = 24      # every k-th catalogue entry is over-budget

# -- CLUSTER_SCALING shape ---------------------------------------------------
SHARDS = 4
BATCH = 12              # queries per POST
BATCHES_PER_WORKER = 24


def _dataset(seed=3):
    return np.random.default_rng(seed).normal(120.0, 15.0, N)


def _percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=float), q))


class _Worker(threading.Thread):
    """One keep-alive connection draining its slice of the arrival schedule."""

    def __init__(self, host, port, jobs, start_at, results, lock):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.jobs = jobs              # [(arrival_offset, payload), ...]
        self.start_at = start_at
        self.results = results
        self.lock = lock

    def run(self):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        local = []
        try:
            for offset, payload in self.jobs:
                # open loop: wait for the scheduled arrival, never for the
                # previous response beyond what the connection forces
                delay = (self.start_at + offset) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                body = json.dumps(payload).encode()
                conn.request(
                    "POST", "/query", body,
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                document = json.loads(response.read())
                finished = time.perf_counter()
                local.append(
                    (finished - (self.start_at + offset), response.status, document)
                )
        finally:
            conn.close()
        with self.lock:
            self.results.extend(local)


def _drive_open_loop(host, port, payloads, offered_qps, connections):
    """Schedule ``payloads`` at ``offered_qps`` over ``connections`` workers."""
    schedule = [
        (index / offered_qps, payload) for index, payload in enumerate(payloads)
    ]
    slices = [schedule[k::connections] for k in range(connections)]
    results, lock = [], threading.Lock()
    start_at = time.perf_counter() + 0.25  # let every worker reach its loop
    workers = [
        _Worker(host, port, jobs, start_at, results, lock) for jobs in slices
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    elapsed = time.perf_counter() - (start_at + schedule[0][0])
    return results, elapsed


def _zipf_catalogue(rng):
    """(payload, hot_rank) pairs drawn with zipfian popularity."""
    kinds = ("mean", "variance", "iqr", "quantile")
    catalogue = []
    for rank in range(CATALOGUE):
        kind = kinds[rank % len(kinds)]
        payload = {
            "dataset": "d",
            "kind": kind,
            # over-budget slice: deterministic refusals under load
            "epsilon": 500.0 if rank % REFUSAL_SHARE == REFUSAL_SHARE - 1
            else round(0.05 + 0.002 * rank, 4),
        }
        if kind == "quantile":
            payload["params"] = {"levels": [0.25, 0.5, 0.9]}
        catalogue.append(payload)
    weights = 1.0 / np.arange(1, CATALOGUE + 1) ** ZIPF_S
    weights /= weights.sum()
    draws = rng.choice(CATALOGUE, size=REQUESTS, p=weights)
    payloads = []
    for draw in draws:
        payload = dict(catalogue[draw])
        payload["analyst"] = f"analyst{rng.integers(ANALYSTS)}"
        payloads.append(payload)
    return payloads


def test_service_load(run_once, reporter):
    def run():
        service = QueryService(seed=SEED)
        service.register("d", _dataset(), TOTAL_BUDGET)
        server = make_server(service, quiet=True)
        serve_forever(server)
        host, port = server.server_address[:2]
        try:
            rng = np.random.default_rng(SEED)
            payloads = _zipf_catalogue(rng)
            results, elapsed = _drive_open_loop(
                host, port, payloads, OFFERED_QPS, CONNECTIONS
            )
        finally:
            server.shutdown()
            server.server_close()

        assert len(results) == REQUESTS, "open-loop drive lost requests"
        latencies = [latency for latency, _, _ in results]
        refused = sum(1 for _, status, _ in results if status == 403)
        cached = sum(
            1 for _, status, doc in results
            if status == 200 and doc.get("cached")
        )
        ok = sum(1 for _, status, _ in results if status == 200)
        assert ok + refused == REQUESTS, "unexpected non-200/403 outcome"
        assert refused > 0, "the over-budget slice should refuse under load"
        row = [
            ANALYSTS, REQUESTS, OFFERED_QPS,
            REQUESTS / elapsed,
            _percentile(latencies, 50) * 1e3,
            _percentile(latencies, 95) * 1e3,
            _percentile(latencies, 99) * 1e3,
            cached / REQUESTS,
            refused / REQUESTS,
        ]
        return [row]

    rows = run_once(run)
    headers = [
        "analysts", "requests", "offered q/s", "achieved q/s",
        "p50 ms", "p95 ms", "p99 ms", "cache-hit rate", "refusal rate",
    ]
    table = format_table(headers, rows)
    reporter(
        "SERVICE_LOAD",
        render_experiment_header(
            "SERVICE_LOAD",
            "Open-loop zipfian analyst load against one threaded front-end",
        )
        + "\n"
        + table,
        headers=headers,
        rows=rows,
    )
    # sanity floors only — absolute numbers belong to the JSON record
    assert 0.0 < rows[0][8] < 0.5, "refusal-rate slice out of expected band"
    assert rows[0][7] > 0.5, "zipfian skew should make most requests cache hits"


# ---------------------------------------------------------------------------
# CLUSTER_SCALING
# ---------------------------------------------------------------------------


def _write_cluster_config(directory: Path) -> Path:
    np.save(directory / "load.npy", _dataset())
    config = {
        "service": {"seed": SEED, "cache_size": 512, "workers": 1},
        "datasets": [
            {"name": "d", "source": "load.npy", "budget": TOTAL_BUDGET},
        ],
        "cluster": {"shards": SHARDS},
    }
    path = directory / "cluster.json"
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


def _batches():
    """A cache-warm batched workload: every batch repeats the same catalogue."""
    kinds = ("mean", "variance", "iqr", "quantile")
    queries = []
    for index in range(BATCH):
        kind = kinds[index % len(kinds)]
        entry = {
            "dataset": "d", "kind": kind,
            "epsilon": round(0.05 + 0.003 * index, 4),
        }
        if kind == "quantile":
            entry["params"] = {"levels": [0.25, 0.5, 0.9]}
        queries.append(entry)
    return {"queries": queries}


def _drive_batched(host, port, connections=16):
    """Closed-loop batched hammer; returns (queries/sec, sample document)."""
    payload = json.dumps(_batches()).encode()
    sample = {}

    def warm():
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/query", payload,
                         {"Content-Type": "application/json"})
            document = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        return document

    sample = warm()  # release once: everything after this is cache hits
    barrier = threading.Barrier(connections + 1)
    done = []
    lock = threading.Lock()

    def hammer():
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            barrier.wait()
            count = 0
            for _ in range(BATCHES_PER_WORKER):
                conn.request("POST", "/query", payload,
                             {"Content-Type": "application/json"})
                response = conn.getresponse()
                document = json.loads(response.read())
                assert response.status == 200
                count += len(document["answers"])
        finally:
            conn.close()
        with lock:
            done.append(count)

    workers = [threading.Thread(target=hammer, daemon=True)
               for _ in range(connections)]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join(timeout=300)
    elapsed = time.perf_counter() - start
    return sum(done) / elapsed, sample


def test_cluster_scaling(run_once, reporter, tmp_path):
    from repro.cluster.compose import compose_up

    def run():
        # single process first: same seed, same dataset, same workload
        service = QueryService(seed=SEED)
        service.register("d", _dataset(), TOTAL_BUDGET)
        server = make_server(service, quiet=True)
        serve_forever(server)
        try:
            single_qps, single_sample = _drive_batched(
                *server.server_address[:2]
            )
        finally:
            server.shutdown()
            server.server_close()

        config_path = _write_cluster_config(tmp_path)
        with compose_up(config_path, tmp_path / "deploy") as handle:
            cluster_qps, cluster_sample = _drive_batched(
                handle.plan.host, handle.plan.router_port
            )

        # parity before performance: the tiers must agree bit-for-bit
        for mine, theirs in zip(
            single_sample["answers"], cluster_sample["answers"]
        ):
            assert mine["value"] == theirs["value"], (mine, theirs)
            assert mine["key"] == theirs["key"]

        return [
            ["single-process", 1, single_qps, 1.0],
            [f"cluster ({SHARDS} shards)", SHARDS, cluster_qps,
             cluster_qps / single_qps],
        ]

    rows = run_once(run)
    headers = ["tier", "processes", "cached queries/sec", "speedup"]
    table = format_table(headers, rows)
    cores = os.cpu_count() or 1
    reporter(
        "CLUSTER_SCALING",
        render_experiment_header(
            "CLUSTER_SCALING",
            f"Batched cache-warm QPS: router + {SHARDS} shards vs one process "
            f"(cpu_count={cores})",
        )
        + "\n"
        + table,
        headers=headers,
        rows=rows,
    )
    if cores >= 4:
        speedup = rows[1][3]
        assert speedup >= 2.0, (
            f"4-shard cluster sustained only {speedup:.2f}x the "
            "single-process cached QPS (floor: 2x)"
        )
