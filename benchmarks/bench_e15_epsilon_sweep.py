"""E15 — privacy/accuracy frontier: error vs epsilon for all three estimators.

At a fixed sample size, sweeping epsilon from 0.05 to 1.0 traces the
privacy/accuracy trade-off.  The paper's rates predict the privacy component
of the error to scale like ``1/eps`` for all three parameters, flattening out
once the sampling error dominates ("privacy is free" in the low-privacy
regime, the phenomenon discussed in the introduction).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.baselines import SampleIQR, SampleMean, SampleVariance
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr, estimate_mean, estimate_variance
from repro.distributions import Gaussian

N = 20_000
TRIALS = 8
DIST = Gaussian(1.0, 2.0)
EPSILONS = [0.05, 0.1, 0.2, 0.5, 1.0]


def test_e15_epsilon_sweep(run_once, reporter, engine_workers):
    def run():
        rows = []
        for epsilon in EPSILONS:
            mean_res = run_statistical_trials(
                lambda d, g, e=epsilon: estimate_mean(d, e, 0.1, g).mean,
                DIST, "mean", N, TRIALS, np.random.default_rng(int(epsilon * 1000)), workers=engine_workers)
            var_res = run_statistical_trials(
                lambda d, g, e=epsilon: estimate_variance(d, e, 0.1, g).variance,
                DIST, "variance", N, TRIALS, np.random.default_rng(int(epsilon * 1000) + 1), workers=engine_workers)
            iqr_res = run_statistical_trials(
                lambda d, g, e=epsilon: estimate_iqr(d, e, 0.1, g).iqr,
                DIST, "iqr", N, TRIALS, np.random.default_rng(int(epsilon * 1000) + 2), workers=engine_workers)
            rows.append([epsilon, mean_res.summary.q90, var_res.summary.q90, iqr_res.summary.q90])

        # Non-private floors for reference (epsilon-independent).
        floor_mean = run_statistical_trials(
            lambda d, g: SampleMean().estimate(d), DIST, "mean", N, TRIALS, np.random.default_rng(3), workers=engine_workers).summary.q90
        floor_var = run_statistical_trials(
            lambda d, g: SampleVariance().estimate(d), DIST, "variance", N, TRIALS, np.random.default_rng(4), workers=engine_workers).summary.q90
        floor_iqr = run_statistical_trials(
            lambda d, g: SampleIQR().estimate(d), DIST, "iqr", N, TRIALS, np.random.default_rng(5), workers=engine_workers).summary.q90
        rows.append(["non-private floor", floor_mean, floor_var, floor_iqr])
        return rows

    rows = run_once(run)
    table = format_table(
        ["epsilon", "mean q90 error", "variance q90 error", "IQR q90 error"], rows
    )
    reporter("E15", render_experiment_header("E15", "Privacy/accuracy frontier at n=20k (all estimators)") + "\n" + table)

    numeric = [row for row in rows if isinstance(row[0], float)]
    # Errors should not increase as epsilon grows (allowing small Monte-Carlo slack).
    for column in (1, 2, 3):
        assert numeric[-1][column] <= numeric[0][column] * 1.5
    # At the loosest epsilon the error should approach the non-private floor
    # within an order of magnitude.
    floor = rows[-1]
    assert numeric[-1][1] <= 10.0 * floor[1] + 0.05
