"""E15 — privacy/accuracy frontier: error vs epsilon for all three estimators.

At a fixed sample size, sweeping epsilon from 0.05 to 1.0 traces the
privacy/accuracy trade-off.  The paper's rates predict the privacy component
of the error to scale like ``1/eps`` for all three parameters, flattening out
once the sampling error dominates ("privacy is free" in the low-privacy
regime, the phenomenon discussed in the introduction).

The (epsilon x statistic) grid — 18 cells including the non-private floors —
is one :func:`repro.analysis.run_statistical_grid` sweep on the session's
persistent pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.baselines import SampleIQR, SampleMean, SampleVariance
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr, estimate_mean, estimate_variance
from repro.distributions import Gaussian

N = 20_000
TRIALS = 8
DIST = Gaussian(1.0, 2.0)
EPSILONS = [0.05, 0.1, 0.2, 0.5, 1.0]


def test_e15_epsilon_sweep(run_once, reporter, engine_pool):
    def run():
        cells = []
        for epsilon in EPSILONS:
            base = int(epsilon * 1000)
            cells.append(StatisticalCell(
                lambda d, g, e=epsilon: estimate_mean(d, e, 0.1, g).mean,
                DIST, "mean", N, TRIALS, np.random.default_rng(base),
                key=("mean", epsilon)))
            cells.append(StatisticalCell(
                lambda d, g, e=epsilon: estimate_variance(d, e, 0.1, g).variance,
                DIST, "variance", N, TRIALS, np.random.default_rng(base + 1),
                key=("variance", epsilon)))
            cells.append(StatisticalCell(
                lambda d, g, e=epsilon: estimate_iqr(d, e, 0.1, g).iqr,
                DIST, "iqr", N, TRIALS, np.random.default_rng(base + 2),
                key=("iqr", epsilon)))
        # Non-private floors for reference (epsilon-independent).
        cells.append(StatisticalCell(
            lambda d, g: SampleMean().estimate(d), DIST, "mean", N, TRIALS,
            np.random.default_rng(3), key=("mean", "floor")))
        cells.append(StatisticalCell(
            lambda d, g: SampleVariance().estimate(d), DIST, "variance", N, TRIALS,
            np.random.default_rng(4), key=("variance", "floor")))
        cells.append(StatisticalCell(
            lambda d, g: SampleIQR().estimate(d), DIST, "iqr", N, TRIALS,
            np.random.default_rng(5), key=("iqr", "floor")))

        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        rows = [
            [
                epsilon,
                results[("mean", epsilon)].summary.q90,
                results[("variance", epsilon)].summary.q90,
                results[("iqr", epsilon)].summary.q90,
            ]
            for epsilon in EPSILONS
        ]
        rows.append([
            "non-private floor",
            results[("mean", "floor")].summary.q90,
            results[("variance", "floor")].summary.q90,
            results[("iqr", "floor")].summary.q90,
        ])
        return rows

    rows = run_once(run)
    headers = ["epsilon", "mean q90 error", "variance q90 error", "IQR q90 error"]
    table = format_table(headers, rows)
    reporter(
        "E15",
        render_experiment_header("E15", "Privacy/accuracy frontier at n=20k (all estimators)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    numeric = [row for row in rows if isinstance(row[0], float)]
    # Errors should not increase as epsilon grows (allowing small Monte-Carlo slack).
    for column in (1, 2, 3):
        assert numeric[-1][column] <= numeric[0][column] * 1.5
    # At the loosest epsilon the error should approach the non-private floor
    # within an order of magnitude.
    floor = rows[-1]
    assert numeric[-1][1] <= 10.0 * floor[1] + 0.05
