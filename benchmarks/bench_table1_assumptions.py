"""T1 — Table 1: assumption requirements of private estimators.

Regenerates the paper's Table 1 as an executable capability matrix: for every
implemented estimator we record its privacy model, which assumptions (A1 mean
range, A2 variance/moment bounds, A3 distribution family) it declares, and
whether it actually runs when handed nothing but raw samples.  The paper's
claim is that this work's estimators are the first pure-DP estimators for
mean/variance/IQR with an empty assumption column.

The per-estimator probes fan out over the session's persistent engine pool.
"""

from __future__ import annotations

from repro.bench import capability_matrix, format_table, render_experiment_header


def test_table1_assumption_matrix(run_once, reporter, rng, engine_pool):
    def run():
        return capability_matrix(epsilon=1.0, sample_size=4096, rng=rng, pool=engine_pool)

    rows = run_once(run)

    headers = ["estimator", "target", "privacy", "needs A1", "needs A2", "needs A3",
               "runs w/o assumptions", "reference"]
    cell_rows = [row.as_cells() for row in rows]
    table = format_table(headers, cell_rows)
    reporter(
        "T1",
        render_experiment_header("T1", "Table 1 — assumptions of private estimators") + "\n" + table,
        headers=headers,
        rows=cell_rows,
    )

    universal = [r for r in rows if r.name.startswith("universal")]
    assert len(universal) == 3
    assert all(r.runs_without_assumptions and r.privacy == "pure" for r in universal)
    prior_pure = [
        r for r in rows
        if r.privacy == "pure" and not r.name.startswith(("universal", "sample"))
    ]
    assert prior_pure and all(not r.runs_without_assumptions for r in prior_pure)
