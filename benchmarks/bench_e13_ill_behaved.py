"""E13 — Section 4.3 "ill-behaved P": graceful degradation as phi(1/16) collapses.

The only way the universal estimators can suffer is through the
``log log (1/phi(1/16))`` terms: a distribution with a very narrow density
spike makes the private bucket size tiny, which inflates the discretized
domain.  This bench sweeps the spike width over six orders of magnitude and
reports the mean-estimation error and the bucket size actually chosen.  The
paper predicts only a doubly-logarithmic effect — the error should stay
essentially flat — and this is also the ablation for the "bucket size from the
IQR lower bound vs oracle sigma" design choice.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import SpikeMixture

EPSILON = 0.3
N = 20_000
TRIALS = 8
SPIKE_WIDTHS = [1e-1, 1e-3, 1e-5, 1e-7]


def test_e13_ill_behaved_spike(run_once, reporter, engine_workers):
    def run():
        rows = []
        for width in SPIKE_WIDTHS:
            dist = SpikeMixture(bulk_sigma=1.0, spike_width=width, spike_mass=0.15)
            buckets = []

            def universal(data, gen):
                result = estimate_mean(data, EPSILON, 0.1, gen)
                buckets.append(result.iqr_lower_bound.value)
                return result.mean

            trial = run_statistical_trials(
                universal, dist, "mean", N, TRIALS, np.random.default_rng(int(-np.log10(width))), workers=engine_workers)

            oracle = run_statistical_trials(
                lambda d, g: estimate_mean(d, EPSILON, 0.1, g, bucket_size=dist.std / N).mean,
                dist, "mean", N, TRIALS, np.random.default_rng(77), workers=engine_workers)
            rows.append(
                [width, dist.phi(1.0 / 16.0), float(np.median(buckets)),
                 trial.summary.q90, oracle.summary.q90]
            )
        return rows

    rows = run_once(run)
    table = format_table(
        ["spike width", "phi(1/16)", "median private bucket", "universal q90 error",
         "oracle-bucket q90 error"],
        rows,
    )
    reporter("E13", render_experiment_header("E13", "Ill-behaved spike mixtures: effect of tiny phi(1/16)") + "\n" + table)

    errors = [row[3] for row in rows]
    # Six orders of magnitude of spike narrowing should change the error by at
    # most a small constant factor (the dependence is log log).
    assert max(errors) <= 5.0 * min(errors) + 0.02
    # And the universal estimator should be competitive with the oracle bucket.
    for row in rows:
        assert row[3] <= 5.0 * row[4] + 0.02
