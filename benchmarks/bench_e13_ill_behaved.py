"""E13 — Section 4.3 "ill-behaved P": graceful degradation as phi(1/16) collapses.

The only way the universal estimators can suffer is through the
``log log (1/phi(1/16))`` terms: a distribution with a very narrow density
spike makes the private bucket size tiny, which inflates the discretized
domain.  This bench sweeps the spike width over six orders of magnitude and
reports the mean-estimation error and the bucket size actually chosen.  The
paper predicts only a doubly-logarithmic effect — the error should stay
essentially flat — and this is also the ablation for the "bucket size from the
IQR lower bound vs oracle sigma" design choice.

The (spike width x variant) grid is one
:func:`repro.analysis.run_statistical_grid` sweep on the session's pool.  The
universal cells return ``(estimate, bucket)`` pairs through a run_grid cell
directly so the chosen bucket sizes survive the fan-out (mutating a list from
inside a trial would be lost in a worker process).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid, summarize_errors
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import SpikeMixture
from repro.engine import GridCell, run_grid

EPSILON = 0.3
N = 20_000
TRIALS = 8
SPIKE_WIDTHS = [1e-1, 1e-3, 1e-5, 1e-7]


def _universal_cell(width: float, dist) -> GridCell:
    def trial(index, gen):
        data = dist.sample(N, gen)
        result = estimate_mean(data, EPSILON, 0.1, gen)
        return result.mean, result.iqr_lower_bound.value

    return GridCell(
        trial_fn=trial,
        trials=TRIALS,
        rng=int(-np.log10(width)),
        key=("universal", width),
    )


def test_e13_ill_behaved_spike(run_once, reporter, engine_pool):
    def run():
        dists = {width: SpikeMixture(bulk_sigma=1.0, spike_width=width, spike_mass=0.15)
                 for width in SPIKE_WIDTHS}
        universal_grid = run_grid(
            [_universal_cell(width, dists[width]) for width in SPIKE_WIDTHS],
            pool=engine_pool,
        )
        oracle_cells = [
            StatisticalCell(
                lambda d, g, dist=dists[width]: estimate_mean(
                    d, EPSILON, 0.1, g, bucket_size=dist.std / N
                ).mean,
                dists[width], "mean", N, TRIALS, np.random.default_rng(77),
                key=("oracle", width))
            for width in SPIKE_WIDTHS
        ]
        oracle = dict(zip((c.key for c in oracle_cells),
                          run_statistical_grid(oracle_cells, pool=engine_pool)))
        rows = []
        for width in SPIKE_WIDTHS:
            dist = dists[width]
            batch = universal_grid.by_key(("universal", width))
            estimates = np.asarray([estimate for estimate, _ in batch.results])
            buckets = [bucket for _, bucket in batch.results]
            errors = np.abs(estimates - dist.mean)
            rows.append(
                [width, dist.phi(1.0 / 16.0), float(np.median(buckets)),
                 summarize_errors(errors).q90,
                 oracle[("oracle", width)].summary.q90]
            )
        return rows

    rows = run_once(run)
    headers = ["spike width", "phi(1/16)", "median private bucket", "universal q90 error",
               "oracle-bucket q90 error"]
    table = format_table(headers, rows)
    reporter(
        "E13",
        render_experiment_header("E13", "Ill-behaved spike mixtures: effect of tiny phi(1/16)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    errors = [row[3] for row in rows]
    # Six orders of magnitude of spike narrowing should change the error by at
    # most a small constant factor (the dependence is log log).
    assert max(errors) <= 5.0 * min(errors) + 0.02
    # And the universal estimator should be competitive with the oracle bucket.
    for row in rows:
        assert row[3] <= 5.0 * row[4] + 0.02
