"""E14 — Theorems 1.7/1.10 as measured sample complexities.

For a Gaussian the mean estimator needs ``n = ~O(sigma^2/alpha^2 + sigma/(eps
alpha))`` samples to reach error ``alpha``; the variance estimator needs
``~O(sigma^4/alpha^2 + sigma^2/(eps alpha))``.  For each target alpha we
measure the empirical sample complexity of the universal estimator and of the
non-private baseline (which needs only the first, sampling term), so the gap
between the two columns isolates the price of privacy.

The searches are adaptive (each probed n depends on the previous success
rate), so they cannot fan out as one grid — instead every probed size reuses
the session's persistent pool (``pool=engine_pool``), which forks once for
the entire driver.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import empirical_sample_complexity
from repro.baselines import SampleMean, SampleVariance
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean, estimate_variance
from repro.distributions import Gaussian

EPSILON = 0.5
# The mean is deliberately not a multiple of any power of two so that the
# degenerate small-n behaviour (range collapsing onto a grid point) cannot
# coincide with the truth and fake an early success.
DIST = Gaussian(0.37, 1.0)
TRIALS = 10
MAX_N = 262_144


def test_e14_mean_sample_complexity(run_once, reporter, engine_pool):
    def run():
        rows = []
        for alpha in (0.2, 0.1, 0.05):
            private = empirical_sample_complexity(
                lambda d, g: estimate_mean(d, EPSILON, 0.1, g).mean,
                DIST, "mean", alpha, trials=TRIALS, min_n=64, max_n=MAX_N,
                rng=np.random.default_rng(int(1 / alpha)), pool=engine_pool)
            nonprivate = empirical_sample_complexity(
                lambda d, g: SampleMean().estimate(d),
                DIST, "mean", alpha, trials=TRIALS, min_n=16, max_n=MAX_N,
                rng=np.random.default_rng(int(1 / alpha) + 1), pool=engine_pool)
            theory = DIST.variance / alpha**2 + DIST.std / (EPSILON * alpha)
            rows.append([alpha, private.n_star, nonprivate.n_star, int(theory)])
        return rows

    rows = run_once(run)
    headers = ["target alpha", "universal n*", "non-private n*", "theory shape sigma^2/a^2 + sigma/(eps a)"]
    table = format_table(headers, rows)
    reporter(
        "E14a",
        render_experiment_header("E14a", "Gaussian mean sample complexity (Thm 1.7)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # Sample complexity grows as alpha shrinks, and the private overhead over
    # the non-private complexity is bounded by a moderate factor.
    assert all(row[1] is not None for row in rows)
    assert rows[-1][1] > rows[0][1]
    for row in rows:
        assert row[1] <= 64 * max(row[2], 16)


def test_e14_variance_sample_complexity(run_once, reporter, engine_pool):
    def run():
        rows = []
        for alpha in (0.4, 0.2):
            private = empirical_sample_complexity(
                lambda d, g: estimate_variance(d, EPSILON, 0.1, g).variance,
                DIST, "variance", alpha, trials=TRIALS, min_n=64, max_n=MAX_N,
                rng=np.random.default_rng(int(10 / alpha)), pool=engine_pool)
            nonprivate = empirical_sample_complexity(
                lambda d, g: SampleVariance().estimate(d),
                DIST, "variance", alpha, trials=TRIALS, min_n=16, max_n=MAX_N,
                rng=np.random.default_rng(int(10 / alpha) + 1), pool=engine_pool)
            theory = DIST.variance**2 / alpha**2 + DIST.variance / (EPSILON * alpha)
            rows.append([alpha, private.n_star, nonprivate.n_star, int(theory)])
        return rows

    rows = run_once(run)
    headers = ["target alpha", "universal n*", "non-private n*", "theory shape sigma^4/a^2 + sigma^2/(eps a)"]
    table = format_table(headers, rows)
    reporter(
        "E14b",
        render_experiment_header("E14b", "Gaussian variance sample complexity (Thm 1.10)") + "\n" + table,
        headers=headers,
        rows=rows,
    )
    assert all(row[1] is not None for row in rows)
    assert rows[-1][1] >= rows[0][1]
