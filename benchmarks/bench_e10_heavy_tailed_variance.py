"""E10 — Theorems 1.11/5.5: heavy-tailed variance estimation.

The paper's variance estimator is the first private variance estimator for
heavy-tailed distributions.  We measure its error on Student-t (finite 4th
moment needed for the sampling term) and log-normal data as ``n`` grows, and
report the theory shape alongside.  The (distribution x n) grid is one
:func:`repro.analysis.run_statistical_grid` sweep on the session's pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.analysis.theory import heavy_tailed_variance_error_bound
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_variance
from repro.distributions import LogNormal, StudentT

EPSILON = 0.3
TRIALS = 8
DISTRIBUTIONS = [StudentT(df=6.0), LogNormal(0.0, 0.75)]
SIZES = (8_000, 32_000, 128_000)


def _universal(data, gen):
    return estimate_variance(data, EPSILON, 0.1, gen).variance


def test_e10_heavy_tailed_variance(run_once, reporter, engine_pool):
    def run():
        cells = [
            StatisticalCell(
                _universal, dist, "variance", n, TRIALS, np.random.default_rng(n),
                key=(dist.name, n))
            for dist in DISTRIBUTIONS
            for n in SIZES
        ]
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        rows = []
        for dist in DISTRIBUTIONS:
            mu4 = dist.central_moment(4)
            for n in SIZES:
                result = results[(dist.name, n)]
                theory = heavy_tailed_variance_error_bound(
                    n, EPSILON, mu4, k=4, mu_k=mu4, phi=dist.phi(1.0 / 16.0)
                )
                rows.append(
                    [dist.name, n, dist.variance, result.summary.q90,
                     result.summary.q90 / dist.variance, theory]
                )
        return rows

    rows = run_once(run)
    headers = ["distribution", "n", "true variance", "q90 error", "relative q90 error", "theory shape"]
    table = format_table(headers, rows)
    reporter(
        "E10",
        render_experiment_header("E10", "Heavy-tailed variance estimation (Thm 1.11)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # For each distribution the error decreases with n and the largest-n
    # relative error is under 50%.
    for dist in DISTRIBUTIONS:
        sub = [row for row in rows if row[0] == dist.name]
        assert sub[-1][3] < sub[0][3] * 1.5
        assert sub[-1][4] < 0.5
