"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment from the DESIGN.md index and emits
a plain-text table/series (the analogue of a paper table or figure).  Reports
are written both to ``benchmarks/results/<experiment>.txt`` and to the real
stdout (bypassing pytest capture) so that ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` leaves a readable record.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--engine-workers",
        type=int,
        default=1,
        help=(
            "Worker processes for repro.engine trial fan-out inside the "
            "benchmarks; results are bit-for-bit identical for any value"
        ),
    )


@pytest.fixture
def engine_workers(request) -> int:
    """Engine worker count for trial fan-out (``--engine-workers``, default 1)."""
    return int(request.config.getoption("--engine-workers"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20230401)


@pytest.fixture
def reporter(capfd):
    """Emit an experiment report to stdout (uncaptured) and to a results file.

    pytest captures output at the file-descriptor level, so the report is
    printed inside ``capfd.disabled()`` to reach the real stdout (and hence
    ``bench_output.txt`` when the run is piped through ``tee``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(experiment_id: str, text: str) -> None:
        out_path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        out_path.write_text(text + "\n")
        with capfd.disabled():
            print(text, flush=True)

    return emit


@pytest.fixture
def run_once(benchmark):
    """Run the experiment body exactly once under pytest-benchmark timing."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner
