"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment from the DESIGN.md index and emits
a plain-text table/series (the analogue of a paper table or figure).  Reports
are written to ``benchmarks/results/<experiment>.txt``, to a structured JSON
sidecar ``benchmarks/results/<experiment>.json`` (consumed by the CI
bench-smoke artifact), and to the real stdout (bypassing pytest capture) so
that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` leaves a
readable record.

All drivers share **one** :class:`repro.engine.EnginePool` for the whole
session (the ``engine_pool`` fixture): the pool forks its workers on the
first parallel cell and every subsequent cell of every driver reuses them —
no per-cell pool spin-up.  With the default ``--engine-workers 1`` the pool
never forks and everything runs on the serial reference path; results are
bit-for-bit identical either way.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.engine import EnginePool  # noqa: E402 - after the sys.path fallback

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--engine-workers",
        type=int,
        default=1,
        help=(
            "Worker processes for the shared repro.engine pool used by the "
            "benchmarks (per-cell grid fan-out and per-trial fan-out); "
            "results are bit-for-bit identical for any value"
        ),
    )


@pytest.fixture(scope="session")
def engine_pool(request):
    """One persistent EnginePool shared by every benchmark cell of the session.

    Forks lazily on the first parallel call, so ``--engine-workers 1`` (the
    default) stays a pure serial run with no processes spawned.
    """
    workers = int(request.config.getoption("--engine-workers"))
    with EnginePool(workers) as pool:
        yield pool


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20230401)


def _json_safe(value):
    """Coerce table cells (numpy scalars, tuples, None) to JSON-safe values.

    Non-finite floats become strings: ``json.dumps`` would otherwise emit
    bare ``NaN``/``Infinity`` tokens, which strict JSON parsers reject.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        as_float = float(value)
        return as_float if np.isfinite(as_float) else repr(as_float)
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (str, int)) or value is None:
        return value
    return str(value)


@pytest.fixture
def reporter(capfd, request):
    """Emit an experiment report to stdout (uncaptured), a text file and JSON.

    pytest captures output at the file-descriptor level, so the report is
    printed inside ``capfd.disabled()`` to reach the real stdout (and hence
    ``bench_output.txt`` when the run is piped through ``tee``).

    Call as ``reporter(experiment_id, text)`` for the legacy text-only form,
    or pass ``headers=``/``rows=`` to also write a structured
    ``results/<experiment>.json`` record (the CI bench-smoke job uploads
    these as its artifact).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    workers = int(request.config.getoption("--engine-workers"))

    def emit(experiment_id: str, text: str, headers=None, rows=None) -> None:
        stem = experiment_id.lower()
        (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n")
        record = {
            "experiment": experiment_id,
            "test": request.node.name,
            "engine_workers": workers,
            "headers": _json_safe(headers) if headers is not None else None,
            "rows": _json_safe(rows) if rows is not None else None,
            "text": text,
        }
        (RESULTS_DIR / f"{stem}.json").write_text(json.dumps(record, indent=2) + "\n")
        with capfd.disabled():
            print(text, flush=True)

    return emit


@pytest.fixture
def run_once(benchmark):
    """Run the experiment body exactly once under pytest-benchmark timing."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner
