"""E1 — Theorem 3.1/3.6: private radius quality.

For datasets whose radius spans seven orders of magnitude, the privatized
radius must stay within ``2 * rad(D) + 3b`` while leaving only
``O(log log(rad)/eps)`` points uncovered.  The series below reports, per true
radius, the median ratio ``rad_hat / rad`` and the median number of uncovered
points across trials; the paper's prediction is a ratio <= 2 and an uncovered
count that grows only doubly-logarithmically in the radius.

The radius sweep is one :func:`repro.engine.run_grid` call: every radius is a
grid cell (its own base seed, derived per-trial streams), and all cells share
the session's persistent engine pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import loglog
from repro.bench import format_table, render_experiment_header, uniform_integer_dataset
from repro.empirical import estimate_radius
from repro.engine import GridCell, run_grid

EPSILON = 1.0
TRIALS = 10
N = 4000
RADII = [10**2, 10**3, 10**4, 10**6, 10**9]


def _radius_cell(radius: int) -> GridCell:
    def trial(index, gen, radius=radius):
        data = uniform_integer_dataset(N, width=2 * radius, center=0, rng=gen)
        true_radius = float(np.max(np.abs(data)))
        result = estimate_radius(data, EPSILON, 0.1, gen)
        return result.radius / true_radius, result.uncovered_count

    return GridCell(trial_fn=trial, trials=TRIALS, rng=radius, key=radius)


def test_e1_radius_scaling(run_once, reporter, engine_pool):
    def run():
        grid = run_grid([_radius_cell(radius) for radius in RADII], pool=engine_pool)
        rows = []
        for radius in RADII:
            batch = grid.by_key(radius)
            ratios = [ratio for ratio, _ in batch.results]
            uncovered = [count for _, count in batch.results]
            rows.append(
                [
                    radius,
                    float(np.median(ratios)),
                    float(np.max(ratios)),
                    float(np.median(uncovered)),
                    loglog(float(radius)) / EPSILON,
                ]
            )
        return rows

    rows = run_once(run)
    headers = ["true radius", "median ratio", "max ratio", "median uncovered", "loglog(rad)/eps"]
    table = format_table(headers, rows)
    reporter(
        "E1",
        render_experiment_header("E1", "Private radius vs true radius (Thm 3.1)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    for row in rows:
        # Theorem 3.1 bounds the ratio by 2 (plus 3b discretization slack)
        # *with probability 1 - beta* per trial; the median over trials is the
        # robust check.  The max may legitimately overshoot by one SVT
        # doubling step in up to a beta fraction of trials.
        assert row[1] <= 2.0 + 1e-9, "median privatized radius exceeded 2x the true radius"
        assert row[2] <= 4.0 + 1e-9, "privatized radius overshot by more than one doubling step"
        assert row[3] <= 30.0 * row[4], "too many points left uncovered"
