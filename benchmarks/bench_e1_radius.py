"""E1 — Theorem 3.1/3.6: private radius quality.

For datasets whose radius spans seven orders of magnitude, the privatized
radius must stay within ``2 * rad(D) + 3b`` while leaving only
``O(log log(rad)/eps)`` points uncovered.  The series below reports, per true
radius, the median ratio ``rad_hat / rad`` and the median number of uncovered
points across trials; the paper's prediction is a ratio <= 2 and an uncovered
count that grows only doubly-logarithmically in the radius.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import loglog
from repro.bench import format_table, render_experiment_header, uniform_integer_dataset
from repro.empirical import estimate_radius
from repro.engine import run_batch

EPSILON = 1.0
TRIALS = 10
N = 4000
RADII = [10**2, 10**3, 10**4, 10**6, 10**9]


def test_e1_radius_scaling(run_once, reporter, engine_workers):
    def run():
        rows = []
        for radius in RADII:

            def trial(index, gen, radius=radius):
                data = uniform_integer_dataset(N, width=2 * radius, center=0, rng=gen)
                true_radius = float(np.max(np.abs(data)))
                result = estimate_radius(data, EPSILON, 0.1, gen)
                return result.radius / true_radius, result.uncovered_count

            batch = run_batch(trial, TRIALS, rng=radius, workers=engine_workers)
            ratios = [ratio for ratio, _ in batch.results]
            uncovered = [count for _, count in batch.results]
            rows.append(
                [
                    radius,
                    float(np.median(ratios)),
                    float(np.max(ratios)),
                    float(np.median(uncovered)),
                    loglog(float(radius)) / EPSILON,
                ]
            )
        return rows

    rows = run_once(run)
    table = format_table(
        ["true radius", "median ratio", "max ratio", "median uncovered", "loglog(rad)/eps"],
        rows,
    )
    reporter("E1", render_experiment_header("E1", "Private radius vs true radius (Thm 3.1)") + "\n" + table)

    for row in rows:
        # Theorem 3.1 bounds the ratio by 2 (plus 3b discretization slack)
        # *with probability 1 - beta* per trial; the median over trials is the
        # robust check.  The max may legitimately overshoot by one SVT
        # doubling step in up to a beta fraction of trials.
        assert row[1] <= 2.0 + 1e-9, "median privatized radius exceeded 2x the true radius"
        assert row[2] <= 4.0 + 1e-9, "privatized radius overshot by more than one doubling step"
        assert row[3] <= 30.0 * row[4], "too many points left uncovered"
