"""E2 — Theorem 3.2/3.7: private range quality under rad(D) >> gamma(D).

The hard case for range finding is a tight cluster far from the origin: the
radius is dominated by the location, not the spread.  Algorithm 4 must still
return an interval of width at most ``4 * gamma(D) + 6b`` that misses only
``O(log log(gamma)/eps)`` points.  The series sweeps the cluster's distance
from the origin at a fixed spread — one grid cell per center, all sharing the
session's persistent engine pool.
"""

from __future__ import annotations

import numpy as np

from repro.bench import clustered_integer_dataset, format_table, render_experiment_header
from repro.empirical import estimate_range
from repro.engine import GridCell, run_grid

EPSILON = 1.0
TRIALS = 10
N = 4000
SPREAD = 50
CENTERS = [0, 10**3, 10**5, 10**7]


def _center_cell(center: int) -> GridCell:
    def trial(index, gen, center=center):
        data = clustered_integer_dataset(N, cluster_value=center, spread=SPREAD, rng=gen)
        true_width = float(np.max(data) - np.min(data))
        result = estimate_range(data, EPSILON, 0.1, gen)
        return result.width / max(true_width, 1.0), result.outside_count

    return GridCell(trial_fn=trial, trials=TRIALS, rng=center, key=center)


def test_e2_range_location_invariance(run_once, reporter, engine_pool):
    def run():
        grid = run_grid([_center_cell(center) for center in CENTERS], pool=engine_pool)
        rows = []
        for center in CENTERS:
            batch = grid.by_key(center)
            width_ratios = [ratio for ratio, _ in batch.results]
            outside = [count for _, count in batch.results]
            rows.append(
                [
                    center,
                    2 * SPREAD,
                    float(np.median(width_ratios)),
                    float(np.max(width_ratios)),
                    float(np.median(outside)),
                ]
            )
        return rows

    rows = run_once(run)
    headers = ["cluster center", "true width", "median width ratio", "max width ratio", "median points outside"]
    table = format_table(headers, rows)
    reporter(
        "E2",
        render_experiment_header("E2", "Private range for far-away clusters (Thm 3.2)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    for row in rows:
        # Width ratio bounded by 4 (plus discretization slack).
        assert row[3] <= 4.2, "privatized range wider than 4x the true width"
        assert row[4] <= 60, "too many points outside the privatized range"
