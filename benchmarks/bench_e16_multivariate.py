"""E16 — Section 1.2 extension: dimension dependence of the coordinate-wise mean.

The paper's multivariate discussion: running the universal estimator
coordinate-wise with Laplace noise under basic composition gives a privacy
error of order ``d/(eps n)`` per coordinate (measured here via the l_infinity
error), not the conjectured-optimal sub-linear dependence — achieving that
under pure DP is an open problem.  This bench sweeps the dimension ``d`` at a
fixed total budget and records the measured error growth, documenting exactly
what the implemented extension does and does not give.

Each dimension is one :func:`repro.engine.run_grid` cell (vector-valued trial
results, stacked via ``BatchResult.estimates``) on the session's pool.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.engine import GridCell, run_grid
from repro.multivariate import estimate_mean_multivariate

EPSILON = 1.0
N = 16_000
TRIALS = 6
DIMENSIONS = [1, 2, 4, 8]


def _dimension_cell(d: int) -> GridCell:
    def trial(index, gen):
        data = gen.normal(0.0, 1.0, size=(N, d))
        result = estimate_mean_multivariate(data, EPSILON, 0.1, gen)
        return result.mean  # vector-valued trial result (length d)

    return GridCell(trial_fn=trial, trials=TRIALS, rng=d, key=d)


def test_e16_dimension_dependence(run_once, reporter, engine_pool):
    def run():
        grid = run_grid([_dimension_cell(d) for d in DIMENSIONS], pool=engine_pool)
        rows = []
        for d in DIMENSIONS:
            estimates = grid.by_key(d).estimates()  # (TRIALS, d) stack
            assert estimates.shape == (TRIALS, d)
            linf_errors = np.max(np.abs(estimates), axis=1)
            median = float(np.median(linf_errors))
            rows.append([d, EPSILON / d, median, median * np.sqrt(N)])
        return rows

    rows = run_once(run)
    headers = ["dimension d", "epsilon per coordinate", "median l_inf error", "error * sqrt(n)"]
    table = format_table(headers, rows)
    reporter(
        "E16",
        render_experiment_header("E16", "Multivariate coordinate-wise mean: d-dependence (Section 1.2)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    errors = [row[2] for row in rows]
    # Error grows with d (the budget is split d ways) ...
    assert errors[-1] >= errors[0]
    # ... but stays sane: even at d=8 it is below one tenth of a standard deviation.
    assert errors[-1] < 0.1
