"""Engine scaling demonstration: trial fan-out and per-cell grid fan-out.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [trials] [n]

Part 1 (PR 1): a 500-trial Gaussian-mean workload timed at ``workers=1`` vs
``workers=4`` through :func:`repro.analysis.run_statistical_trials`.

Part 2 (PR 2): a 16-cell parameter grid timed two ways at ``workers=4``:

* **per-cell spin-up** — each cell is its own ``run_batch(workers=4)`` call,
  so every cell pays full pool fork/teardown (the pre-``EnginePool`` cost
  model);
* **persistent pool** — one :class:`repro.engine.EnginePool` forks once and
  one :func:`repro.engine.run_grid` call fans every cell's spans across it.

Both parts verify the determinism contract on the way: parallel and serial
runs must produce bit-for-bit identical estimates, cell by cell.  On a
machine with >= 4 cores the persistent-pool grid is expected to beat the
per-cell spin-up wall-clock (the difference is exactly the 15 saved pool
startups); on fewer cores the parity checks still hold but speedups degrade
toward (or below) 1x and are not enforced.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.analysis import run_statistical_trials
from repro.core import estimate_mean
from repro.distributions import Gaussian
from repro.engine import EnginePool, GridCell, run_batch, run_grid

EPSILON = 0.5
SEED = 20230401
GRID_SIZES = [1_000, 1_500, 2_000, 2_500]
GRID_EPSILONS = [0.25, 0.5, 1.0, 2.0]
GRID_TRIALS = 24
WORKERS = 4


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def timed_run(workers: int, trials: int, n: int):
    start = time.perf_counter()
    result = run_statistical_trials(
        _universal, Gaussian(5.0, 1.0), "mean", n, trials, SEED, workers=workers
    )
    return time.perf_counter() - start, result


def _grid_cells():
    cells = []
    for n in GRID_SIZES:
        for epsilon in GRID_EPSILONS:
            def trial(index, gen, n=n, epsilon=epsilon):
                data = gen.normal(5.0, 1.0, size=n)
                return estimate_mean(data, epsilon, 0.1, gen).mean

            cells.append(
                GridCell(trial_fn=trial, trials=GRID_TRIALS,
                         rng=n + int(epsilon * 1000), key=(n, epsilon))
            )
    return cells


def trial_dimension_demo(trials: int, n: int) -> bool:
    print(f"[trial fan-out] {trials}-trial Gaussian-mean workload, n={n}")
    serial_time, serial = timed_run(1, trials, n)
    print(f"workers=1: {serial_time:8.2f}s  q90 error {serial.summary.q90:.4g}")
    parallel_time, parallel = timed_run(WORKERS, trials, n)
    print(f"workers={WORKERS}: {parallel_time:8.2f}s  q90 error {parallel.summary.q90:.4g}")

    identical = np.array_equal(serial.estimates, parallel.estimates)
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    print(f"bit-for-bit identical estimates: {identical}")
    print(f"speedup: {speedup:.2f}x")
    return identical


def grid_dimension_demo() -> bool:
    cells = _grid_cells()
    print(f"\n[grid fan-out] {len(cells)} cells x {GRID_TRIALS} trials, workers={WORKERS}")

    # Per-cell spin-up: one ephemeral pool per cell (fork + teardown each time).
    start = time.perf_counter()
    spin_up = [
        run_batch(cell.trial_fn, cell.trials, cell.rng, workers=WORKERS)
        for cell in cells
    ]
    spin_up_time = time.perf_counter() - start
    print(f"per-cell run_batch spin-up: {spin_up_time:8.2f}s "
          f"({len(cells)} pool startups)")

    # Persistent pool: fork once, fan every cell's spans across the workers.
    start = time.perf_counter()
    with EnginePool(WORKERS) as pool:
        persistent = run_grid(cells, pool=pool)
    persistent_time = time.perf_counter() - start
    print(f"run_grid on persistent pool: {persistent_time:8.2f}s (1 pool startup)")

    serial = run_grid(cells, workers=1)

    identical = all(
        p.results == s.results == b.results
        for p, s, b in zip(persistent.batches, serial.batches, spin_up)
    )
    speedup = spin_up_time / persistent_time if persistent_time > 0 else float("inf")
    print(f"bit-for-bit identical cells (serial == spin-up == persistent): {identical}")
    print(f"persistent-pool speedup over per-cell spin-up: {speedup:.2f}x")

    cores = os.cpu_count() or 1
    if cores >= 4 and identical and speedup <= 1.0:
        print("FAIL: persistent pool did not beat per-cell spin-up on >= 4 cores",
              file=sys.stderr)
        return False
    return identical


def main() -> int:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4_000

    print(f"engine scaling on cpu_count={os.cpu_count()}")
    ok = trial_dimension_demo(trials, n)
    ok = grid_dimension_demo() and ok
    if not ok:
        print("FAIL: determinism or scaling contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
