"""Engine scaling demonstration: 500-trial Gaussian-mean workload, 1 vs 4 workers.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [trials] [n]

Prints wall-clock time for ``workers=1`` and ``workers=4`` and verifies the
engine's determinism contract on the way: both runs must produce bit-for-bit
identical estimates.  On a machine with >= 4 cores the parallel run is
expected to be >= 2x faster; on fewer cores the parity check still holds but
the speedup degrades toward 1x (fork + scheduling overhead on a single core).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.analysis import run_statistical_trials
from repro.core import estimate_mean
from repro.distributions import Gaussian

EPSILON = 0.5
SEED = 20230401


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def timed_run(workers: int, trials: int, n: int):
    start = time.perf_counter()
    result = run_statistical_trials(
        _universal, Gaussian(5.0, 1.0), "mean", n, trials, SEED, workers=workers
    )
    return time.perf_counter() - start, result


def main() -> int:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4_000

    print(f"engine scaling: {trials}-trial Gaussian-mean workload, n={n}, "
          f"cpu_count={os.cpu_count()}")
    serial_time, serial = timed_run(1, trials, n)
    print(f"workers=1: {serial_time:8.2f}s  q90 error {serial.summary.q90:.4g}")
    parallel_time, parallel = timed_run(4, trials, n)
    print(f"workers=4: {parallel_time:8.2f}s  q90 error {parallel.summary.q90:.4g}")

    identical = np.array_equal(serial.estimates, parallel.estimates)
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    print(f"bit-for-bit identical estimates: {identical}")
    print(f"speedup: {speedup:.2f}x")
    if not identical:
        print("FAIL: determinism contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
