"""E4 — Theorem 3.4: packing lower bound and measured optimality ratios.

On the packing family ``D(1), ..., D(log2 N)`` the theorem gives an error
floor of ``gamma(D)/(3 eps n) * log(log2 N)`` for *any* ε-DP mechanism.  We
measure, level by level:

* the error of this paper's ``InfiniteDomainMean`` (whose optimality ratio is
  ``O(loglog N / eps)``), and
* the error of the finite-domain Laplace baseline (whose error is ``~N/(eps n)``
  regardless of the instance, i.e. optimality ratio ``~N/gamma``),

and report each as a multiple of the inward-neighbourhood floor
``gamma(D)/n``.  The expected shape: the baseline's ratio explodes for small
levels (small gamma) while ours stays bounded by a loglog-sized factor.

Each packing level is one :func:`repro.engine.run_grid` cell (a paired trial
returns both estimators' errors from one per-trial stream), fanned over the
session's persistent pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import build_packing_instance, packing_lower_bound
from repro.baselines import FiniteDomainLaplaceMean
from repro.bench import format_table, render_experiment_header
from repro.empirical import estimate_empirical_mean
from repro.engine import GridCell, run_grid

EPSILON = 0.5
N_RECORDS = 2000
DOMAIN = 2**16
TRIALS = 8
LEVELS = [2, 6, 10, 14]


def _level_cell(level: int, data: np.ndarray, baseline) -> GridCell:
    truth = float(np.mean(data))

    def trial(index, gen):
        ours = abs(estimate_empirical_mean(data, EPSILON, 0.1, gen).mean - truth)
        theirs = abs(baseline.estimate(data, EPSILON, gen) - truth)
        return ours, theirs

    return GridCell(trial_fn=trial, trials=TRIALS, rng=level, key=level)


def test_e4_optimality_ratio(run_once, reporter, engine_pool):
    def run():
        instance = build_packing_instance(DOMAIN, N_RECORDS, EPSILON)
        baseline = FiniteDomainLaplaceMean(domain_size=DOMAIN)
        grid = run_grid(
            [_level_cell(level, instance.datasets[level], baseline) for level in LEVELS],
            pool=engine_pool,
        )
        rows = []
        for level in LEVELS:
            batch = grid.by_key(level)
            ours = [a for a, _ in batch.results]
            theirs = [b for _, b in batch.results]
            gamma = float(2**level)
            floor = gamma / N_RECORDS  # inward-neighbourhood lower bound Theta(gamma/n)
            rows.append(
                [
                    level,
                    gamma,
                    packing_lower_bound(instance, level),
                    float(np.median(ours)),
                    float(np.median(theirs)),
                    float(np.median(ours)) / floor,
                    float(np.median(theirs)) / floor,
                ]
            )
        return rows

    rows = run_once(run)
    headers = [
        "level i",
        "gamma(D)=2^i",
        "Thm 3.4 floor",
        "our median error",
        "finite-domain baseline error",
        "our ratio vs gamma/n",
        "baseline ratio vs gamma/n",
    ]
    table = format_table(headers, rows)
    reporter(
        "E4",
        render_experiment_header("E4", "Packing instances: optimality ratios (Thm 3.4)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    for row in rows:
        # Our optimality ratio stays within a loglog-sized factor (generous cap ~100/eps).
        assert row[5] <= 100.0 / EPSILON
    # The finite-domain baseline is instance-oblivious: on the smallest level its
    # ratio is far worse than ours.
    assert rows[0][6] > 10.0 * rows[0][5]
