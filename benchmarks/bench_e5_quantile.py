"""E5 — Theorem 3.5/3.9: empirical quantile rank error.

The rank error of the private quantile should scale like ``log(gamma(D))/eps``
— logarithmic in the width and inversely proportional to epsilon — and be
essentially flat in the requested rank ``tau``.  Two sweeps check both
dependencies; each sweep is one :func:`repro.engine.run_grid` call over the
session's persistent pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import summarize_errors
from repro.analysis.theory import quantile_rank_error_bound
from repro.bench import format_table, render_experiment_header, uniform_integer_dataset
from repro.empirical import estimate_empirical_quantile
from repro.engine import GridCell, run_grid

N = 4000
TRIALS = 10


def _rank_error_cell(width: int, epsilon: float, tau: int) -> GridCell:
    def trial(index, gen):
        data = uniform_integer_dataset(N, width=width, rng=gen)
        result = estimate_empirical_quantile(data, tau, epsilon, 0.1, gen)
        return float(result.rank_error)

    return GridCell(
        trial_fn=trial,
        trials=TRIALS,
        rng=width + int(epsilon * 1000),
        key=(width, epsilon, tau),
    )


def _q90_rank_errors(settings, pool):
    grid = run_grid(
        [_rank_error_cell(width, epsilon, tau) for width, epsilon, tau in settings],
        pool=pool,
    )
    return {
        key: summarize_errors(list(grid.by_key(key).results)).q90 for key in settings
    }


def test_e5_rank_error_vs_width(run_once, reporter, engine_pool):
    def run():
        settings = [(width, 1.0, N // 2) for width in (100, 10_000, 1_000_000)]
        measured = _q90_rank_errors(settings, engine_pool)
        rows = []
        for key in settings:
            width = key[0]
            theory = quantile_rank_error_bound(float(width), 1.0, 0.1)
            rows.append([width, measured[key], theory, measured[key] / theory])
        return rows

    rows = run_once(run)
    headers = ["gamma(D)", "measured q90 rank error", "theory bound", "ratio"]
    table = format_table(headers, rows)
    reporter(
        "E5a",
        render_experiment_header("E5a", "Quantile rank error vs width (Thm 3.5)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # Rank error grows far slower than the width (logarithmically): a 10,000x
    # wider dataset costs at most a small constant factor in rank error.
    assert rows[-1][1] <= max(rows[0][1], 1.0) * 20.0
    assert all(row[3] <= 12.0 for row in rows)


def test_e5_rank_error_vs_epsilon(run_once, reporter, engine_pool):
    def run():
        settings = [(100_000, epsilon, N // 2) for epsilon in (0.25, 0.5, 1.0, 2.0)]
        measured = _q90_rank_errors(settings, engine_pool)
        rows = []
        for key in settings:
            epsilon = key[1]
            theory = quantile_rank_error_bound(100_000.0, epsilon, 0.1)
            rows.append([epsilon, measured[key], theory, measured[key] / theory])
        return rows

    rows = run_once(run)
    headers = ["epsilon", "measured q90 rank error", "theory bound", "ratio"]
    table = format_table(headers, rows)
    reporter(
        "E5b",
        render_experiment_header("E5b", "Quantile rank error vs epsilon (Thm 3.5)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    assert rows[0][1] >= rows[-1][1], "rank error should shrink as epsilon grows"
    assert all(row[3] <= 12.0 for row in rows)
