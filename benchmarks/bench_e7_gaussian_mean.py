"""E7 — Theorems 1.7/4.6: Gaussian mean estimation vs prior pure-DP estimators.

Two series:

* error vs ``n`` for the universal estimator, the non-private sample mean
  (the floor), and the theory curve — the privacy overhead should vanish as
  ``n`` grows (rate ~1/(eps n));
* error at a fixed ``n`` as the baselines' assumed range ``R`` is made looser
  — the universal estimator is unaffected (it takes no ``R``), while the
  bounded-Laplace and KV18 baselines degrade, which is the practical content
  of removing assumption A1.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.analysis.theory import gaussian_mean_error_bound
from repro.baselines import BoundedLaplaceMean, KarwaVadhanGaussianMean, SampleMean
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import Gaussian

EPSILON = 0.2
SIGMA = 1.0
TRIALS = 10
DIST = Gaussian(5.0, SIGMA)


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def test_e7_error_vs_n(run_once, reporter, engine_workers):
    def run():
        rows = []
        for n in (2_000, 8_000, 32_000, 128_000):
            universal = run_statistical_trials(_universal, DIST, "mean", n, TRIALS, seed_for(n), workers=engine_workers)
            nonprivate = run_statistical_trials(
                lambda d, g: SampleMean().estimate(d), DIST, "mean", n, TRIALS, seed_for(n + 1), workers=engine_workers)
            rows.append(
                [
                    n,
                    universal.summary.q90,
                    nonprivate.summary.q90,
                    gaussian_mean_error_bound(n, EPSILON, SIGMA),
                ]
            )
        return rows

    rows = run_once(run)
    table = format_table(
        ["n", "universal q90 error", "non-private q90 error", "theory shape"], rows
    )
    reporter("E7a", render_experiment_header("E7a", "Gaussian mean error vs n (Thm 1.7)") + "\n" + table)

    # Error decreases with n and approaches the non-private floor.
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][1] <= 6.0 * rows[-1][2] + 0.01


def test_e7_error_vs_assumed_range(run_once, reporter, engine_workers):
    def run():
        n = 8_000
        rows = []
        for radius in (10.0, 1e3, 1e6):
            bounded = run_statistical_trials(
                lambda d, g, r=radius: BoundedLaplaceMean(radius=r).estimate(d, EPSILON, g),
                DIST, "mean", n, TRIALS, seed_for(int(radius)), workers=engine_workers)
            kv = run_statistical_trials(
                lambda d, g, r=radius: KarwaVadhanGaussianMean(
                    radius=r, sigma_min=0.5, sigma_max=2.0
                ).estimate(d, EPSILON, g),
                DIST, "mean", n, TRIALS, seed_for(int(radius) + 1), workers=engine_workers)
            universal = run_statistical_trials(_universal, DIST, "mean", n, TRIALS, seed_for(int(radius) + 2), workers=engine_workers)
            rows.append([radius, universal.summary.q90, kv.summary.q90, bounded.summary.q90])
        return rows

    rows = run_once(run)
    table = format_table(
        ["assumed R", "universal q90 (ignores R)", "KV18 q90", "bounded-Laplace q90"], rows
    )
    reporter(
        "E7b",
        render_experiment_header("E7b", "Gaussian mean error vs looseness of assumption A1") + "\n" + table,
    )

    # The universal estimator does not depend on R; the naive baseline degrades
    # roughly linearly in R and is far worse at R = 1e6.
    assert rows[-1][3] > 10.0 * rows[-1][1]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.02


def seed_for(key: int) -> np.random.Generator:
    return np.random.default_rng(10_000 + key % 7919)
