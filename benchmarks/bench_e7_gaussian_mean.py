"""E7 — Theorems 1.7/4.6: Gaussian mean estimation vs prior pure-DP estimators.

Two series:

* error vs ``n`` for the universal estimator, the non-private sample mean
  (the floor), and the theory curve — the privacy overhead should vanish as
  ``n`` grows (rate ~1/(eps n));
* error at a fixed ``n`` as the baselines' assumed range ``R`` is made looser
  — the universal estimator is unaffected (it takes no ``R``), while the
  bounded-Laplace and KV18 baselines degrade, which is the practical content
  of removing assumption A1.

Each series is one :func:`repro.analysis.run_statistical_grid` sweep: every
(estimator, n) pair is a grid cell with its own base seed, and all cells of
all drivers share the session's persistent engine pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.analysis.theory import gaussian_mean_error_bound
from repro.baselines import BoundedLaplaceMean, KarwaVadhanGaussianMean, SampleMean
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import Gaussian

EPSILON = 0.2
SIGMA = 1.0
TRIALS = 10
DIST = Gaussian(5.0, SIGMA)


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def test_e7_error_vs_n(run_once, reporter, engine_pool):
    sizes = (2_000, 8_000, 32_000, 128_000)

    def run():
        cells = []
        for n in sizes:
            cells.append(StatisticalCell(
                _universal, DIST, "mean", n, TRIALS, seed_for(n), key=("universal", n)))
            cells.append(StatisticalCell(
                lambda d, g: SampleMean().estimate(d), DIST, "mean", n, TRIALS,
                seed_for(n + 1), key=("nonprivate", n)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        rows = []
        for n in sizes:
            rows.append(
                [
                    n,
                    results[("universal", n)].summary.q90,
                    results[("nonprivate", n)].summary.q90,
                    gaussian_mean_error_bound(n, EPSILON, SIGMA),
                ]
            )
        return rows

    rows = run_once(run)
    headers = ["n", "universal q90 error", "non-private q90 error", "theory shape"]
    table = format_table(headers, rows)
    reporter(
        "E7a",
        render_experiment_header("E7a", "Gaussian mean error vs n (Thm 1.7)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # Error decreases with n and approaches the non-private floor.
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][1] <= 6.0 * rows[-1][2] + 0.01


def test_e7_error_vs_assumed_range(run_once, reporter, engine_pool):
    n = 8_000
    radii = (10.0, 1e3, 1e6)

    def run():
        cells = []
        for radius in radii:
            cells.append(StatisticalCell(
                lambda d, g, r=radius: BoundedLaplaceMean(radius=r).estimate(d, EPSILON, g),
                DIST, "mean", n, TRIALS, seed_for(int(radius)), key=("bounded", radius)))
            cells.append(StatisticalCell(
                lambda d, g, r=radius: KarwaVadhanGaussianMean(
                    radius=r, sigma_min=0.5, sigma_max=2.0
                ).estimate(d, EPSILON, g),
                DIST, "mean", n, TRIALS, seed_for(int(radius) + 1), key=("kv", radius)))
            cells.append(StatisticalCell(
                _universal, DIST, "mean", n, TRIALS, seed_for(int(radius) + 2),
                key=("universal", radius)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        return [
            [
                radius,
                results[("universal", radius)].summary.q90,
                results[("kv", radius)].summary.q90,
                results[("bounded", radius)].summary.q90,
            ]
            for radius in radii
        ]

    rows = run_once(run)
    headers = ["assumed R", "universal q90 (ignores R)", "KV18 q90", "bounded-Laplace q90"]
    table = format_table(headers, rows)
    reporter(
        "E7b",
        render_experiment_header("E7b", "Gaussian mean error vs looseness of assumption A1") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # The universal estimator does not depend on R; the naive baseline degrades
    # roughly linearly in R and is far worse at R = 1e6.
    assert rows[-1][3] > 10.0 * rows[-1][1]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.02


def seed_for(key: int) -> np.random.Generator:
    return np.random.default_rng(10_000 + key % 7919)
