"""E9 — Theorems 1.10/5.3: Gaussian variance estimation vs prior estimators.

Series (a): error vs n for the universal estimator, the non-private sample
variance and the theory curve.  Series (b): error at fixed n as the baselines'
assumed [sigma_min, sigma_max] window is widened — KV18-style and naive A2
baselines degrade while the universal estimator (which takes no window) does
not.  Series (c) ablates the paper's design choice of using a radius-only
range for the paired statistic instead of a full range search.

Every series sweeps its grid through
:func:`repro.analysis.run_statistical_grid` on the session's shared pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.analysis.theory import gaussian_variance_error_bound
from repro.baselines import BoundedLaplaceVariance, KarwaVadhanGaussianVariance, SampleVariance
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_variance
from repro.distributions import Gaussian

EPSILON = 0.2
SIGMA = 2.0
TRIALS = 8
DIST = Gaussian(3.0, SIGMA)


def _universal(data, gen):
    return estimate_variance(data, EPSILON, 0.1, gen).variance


def test_e9_error_vs_n(run_once, reporter, engine_pool):
    sizes = (4_000, 16_000, 64_000)

    def run():
        cells = []
        for n in sizes:
            cells.append(StatisticalCell(
                _universal, DIST, "variance", n, TRIALS, np.random.default_rng(n),
                key=("universal", n)))
            cells.append(StatisticalCell(
                lambda d, g: SampleVariance().estimate(d), DIST, "variance", n, TRIALS,
                np.random.default_rng(n + 1), key=("nonprivate", n)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        return [
            [
                n,
                results[("universal", n)].summary.q90,
                results[("nonprivate", n)].summary.q90,
                gaussian_variance_error_bound(n, EPSILON, SIGMA),
            ]
            for n in sizes
        ]

    rows = run_once(run)
    headers = ["n", "universal q90 error", "non-private q90 error", "theory shape"]
    table = format_table(headers, rows)
    reporter(
        "E9a",
        render_experiment_header("E9a", "Gaussian variance error vs n (Thm 1.10)") + "\n" + table,
        headers=headers,
        rows=rows,
    )
    assert rows[-1][1] < rows[0][1]


def test_e9_error_vs_assumed_sigma_window(run_once, reporter, engine_pool):
    n = 16_000
    factors = (2.0, 100.0, 10_000.0)

    def run():
        cells = []
        for factor in factors:
            sigma_min, sigma_max = SIGMA / factor, SIGMA * factor
            cells.append(StatisticalCell(
                lambda d, g, lo=sigma_min, hi=sigma_max: KarwaVadhanGaussianVariance(
                    sigma_min=lo, sigma_max=hi
                ).estimate(d, EPSILON, g),
                DIST, "variance", n, TRIALS, np.random.default_rng(int(factor)),
                key=("kv", factor)))
            cells.append(StatisticalCell(
                lambda d, g, hi=sigma_max: BoundedLaplaceVariance(sigma_max=hi).estimate(
                    d, EPSILON, g
                ),
                DIST, "variance", n, TRIALS, np.random.default_rng(int(factor) + 1),
                key=("naive", factor)))
            cells.append(StatisticalCell(
                _universal, DIST, "variance", n, TRIALS,
                np.random.default_rng(int(factor) + 2), key=("universal", factor)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        return [
            [
                factor,
                results[("universal", factor)].summary.q90,
                results[("kv", factor)].summary.q90,
                results[("naive", factor)].summary.q90,
            ]
            for factor in factors
        ]

    rows = run_once(run)
    headers = ["sigma-window looseness", "universal q90 (no A2)", "KV18-var q90", "naive A2 q90"]
    table = format_table(headers, rows)
    reporter(
        "E9b",
        render_experiment_header("E9b", "Gaussian variance vs looseness of assumption A2") + "\n" + table,
        headers=headers,
        rows=rows,
    )
    # The naive A2 baseline's noise scales with sigma_max^2, so the loosest
    # setting must be much worse than the universal estimator.
    assert rows[-1][3] > 10.0 * rows[-1][1]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.05


def test_e9_ablation_radius_only_vs_full_range(run_once, reporter, engine_pool):
    """Design-choice ablation: Algorithm 9 uses a radius-only clipping interval
    [0, rad] for the paired statistic.  Emulating a 'full range' variant by
    feeding the paired statistic through the mean estimator shows the
    simplification does not cost accuracy."""
    from repro.core import estimate_mean as _mean

    def full_range_variant(data, gen):
        permuted = gen.permutation(np.asarray(data, dtype=float))
        pairs = permuted.size // 2
        z = (permuted[:2 * pairs:2] - permuted[1:2 * pairs:2]) ** 2
        return 0.5 * _mean(z, EPSILON, 0.1, gen).mean

    def run():
        n = 16_000
        cells = [
            StatisticalCell(_universal, DIST, "variance", n, TRIALS,
                            np.random.default_rng(1), key="radius-only"),
            StatisticalCell(full_range_variant, DIST, "variance", n, TRIALS,
                            np.random.default_rng(2), key="full-range"),
        ]
        radius_only, full_range = run_statistical_grid(cells, pool=engine_pool)
        return [
            ["radius-only clipping (Algorithm 9)", radius_only.summary.q90],
            ["full range search variant", full_range.summary.q90],
        ]

    rows = run_once(run)
    headers = ["variant", "q90 error"]
    table = format_table(headers, rows)
    reporter(
        "E9c",
        render_experiment_header("E9c", "Ablation: radius-only vs full-range clipping") + "\n" + table,
        headers=headers,
        rows=rows,
    )
    # The radius-only variant should be at least competitive.
    assert rows[0][1] <= 3.0 * rows[1][1] + 0.05
