"""E9 — Theorems 1.10/5.3: Gaussian variance estimation vs prior estimators.

Series (a): error vs n for the universal estimator, the non-private sample
variance and the theory curve.  Series (b): error at fixed n as the baselines'
assumed [sigma_min, sigma_max] window is widened — KV18-style and naive A2
baselines degrade while the universal estimator (which takes no window) does
not.  Series (c) ablates the paper's design choice of using a radius-only
range for the paired statistic instead of a full range search.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.analysis.theory import gaussian_variance_error_bound
from repro.baselines import BoundedLaplaceVariance, KarwaVadhanGaussianVariance, SampleVariance
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_variance
from repro.distributions import Gaussian

EPSILON = 0.2
SIGMA = 2.0
TRIALS = 8
DIST = Gaussian(3.0, SIGMA)


def _universal(data, gen):
    return estimate_variance(data, EPSILON, 0.1, gen).variance


def test_e9_error_vs_n(run_once, reporter, engine_workers):
    def run():
        rows = []
        for n in (4_000, 16_000, 64_000):
            universal = run_statistical_trials(_universal, DIST, "variance", n, TRIALS, np.random.default_rng(n), workers=engine_workers)
            nonprivate = run_statistical_trials(
                lambda d, g: SampleVariance().estimate(d), DIST, "variance", n, TRIALS,
                np.random.default_rng(n + 1), workers=engine_workers)
            rows.append(
                [n, universal.summary.q90, nonprivate.summary.q90,
                 gaussian_variance_error_bound(n, EPSILON, SIGMA)]
            )
        return rows

    rows = run_once(run)
    table = format_table(
        ["n", "universal q90 error", "non-private q90 error", "theory shape"], rows
    )
    reporter("E9a", render_experiment_header("E9a", "Gaussian variance error vs n (Thm 1.10)") + "\n" + table)
    assert rows[-1][1] < rows[0][1]


def test_e9_error_vs_assumed_sigma_window(run_once, reporter, engine_workers):
    def run():
        n = 16_000
        rows = []
        for factor in (2.0, 100.0, 10_000.0):
            sigma_min, sigma_max = SIGMA / factor, SIGMA * factor
            kv = run_statistical_trials(
                lambda d, g, lo=sigma_min, hi=sigma_max: KarwaVadhanGaussianVariance(
                    sigma_min=lo, sigma_max=hi
                ).estimate(d, EPSILON, g),
                DIST, "variance", n, TRIALS, np.random.default_rng(int(factor)), workers=engine_workers)
            naive = run_statistical_trials(
                lambda d, g, hi=sigma_max: BoundedLaplaceVariance(sigma_max=hi).estimate(
                    d, EPSILON, g
                ),
                DIST, "variance", n, TRIALS, np.random.default_rng(int(factor) + 1), workers=engine_workers)
            universal = run_statistical_trials(
                _universal, DIST, "variance", n, TRIALS, np.random.default_rng(int(factor) + 2), workers=engine_workers)
            rows.append([factor, universal.summary.q90, kv.summary.q90, naive.summary.q90])
        return rows

    rows = run_once(run)
    table = format_table(
        ["sigma-window looseness", "universal q90 (no A2)", "KV18-var q90", "naive A2 q90"], rows
    )
    reporter(
        "E9b",
        render_experiment_header("E9b", "Gaussian variance vs looseness of assumption A2") + "\n" + table,
    )
    # The naive A2 baseline's noise scales with sigma_max^2, so the loosest
    # setting must be much worse than the universal estimator.
    assert rows[-1][3] > 10.0 * rows[-1][1]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.05


def test_e9_ablation_radius_only_vs_full_range(run_once, reporter, engine_workers):
    """Design-choice ablation: Algorithm 9 uses a radius-only clipping interval
    [0, rad] for the paired statistic.  Emulating a 'full range' variant by
    feeding the paired statistic through the mean estimator shows the
    simplification does not cost accuracy."""
    from repro.core import estimate_mean as _mean

    def run():
        n = 16_000
        radius_only = run_statistical_trials(_universal, DIST, "variance", n, TRIALS, np.random.default_rng(1), workers=engine_workers)

        def full_range_variant(data, gen):
            permuted = gen.permutation(np.asarray(data, dtype=float))
            pairs = permuted.size // 2
            z = (permuted[:2 * pairs:2] - permuted[1:2 * pairs:2]) ** 2
            return 0.5 * _mean(z, EPSILON, 0.1, gen).mean

        full_range = run_statistical_trials(full_range_variant, DIST, "variance", n, TRIALS, np.random.default_rng(2), workers=engine_workers)
        return [
            ["radius-only clipping (Algorithm 9)", radius_only.summary.q90],
            ["full range search variant", full_range.summary.q90],
        ]

    rows = run_once(run)
    table = format_table(["variant", "q90 error"], rows)
    reporter("E9c", render_experiment_header("E9c", "Ablation: radius-only vs full-range clipping") + "\n" + table)
    # The radius-only variant should be at least competitive.
    assert rows[0][1] <= 3.0 * rows[1][1] + 0.05
