"""E8 — Theorems 1.8/4.9: heavy-tailed mean estimation.

For a distribution with a finite k-th central moment, the universal
estimator's privacy error should scale like ``(eps n)^{-(1-1/k)}`` — slower
than the Gaussian rate but still polynomial — with no moment bound supplied.
The KSU20-style baseline achieves a similar rate only when its assumed moment
bound ``mu_k_bound`` is tight; the second series shows it degrading as the
bound is loosened while the universal estimator is unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.analysis.theory import heavy_tailed_mean_error_bound
from repro.baselines import KSUHeavyTailedMean, SampleMean
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import Pareto, StudentT

EPSILON = 0.2
TRIALS = 8


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def test_e8_error_vs_n_student_t(run_once, reporter, engine_workers):
    dist = StudentT(df=3.0, loc=10.0)

    def run():
        mu_2 = dist.central_moment(2)
        rows = []
        for n in (4_000, 16_000, 64_000):
            universal = run_statistical_trials(_universal, dist, "mean", n, TRIALS, np.random.default_rng(n), workers=engine_workers)
            nonprivate = run_statistical_trials(
                lambda d, g: SampleMean().estimate(d), dist, "mean", n, TRIALS, np.random.default_rng(n + 1), workers=engine_workers)
            theory = heavy_tailed_mean_error_bound(
                n, EPSILON, dist.std, k=2, mu_k=mu_2, phi=dist.phi(1.0 / 16.0)
            )
            rows.append([n, universal.summary.q90, nonprivate.summary.q90, theory])
        return rows

    rows = run_once(run)
    table = format_table(
        ["n", "universal q90 error", "non-private q90 error", "theory shape (k=2)"], rows
    )
    reporter("E8a", render_experiment_header("E8a", "Student-t(3) mean error vs n (Thm 1.8)") + "\n" + table)

    assert rows[-1][1] < rows[0][1]


def test_e8_vs_ksu_with_loose_moment_bound(run_once, reporter, engine_workers):
    dist = Pareto(alpha=3.0, x_m=1.0)

    def run():
        n = 16_000
        true_mu2 = dist.central_moment(2)
        rows = []
        for factor in (1.0, 100.0, 10_000.0):
            ksu = run_statistical_trials(
                lambda d, g, f=factor: KSUHeavyTailedMean(
                    radius=100.0, moment_order=2, moment_bound=true_mu2 * f
                ).estimate(d, EPSILON, g),
                dist, "mean", n, TRIALS, np.random.default_rng(int(factor)), workers=engine_workers)
            universal = run_statistical_trials(
                _universal, dist, "mean", n, TRIALS, np.random.default_rng(int(factor) + 1), workers=engine_workers)
            rows.append([factor, universal.summary.q90, ksu.summary.q90])
        return rows

    rows = run_once(run)
    table = format_table(
        ["moment-bound looseness factor", "universal q90 (no bound needed)", "KSU20 q90"], rows
    )
    reporter(
        "E8b",
        render_experiment_header("E8b", "Pareto mean: universal vs KSU20 with loose moment bounds") + "\n" + table,
    )

    # KSU20 degrades as its assumed bound loosens; the universal estimator does not.
    assert rows[-1][2] > rows[0][2]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.05
    assert rows[-1][2] > rows[-1][1]
