"""E8 — Theorems 1.8/4.9: heavy-tailed mean estimation.

For a distribution with a finite k-th central moment, the universal
estimator's privacy error should scale like ``(eps n)^{-(1-1/k)}`` — slower
than the Gaussian rate but still polynomial — with no moment bound supplied.
The KSU20-style baseline achieves a similar rate only when its assumed moment
bound ``mu_k_bound`` is tight; the second series shows it degrading as the
bound is loosened while the universal estimator is unaffected.

Both series sweep their grids through
:func:`repro.analysis.run_statistical_grid` on the session's shared pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.analysis.theory import heavy_tailed_mean_error_bound
from repro.baselines import KSUHeavyTailedMean, SampleMean
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import Pareto, StudentT

EPSILON = 0.2
TRIALS = 8


def _universal(data, gen):
    return estimate_mean(data, EPSILON, 0.1, gen).mean


def test_e8_error_vs_n_student_t(run_once, reporter, engine_pool):
    dist = StudentT(df=3.0, loc=10.0)
    sizes = (4_000, 16_000, 64_000)

    def run():
        mu_2 = dist.central_moment(2)
        cells = []
        for n in sizes:
            cells.append(StatisticalCell(
                _universal, dist, "mean", n, TRIALS, np.random.default_rng(n),
                key=("universal", n)))
            cells.append(StatisticalCell(
                lambda d, g: SampleMean().estimate(d), dist, "mean", n, TRIALS,
                np.random.default_rng(n + 1), key=("nonprivate", n)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        rows = []
        for n in sizes:
            theory = heavy_tailed_mean_error_bound(
                n, EPSILON, dist.std, k=2, mu_k=mu_2, phi=dist.phi(1.0 / 16.0)
            )
            rows.append([
                n,
                results[("universal", n)].summary.q90,
                results[("nonprivate", n)].summary.q90,
                theory,
            ])
        return rows

    rows = run_once(run)
    headers = ["n", "universal q90 error", "non-private q90 error", "theory shape (k=2)"]
    table = format_table(headers, rows)
    reporter(
        "E8a",
        render_experiment_header("E8a", "Student-t(3) mean error vs n (Thm 1.8)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    assert rows[-1][1] < rows[0][1]


def test_e8_vs_ksu_with_loose_moment_bound(run_once, reporter, engine_pool):
    dist = Pareto(alpha=3.0, x_m=1.0)
    n = 16_000
    factors = (1.0, 100.0, 10_000.0)

    def run():
        true_mu2 = dist.central_moment(2)
        cells = []
        for factor in factors:
            cells.append(StatisticalCell(
                lambda d, g, f=factor: KSUHeavyTailedMean(
                    radius=100.0, moment_order=2, moment_bound=true_mu2 * f
                ).estimate(d, EPSILON, g),
                dist, "mean", n, TRIALS, np.random.default_rng(int(factor)),
                key=("ksu", factor)))
            cells.append(StatisticalCell(
                _universal, dist, "mean", n, TRIALS,
                np.random.default_rng(int(factor) + 1), key=("universal", factor)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        return [
            [
                factor,
                results[("universal", factor)].summary.q90,
                results[("ksu", factor)].summary.q90,
            ]
            for factor in factors
        ]

    rows = run_once(run)
    headers = ["moment-bound looseness factor", "universal q90 (no bound needed)", "KSU20 q90"]
    table = format_table(headers, rows)
    reporter(
        "E8b",
        render_experiment_header("E8b", "Pareto mean: universal vs KSU20 with loose moment bounds") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # KSU20 degrades as its assumed bound loosens; the universal estimator does not.
    assert rows[-1][2] > rows[0][2]
    universal_errors = [row[1] for row in rows]
    assert max(universal_errors) <= 5.0 * min(universal_errors) + 0.05
    assert rows[-1][2] > rows[-1][1]
