"""SERVICE — queries/sec of the private-query service, cold vs cached.

Three operating points of :class:`repro.service.QueryService` on one
registered dataset:

* **cold / serial** — distinct queries, cache disabled, no engine pool:
  every answer is a full estimator run in-process (the floor);
* **cold / pooled** — the same distinct queries fanned out as one
  ``submit_many`` batch across the session's shared engine pool (with
  ``--engine-workers 1`` this equals the serial path, bit for bit);
* **cached** — one released answer replayed: each request is a canonical-key
  lookup at zero marginal epsilon — the DP-correct fast path and the
  service's throughput lever.  The cached/cold ratio is asserted to be large
  (>= 50x; in practice it is orders of magnitude).

Emits the same structured JSON as the E-drivers (``results/service.json``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.service import AnswerCache, Query, QueryRequest, QueryService

N = 20_000
DISTINCT_QUERIES = 24
CACHED_REQUESTS = 2_000
TOTAL_BUDGET = 1_000.0  # roomy: this benchmark measures throughput, not refusals
SEED = 20230401


def _distinct_requests() -> list:
    """A mixed bag of distinct queries (kind x epsilon), no two alike."""
    requests = []
    for index in range(DISTINCT_QUERIES):
        kind = ("mean", "variance", "iqr", "quantile")[index % 4]
        epsilon = 0.2 + 0.01 * index
        levels = (0.5, 0.9) if kind == "quantile" else ()
        requests.append(QueryRequest("d", Query(kind, epsilon, levels=levels)))
    return requests


def _dataset() -> np.ndarray:
    return np.random.default_rng(SEED).normal(250.0, 40.0, size=N)


def _service(pool=None, cache=None) -> QueryService:
    service = QueryService(pool=pool, seed=SEED, cache=cache)
    service.register("d", _dataset(), TOTAL_BUDGET, share=pool is not None)
    return service


def test_service_throughput(run_once, reporter, engine_pool):
    def run():
        requests = _distinct_requests()

        # Cold, serial: cache off so every request is a fresh estimator run.
        serial = _service(cache=AnswerCache(maxsize=0))
        start = time.perf_counter()
        serial_answers = serial.submit_many(requests)
        serial_seconds = time.perf_counter() - start

        # Cold, pooled: same batch over the session's shared engine pool.
        pooled = _service(pool=engine_pool, cache=AnswerCache(maxsize=0))
        start = time.perf_counter()
        pooled_answers = pooled.submit_many(requests)
        pooled_seconds = time.perf_counter() - start
        pooled.registry.close()

        # Determinism contract: the pool changes wall-clock only.
        assert [a.value for a in serial_answers] == [a.value for a in pooled_answers]
        assert all(a.ok for a in serial_answers)

        # Cached: release once, then replay the identical query.
        cached_service = _service()
        warm = cached_service.query("d", "mean", epsilon=0.5)
        assert warm.ok and not warm.cached
        start = time.perf_counter()
        for _ in range(CACHED_REQUESTS):
            answer = cached_service.query("d", "mean", epsilon=0.5)
        cached_seconds = time.perf_counter() - start
        assert answer.cached and answer.epsilon_charged == 0.0
        assert cached_service.cache_stats.hits == CACHED_REQUESTS

        rows = [
            ["cold-serial", len(requests), serial_seconds,
             len(requests) / serial_seconds, 1.0],
            ["cold-pooled", len(requests), pooled_seconds,
             len(requests) / pooled_seconds, serial_seconds / pooled_seconds],
            ["cached", CACHED_REQUESTS, cached_seconds,
             CACHED_REQUESTS / cached_seconds,
             (CACHED_REQUESTS / cached_seconds) / (len(requests) / serial_seconds)],
        ]
        return rows

    rows = run_once(run)
    headers = ["mode", "queries", "seconds", "queries/sec", "speedup vs cold-serial"]
    table = format_table(headers, rows)
    reporter(
        "SERVICE",
        render_experiment_header(
            "SERVICE", "Query service throughput: cold vs cached, serial vs pooled"
        )
        + "\n"
        + table,
        headers=headers,
        rows=rows,
    )

    cold_qps = rows[0][3]
    cached_qps = rows[2][3]
    # The cache answers from memory: even on a loaded CI box it must beat a
    # full estimator run by a wide margin (in practice it is >= 1000x).
    assert cached_qps >= 50.0 * cold_qps, (
        f"cached path ({cached_qps:.0f} q/s) should dwarf the cold path "
        f"({cold_qps:.0f} q/s)"
    )
