"""SERVICE — queries/sec of the private-query service, cold vs cached.

Three operating points of :class:`repro.service.QueryService` on one
registered dataset:

* **cold / serial** — distinct queries, cache disabled, no engine pool:
  every answer is a full estimator run in-process (the floor);
* **cold / pooled** — the same distinct queries fanned out as one
  ``submit_many`` batch across the session's shared engine pool (with
  ``--engine-workers 1`` this equals the serial path, bit for bit);
* **cached** — one released answer replayed: each request is a canonical-key
  lookup at zero marginal epsilon — the DP-correct fast path and the
  service's throughput lever.  The cached/cold ratio is asserted to be large
  (>= 50x; in practice it is orders of magnitude).

A second experiment (``ESTIMATOR_REGISTRY``) measures the same cold/cached
split for an adapted ``baseline.*`` kind served through the estimator-spec
registry, so the perf trajectory covers the pluggable-kind surface too.

A third experiment (``SERVICE_COLD``) isolates the dataset-sketch refactor:
the same distinct cold queries (a dwork-lei-heavy mix at n=100k, every kind
re-sorting per query before the refactor) are run against one registration
with sketches (the default) and one with ``sketches=False`` — the latter is
exactly the pre-refactor execution path.  Answers are asserted bit-for-bit
identical and the sketch-backed cold path must clear >= 10x the no-sketch
QPS; a third row charges the one-time registration cost to the sketch side
to show the amortisation is immediate.

A fourth experiment (``SERVICE_FRONTENDS``) compares the two HTTP
front-ends on that cached fast path over real sockets: the same keep-alive
query stream is driven at 16 / 64 / 256 concurrent connections against the
thread-per-connection server and the asyncio server.  The asyncio front-end
answers cache hits on one event loop instead of scheduling hundreds of GIL-
contending threads, and is asserted to sustain >= 2x the threaded QPS at 64
connections.

Emits the same structured JSON as the E-drivers (``results/service.json``
and ``results/service_frontends.json``).
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.service import (
    AnswerCache,
    AsyncServerThread,
    Query,
    QueryRequest,
    QueryService,
    make_server,
    serve_forever,
)

N = 20_000
DISTINCT_QUERIES = 24
CACHED_REQUESTS = 2_000
TOTAL_BUDGET = 1_000.0  # roomy: this benchmark measures throughput, not refusals
SEED = 20230401


def _distinct_requests() -> list:
    """A mixed bag of distinct queries (kind x epsilon), no two alike."""
    requests = []
    for index in range(DISTINCT_QUERIES):
        kind = ("mean", "variance", "iqr", "quantile")[index % 4]
        epsilon = 0.2 + 0.01 * index
        levels = (0.5, 0.9) if kind == "quantile" else ()
        requests.append(QueryRequest("d", Query(kind, epsilon, levels=levels)))
    return requests


def _dataset() -> np.ndarray:
    return np.random.default_rng(SEED).normal(250.0, 40.0, size=N)


def _service(pool=None, cache=None) -> QueryService:
    service = QueryService(pool=pool, seed=SEED, cache=cache)
    service.register("d", _dataset(), TOTAL_BUDGET, share=pool is not None)
    return service


def test_service_throughput(run_once, reporter, engine_pool):
    def run():
        requests = _distinct_requests()

        # Cold, serial: cache off so every request is a fresh estimator run.
        serial = _service(cache=AnswerCache(maxsize=0))
        start = time.perf_counter()
        serial_answers = serial.submit_many(requests)
        serial_seconds = time.perf_counter() - start

        # Cold, pooled: same batch over the session's shared engine pool.
        pooled = _service(pool=engine_pool, cache=AnswerCache(maxsize=0))
        start = time.perf_counter()
        pooled_answers = pooled.submit_many(requests)
        pooled_seconds = time.perf_counter() - start
        pooled.registry.close()

        # Determinism contract: the pool changes wall-clock only.
        assert [a.value for a in serial_answers] == [a.value for a in pooled_answers]
        assert all(a.ok for a in serial_answers)

        # Cached: release once, then replay the identical query.
        cached_service = _service()
        warm = cached_service.query("d", "mean", epsilon=0.5)
        assert warm.ok and not warm.cached
        start = time.perf_counter()
        for _ in range(CACHED_REQUESTS):
            answer = cached_service.query("d", "mean", epsilon=0.5)
        cached_seconds = time.perf_counter() - start
        assert answer.cached and answer.epsilon_charged == 0.0
        assert cached_service.cache_stats.hits == CACHED_REQUESTS

        rows = [
            ["cold-serial", len(requests), serial_seconds,
             len(requests) / serial_seconds, 1.0],
            ["cold-pooled", len(requests), pooled_seconds,
             len(requests) / pooled_seconds, serial_seconds / pooled_seconds],
            ["cached", CACHED_REQUESTS, cached_seconds,
             CACHED_REQUESTS / cached_seconds,
             (CACHED_REQUESTS / cached_seconds) / (len(requests) / serial_seconds)],
        ]
        return rows

    rows = run_once(run)
    headers = ["mode", "queries", "seconds", "queries/sec", "speedup vs cold-serial"]
    table = format_table(headers, rows)
    reporter(
        "SERVICE",
        render_experiment_header(
            "SERVICE", "Query service throughput: cold vs cached, serial vs pooled"
        )
        + "\n"
        + table,
        headers=headers,
        rows=rows,
    )

    cold_qps = rows[0][3]
    cached_qps = rows[2][3]
    # The cache answers from memory: even on a loaded CI box it must beat a
    # full estimator run by a wide margin (in practice it is >= 1000x).
    assert cached_qps >= 50.0 * cold_qps, (
        f"cached path ({cached_qps:.0f} q/s) should dwarf the cold path "
        f"({cold_qps:.0f} q/s)"
    )


# ---------------------------------------------------------------------------
# estimator registry: cold vs cached QPS for an adapted baseline kind

BASELINE_KIND = "baseline.coinpress_mean"
BASELINE_PARAMS = {"radius": 1e4, "sigma_max": 1e2}
BASELINE_N = 100_000
BASELINE_DISTINCT = 16
BASELINE_CACHED_REQUESTS = 2_000


def test_estimator_registry_throughput(run_once, reporter):
    """Cold vs cached QPS for one ``baseline.*`` kind served via the registry.

    The registry made the whole :mod:`repro.baselines` family servable; this
    experiment pins the perf trajectory of that new surface: a cold release
    runs the adapted estimator end-to-end (admission, registry dispatch,
    ledger, commit), while a repeat is the same canonical-key cache hit as
    any built-in kind — zero marginal epsilon and orders of magnitude more
    throughput.
    """

    def run():
        data = np.random.default_rng(SEED).normal(250.0, 40.0, size=BASELINE_N)

        cold = QueryService(seed=SEED, cache=AnswerCache(maxsize=0))
        cold.register("d", data, TOTAL_BUDGET)
        requests = [
            QueryRequest(
                "d",
                Query(
                    BASELINE_KIND,
                    0.2 + 0.01 * index,
                    params=tuple(BASELINE_PARAMS.items()),
                ),
            )
            for index in range(BASELINE_DISTINCT)
        ]
        start = time.perf_counter()
        answers = cold.submit_many(requests)
        cold_seconds = time.perf_counter() - start
        assert all(a.ok for a in answers)
        assert all(a.epsilon_charged == a.query.epsilon for a in answers)

        cached = QueryService(seed=SEED)
        cached.register("d", data, TOTAL_BUDGET)
        warm = cached.query("d", BASELINE_KIND, 0.5, params=dict(BASELINE_PARAMS))
        assert warm.ok and not warm.cached
        start = time.perf_counter()
        for _ in range(BASELINE_CACHED_REQUESTS):
            answer = cached.query("d", BASELINE_KIND, 0.5, params=dict(BASELINE_PARAMS))
        cached_seconds = time.perf_counter() - start
        assert answer.cached and answer.epsilon_charged == 0.0

        return [
            [BASELINE_KIND + " cold", BASELINE_DISTINCT, cold_seconds,
             BASELINE_DISTINCT / cold_seconds, 1.0],
            [BASELINE_KIND + " cached", BASELINE_CACHED_REQUESTS, cached_seconds,
             BASELINE_CACHED_REQUESTS / cached_seconds,
             (BASELINE_CACHED_REQUESTS / cached_seconds)
             / (BASELINE_DISTINCT / cold_seconds)],
        ]

    rows = run_once(run)
    headers = ["mode", "queries", "seconds", "queries/sec", "speedup vs cold"]
    reporter(
        "ESTIMATOR_REGISTRY",
        render_experiment_header(
            "ESTIMATOR_REGISTRY",
            "Adapted baseline kind over the registry: cold vs cached QPS",
        )
        + "\n"
        + format_table(headers, rows),
        headers=headers,
        rows=rows,
    )

    cold_qps, cached_qps = rows[0][3], rows[1][3]
    # The cached path must clearly dominate even this cheap baseline's cold
    # path (in practice the gap is far larger for the universal estimators).
    assert cached_qps >= 10.0 * cold_qps, (
        f"cached baseline path ({cached_qps:.0f} q/s) should dwarf the cold "
        f"path ({cold_qps:.0f} q/s)"
    )


# ---------------------------------------------------------------------------
# dataset sketches: sketch-backed vs pre-refactor cold path at n=100k

COLD_N = 100_000
COLD_SPEEDUP_FLOOR = 10.0


def _cold_requests() -> list:
    """A dwork-lei-heavy cold mix: every kind re-sorted per query pre-refactor."""
    requests = []
    for index in range(2):
        requests.append(QueryRequest("d", Query("iqr", 0.31 + 0.01 * index)))
    for index in range(2):
        requests.append(
            QueryRequest("d", Query("quantile", 0.41 + 0.01 * index, levels=(0.5, 0.9)))
        )
    for index in range(8):
        requests.append(
            QueryRequest("d", Query("baseline.dwork_lei_iqr", 0.51 + 0.01 * index))
        )
    return requests


def test_cold_path_sketch_speedup(run_once, reporter):
    """Sketch-backed cold QPS vs the pre-refactor path, answers bit-for-bit.

    ``sketches=False`` registration stores the bare array and every query
    re-derives its sorted representation from scratch — exactly the execution
    path before the :class:`repro.dataview.DatasetView` refactor.  The default
    registration materialises the declared sketches once; the per-query seed
    derivation is untouched, so the answers must match bit for bit and the
    only difference is wall-clock.
    """

    def run():
        data = np.random.default_rng(SEED).normal(250.0, 40.0, size=COLD_N)
        requests = _cold_requests()

        plain = QueryService(seed=SEED, cache=AnswerCache(maxsize=0))
        plain.register("d", data, TOTAL_BUDGET, sketches=False)
        start = time.perf_counter()
        plain_answers = plain.submit_many(requests)
        plain_seconds = time.perf_counter() - start

        sketched = QueryService(seed=SEED, cache=AnswerCache(maxsize=0))
        start = time.perf_counter()
        sketched.register("d", data, TOTAL_BUDGET)
        register_seconds = time.perf_counter() - start
        start = time.perf_counter()
        sketched_answers = sketched.submit_many(requests)
        sketched_seconds = time.perf_counter() - start

        # The refactor's contract: sketches change wall-clock only.
        assert all(a.ok for a in plain_answers)
        assert [
            (a.key, a.value, a.epsilon_charged) for a in plain_answers
        ] == [(a.key, a.value, a.epsilon_charged) for a in sketched_answers]

        count = len(requests)
        amortised = register_seconds + sketched_seconds
        return [
            ["cold-no-sketch", count, plain_seconds,
             count / plain_seconds, 1.0],
            ["cold-sketch", count, sketched_seconds,
             count / sketched_seconds, plain_seconds / sketched_seconds],
            ["cold-sketch+registration", count, amortised,
             count / amortised, plain_seconds / amortised],
        ]

    rows = run_once(run)
    headers = ["mode", "queries", "seconds", "queries/sec", "speedup vs no-sketch"]
    reporter(
        "SERVICE_COLD",
        render_experiment_header(
            "SERVICE_COLD",
            "Cold-path QPS at n=100k: registration-time sketches vs per-query sorts",
        )
        + "\n"
        + format_table(headers, rows),
        headers=headers,
        rows=rows,
    )

    # Acceptance floor for the sketch refactor (in practice ~20x on this mix).
    speedup = rows[1][4]
    assert speedup >= COLD_SPEEDUP_FLOOR, (
        f"sketch-backed cold path ({rows[1][3]:.1f} q/s) should be >= "
        f"{COLD_SPEEDUP_FLOOR:.0f}x the no-sketch path ({rows[0][3]:.1f} q/s); "
        f"got {speedup:.1f}x"
    )


# ---------------------------------------------------------------------------
# front-end comparison: threaded vs async HTTP servers on the cached path

CONNECTION_COUNTS = (16, 64, 256)
FRONTEND_TOTAL_REQUESTS = 4_096  # per measurement, split across connections


async def _drive_connection(host: str, port: int, request: bytes, count: int) -> None:
    """One keep-alive connection issuing ``count`` sequential requests.

    A reset mid-stream (the thread-per-connection server sheds load this way
    at high fan-in) reconnects and finishes the remaining requests — the
    measured front-end pays for its own reconnects.
    """
    remaining = count
    reconnects = 0
    while remaining > 0:
        writer = None
        try:
            reader, writer = await asyncio.open_connection(host, port)
            while remaining > 0:
                writer.write(request)
                await writer.drain()
                status_line = await reader.readline()
                assert b" 200 " in status_line, status_line
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                await reader.readexactly(length)
                remaining -= 1
        except (ConnectionError, asyncio.IncompleteReadError):
            reconnects += 1
            if reconnects > 16:
                raise
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, asyncio.IncompleteReadError):
                    pass


def _measure_frontend_qps(host: str, port: int, connections: int) -> tuple:
    """Drive the warm cached query over ``connections`` keep-alive sockets."""
    payload = json.dumps(
        {"dataset": "d", "kind": "mean", "epsilon": 0.5}
    ).encode()
    request = (
        f"POST /query HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(payload)}\r\n"
        "\r\n"
    ).encode() + payload
    per_connection = max(FRONTEND_TOTAL_REQUESTS // connections, 4)
    total = per_connection * connections

    async def run_all() -> None:
        await asyncio.gather(
            *(
                _drive_connection(host, port, request, per_connection)
                for _ in range(connections)
            )
        )

    start = time.perf_counter()
    asyncio.run(run_all())
    seconds = time.perf_counter() - start
    return total, seconds, total / seconds


def test_frontend_comparison(run_once, reporter):
    """Cached-path QPS per front-end at 16/64/256 concurrent connections."""

    def run():
        rows = []
        qps_at_64 = {}
        for frontend in ("threaded", "async"):
            service = _service()  # warm one cached answer, then hammer it
            warm = service.query("d", "mean", epsilon=0.5)
            assert warm.ok
            if frontend == "threaded":
                server = make_server(service, port=0, quiet=True)
                thread = serve_forever(server)
                host, port = server.server_address[:2]
                try:
                    for connections in CONNECTION_COUNTS:
                        total, seconds, qps = _measure_frontend_qps(
                            host, port, connections
                        )
                        rows.append([frontend, connections, total, seconds, qps])
                        if connections == 64:
                            qps_at_64[frontend] = qps
                finally:
                    server.shutdown()
                    server.server_close()
                    thread.join(timeout=5)
            else:
                with AsyncServerThread(service, port=0, quiet=True) as runner:
                    host, port = runner.server.server_address
                    for connections in CONNECTION_COUNTS:
                        total, seconds, qps = _measure_frontend_qps(
                            host, port, connections
                        )
                        rows.append([frontend, connections, total, seconds, qps])
                        if connections == 64:
                            qps_at_64[frontend] = qps
            service.registry.close()
        for row in rows:
            row.append(row[4] / qps_at_64["threaded"])
        return rows, qps_at_64

    rows, qps_at_64 = run_once(run)
    headers = [
        "frontend", "connections", "requests", "seconds", "queries/sec",
        "vs threaded@64",
    ]
    table = format_table(headers, rows)
    reporter(
        "SERVICE_FRONTENDS",
        render_experiment_header(
            "SERVICE_FRONTENDS",
            "Cached-path QPS over HTTP: threaded vs async front-end",
        )
        + "\n"
        + table,
        headers=headers,
        rows=rows,
    )

    # The event loop must clearly beat thread-per-connection at fan-in: the
    # acceptance bar is 2x on the cached path at 64 concurrent connections.
    assert qps_at_64["async"] >= 2.0 * qps_at_64["threaded"], (
        f"async front-end ({qps_at_64['async']:.0f} q/s) should sustain >= 2x "
        f"the threaded front-end ({qps_at_64['threaded']:.0f} q/s) "
        "at 64 connections"
    )
