"""E3 — Theorem 3.3/3.8: empirical mean error scaling.

The instance-optimal bound is ``O(gamma(D) loglog(gamma(D)) / (eps n))``.  Two
sweeps verify the two key dependencies:

* fixed ``n`` and ``eps``, sweeping the dataset width ``gamma`` — the error
  should grow (sub-)linearly in ``gamma``;
* fixed ``gamma``, sweeping ``n`` — the error should decay like ``1/n``.

Each row reports the measured q90 error next to the theory curve (without its
universal constant) so the shapes can be compared.  Each sweep is one
:func:`repro.engine.run_grid` call over the session's persistent pool.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import summarize_errors
from repro.analysis.theory import empirical_mean_error_bound
from repro.bench import format_table, render_experiment_header, wide_spread_dataset
from repro.empirical import estimate_empirical_mean
from repro.engine import GridCell, run_grid

EPSILON = 0.5
TRIALS = 12


def _error_cell(n: int, width: int) -> GridCell:
    def trial(index, gen):
        data = wide_spread_dataset(n, width=width, rng=gen)
        result = estimate_empirical_mean(data, EPSILON, 0.1, gen)
        return result.absolute_error

    return GridCell(trial_fn=trial, trials=TRIALS, rng=n + width, key=(n, width))


def _q90_errors(pairs, pool):
    grid = run_grid([_error_cell(n, width) for n, width in pairs], pool=pool)
    return {
        key: summarize_errors(list(grid.by_key(key).results)).q90
        for key in ((n, width) for n, width in pairs)
    }


def test_e3_error_vs_width(run_once, reporter, engine_pool):
    def run():
        n = 4000
        widths = (100, 1_000, 10_000, 100_000)
        measured = _q90_errors([(n, width) for width in widths], engine_pool)
        rows = []
        for width in widths:
            theory = empirical_mean_error_bound(float(width), n, EPSILON, 0.1)
            rows.append([width, measured[(n, width)], theory, measured[(n, width)] / theory])
        return rows

    rows = run_once(run)
    headers = ["gamma(D)", "measured q90 error", "theory bound", "ratio"]
    table = format_table(headers, rows)
    reporter(
        "E3a",
        render_experiment_header("E3a", "Empirical mean error vs dataset width (Thm 3.3)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # Error grows with gamma but stays within a constant multiple of the bound.
    assert rows[-1][1] > rows[0][1]
    assert all(row[3] <= 10.0 for row in rows)


def test_e3_error_vs_n(run_once, reporter, engine_pool):
    def run():
        width = 10_000
        sizes = (1_000, 4_000, 16_000, 64_000)
        measured = _q90_errors([(n, width) for n in sizes], engine_pool)
        rows = []
        for n in sizes:
            theory = empirical_mean_error_bound(float(width), n, EPSILON, 0.1)
            rows.append([n, measured[(n, width)], theory, measured[(n, width)] / theory])
        return rows

    rows = run_once(run)
    headers = ["n", "measured q90 error", "theory bound", "ratio"]
    table = format_table(headers, rows)
    reporter(
        "E3b",
        render_experiment_header("E3b", "Empirical mean error vs n (Thm 3.3)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # 64x more data should buy at least ~8x less error (theory predicts 64x).
    assert rows[-1][1] < rows[0][1] / 8.0
    assert all(row[3] <= 10.0 for row in rows)
