"""E3 — Theorem 3.3/3.8: empirical mean error scaling.

The instance-optimal bound is ``O(gamma(D) loglog(gamma(D)) / (eps n))``.  Two
sweeps verify the two key dependencies:

* fixed ``n`` and ``eps``, sweeping the dataset width ``gamma`` — the error
  should grow (sub-)linearly in ``gamma``;
* fixed ``gamma``, sweeping ``n`` — the error should decay like ``1/n``.

Each row reports the measured q90 error next to the theory curve (without its
universal constant) so the shapes can be compared.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import summarize_errors
from repro.analysis.theory import empirical_mean_error_bound
from repro.bench import format_table, render_experiment_header, wide_spread_dataset
from repro.empirical import estimate_empirical_mean
from repro.engine import run_batch

EPSILON = 0.5
TRIALS = 12


def _q90_error(n: int, width: int, workers: int = 1) -> float:
    def trial(index, gen):
        data = wide_spread_dataset(n, width=width, rng=gen)
        result = estimate_empirical_mean(data, EPSILON, 0.1, gen)
        return result.absolute_error

    batch = run_batch(trial, TRIALS, rng=n + width, workers=workers)
    return summarize_errors(list(batch.results)).q90


def test_e3_error_vs_width(run_once, reporter, engine_workers):
    def run():
        n = 4000
        rows = []
        for width in (100, 1_000, 10_000, 100_000):
            measured = _q90_error(n, width, engine_workers)
            theory = empirical_mean_error_bound(float(width), n, EPSILON, 0.1)
            rows.append([width, measured, theory, measured / theory])
        return rows

    rows = run_once(run)
    table = format_table(["gamma(D)", "measured q90 error", "theory bound", "ratio"], rows)
    reporter("E3a", render_experiment_header("E3a", "Empirical mean error vs dataset width (Thm 3.3)") + "\n" + table)

    # Error grows with gamma but stays within a constant multiple of the bound.
    assert rows[-1][1] > rows[0][1]
    assert all(row[3] <= 10.0 for row in rows)


def test_e3_error_vs_n(run_once, reporter, engine_workers):
    def run():
        width = 10_000
        rows = []
        for n in (1_000, 4_000, 16_000, 64_000):
            measured = _q90_error(n, width, engine_workers)
            theory = empirical_mean_error_bound(float(width), n, EPSILON, 0.1)
            rows.append([n, measured, theory, measured / theory])
        return rows

    rows = run_once(run)
    table = format_table(["n", "measured q90 error", "theory bound", "ratio"], rows)
    reporter("E3b", render_experiment_header("E3b", "Empirical mean error vs n (Thm 3.3)") + "\n" + table)

    # 64x more data should buy at least ~8x less error (theory predicts 64x).
    assert rows[-1][1] < rows[0][1] / 8.0
    assert all(row[3] <= 10.0 for row in rows)
