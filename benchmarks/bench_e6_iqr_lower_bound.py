"""E6 — Theorem 4.3: the private IQR lower bound lands in [phi(1/16)/4, IQR].

The bucket-size search is the ingredient that removes assumption A2, so its
guarantee is benchmarked separately across well-behaved and ill-behaved
distributions and across scales spanning 10^-3 to 10^3.  Each row reports the
success rate of the containment event and the median returned value next to
the two analytic endpoints.

Each distribution is one :func:`repro.engine.run_grid` cell on the session's
persistent pool.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr_lower_bound
from repro.distributions import Gaussian, LogNormal, SpikeMixture, Uniform
from repro.engine import GridCell, run_grid

N = 8000
EPSILON = 1.0
TRIALS = 12

DISTRIBUTIONS = [
    Gaussian(0.0, 1e-3),
    Gaussian(0.0, 1.0),
    Gaussian(50.0, 1e3),
    Uniform(-5.0, 5.0),
    LogNormal(0.0, 1.0),
    SpikeMixture(bulk_sigma=1.0, spike_width=1e-5, spike_mass=0.2),
]


def _containment_cell(cell_index: int, dist) -> GridCell:
    def trial(index, gen):
        data = dist.sample(N, gen)
        return estimate_iqr_lower_bound(data, EPSILON, 0.1, gen).value

    return GridCell(trial_fn=trial, trials=TRIALS, rng=cell_index, key=dist.name)


def test_e6_iqr_lower_bound_containment(run_once, reporter, engine_pool):
    def run():
        grid = run_grid(
            [_containment_cell(i, dist) for i, dist in enumerate(DISTRIBUTIONS)],
            pool=engine_pool,
        )
        rows = []
        for dist in DISTRIBUTIONS:
            lower = dist.phi(1.0 / 16.0) / 4.0
            upper = dist.iqr
            values = list(grid.by_key(dist.name).results)
            hits = sum(1 for value in values if lower * 0.99 <= value <= upper * 1.01)
            rows.append([dist.name, lower, upper, float(np.median(values)), hits / TRIALS])
        return rows

    rows = run_once(run)
    headers = ["distribution", "phi(1/16)/4", "IQR", "median estimate", "containment rate"]
    table = format_table(headers, rows)
    reporter(
        "E6",
        render_experiment_header("E6", "IQR lower bound containment (Thm 4.3)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    for row in rows:
        # The estimate must essentially never exceed the IQR; full containment
        # should hold in the vast majority of trials for well-behaved P.
        assert row[3] <= row[2] * 1.05
        assert row[4] >= 0.75
