"""E6 — Theorem 4.3: the private IQR lower bound lands in [phi(1/16)/4, IQR].

The bucket-size search is the ingredient that removes assumption A2, so its
guarantee is benchmarked separately across well-behaved and ill-behaved
distributions and across scales spanning 10^-3 to 10^3.  Each row reports the
success rate of the containment event and the median returned value next to
the two analytic endpoints.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr_lower_bound
from repro.distributions import Gaussian, LogNormal, SpikeMixture, Uniform

N = 8000
EPSILON = 1.0
TRIALS = 12

DISTRIBUTIONS = [
    Gaussian(0.0, 1e-3),
    Gaussian(0.0, 1.0),
    Gaussian(50.0, 1e3),
    Uniform(-5.0, 5.0),
    LogNormal(0.0, 1.0),
    SpikeMixture(bulk_sigma=1.0, spike_width=1e-5, spike_mass=0.2),
]


def test_e6_iqr_lower_bound_containment(run_once, reporter):
    def run():
        rows = []
        for dist in DISTRIBUTIONS:
            lower = dist.phi(1.0 / 16.0) / 4.0
            upper = dist.iqr
            values, hits = [], 0
            for seed in range(TRIALS):
                gen = np.random.default_rng(seed)
                data = dist.sample(N, gen)
                value = estimate_iqr_lower_bound(data, EPSILON, 0.1, gen).value
                values.append(value)
                if lower * 0.99 <= value <= upper * 1.01:
                    hits += 1
            rows.append([dist.name, lower, upper, float(np.median(values)), hits / TRIALS])
        return rows

    rows = run_once(run)
    table = format_table(
        ["distribution", "phi(1/16)/4", "IQR", "median estimate", "containment rate"],
        rows,
    )
    reporter("E6", render_experiment_header("E6", "IQR lower bound containment (Thm 4.3)") + "\n" + table)

    for row in rows:
        # The estimate must essentially never exceed the IQR; full containment
        # should hold in the vast majority of trials for well-behaved P.
        assert row[3] <= row[2] * 1.05
        assert row[4] >= 0.75
