"""E11 — Theorems 1.12/6.2: IQR estimation vs the DL09 propose-test-release baseline.

The key comparison of Section 6: the universal IQR estimator's privacy error
shrinks like ``1/(eps n)`` (so quadrupling n roughly quarters it), while the
DL09 baseline — the only prior universal scale estimator, and only
(eps, delta)-DP — improves only like ``1/log n``.  The series reports both
errors and the DL09 refusal rate (its PTR test can decline to answer).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.analysis.theory import iqr_error_bound
from repro.baselines import DworkLeiIQR, SampleIQR
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr
from repro.distributions import Gaussian

EPSILON = 0.3
TRIALS = 8
DIST = Gaussian(0.0, 1.0)


def _universal(data, gen):
    return estimate_iqr(data, EPSILON, 0.1, gen).iqr


def test_e11_iqr_convergence(run_once, reporter, engine_workers):
    def run():
        theta = DIST.theta(DIST.iqr / 8.0)
        rows = []
        for n in (2_000, 8_000, 32_000, 128_000):
            universal = run_statistical_trials(_universal, DIST, "iqr", n, TRIALS, np.random.default_rng(n), workers=engine_workers)
            dl09 = run_statistical_trials(
                lambda d, g: DworkLeiIQR(delta=1e-6).estimate(d, EPSILON, g),
                DIST, "iqr", n, TRIALS, np.random.default_rng(n + 1), allow_failures=True, workers=engine_workers)
            nonprivate = run_statistical_trials(
                lambda d, g: SampleIQR().estimate(d), DIST, "iqr", n, TRIALS, np.random.default_rng(n + 2), workers=engine_workers)
            rows.append(
                [
                    n,
                    universal.summary.q90,
                    dl09.summary.q90,
                    dl09.failures / TRIALS,
                    nonprivate.summary.q90,
                    iqr_error_bound(n, EPSILON, DIST.iqr, theta),
                ]
            )
        return rows

    rows = run_once(run)
    table = format_table(
        ["n", "universal q90 error", "DL09 q90 error", "DL09 refusal rate",
         "non-private q90 error", "theory shape"],
        rows,
    )
    reporter("E11", render_experiment_header("E11", "IQR error vs n: universal (pure DP) vs DL09 (approx DP)") + "\n" + table)

    # Universal improves substantially with n; DL09 improves far more slowly,
    # so at the largest n the universal estimator wins.
    assert rows[-1][1] < rows[0][1] / 4.0
    assert rows[-1][1] < rows[-1][2]
    dl_improvement = rows[0][2] / max(rows[-1][2], 1e-9)
    universal_improvement = rows[0][1] / max(rows[-1][1], 1e-9)
    assert universal_improvement > dl_improvement
