"""E11 — Theorems 1.12/6.2: IQR estimation vs the DL09 propose-test-release baseline.

The key comparison of Section 6: the universal IQR estimator's privacy error
shrinks like ``1/(eps n)`` (so quadrupling n roughly quarters it), while the
DL09 baseline — the only prior universal scale estimator, and only
(eps, delta)-DP — improves only like ``1/log n``.  The series reports both
errors and the DL09 refusal rate (its PTR test can decline to answer).

The (estimator x n) grid runs as one
:func:`repro.analysis.run_statistical_grid` sweep on the session's pool; the
DL09 cells use per-cell ``allow_failures`` so refusals become structured
failure records without aborting the cell.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StatisticalCell, run_statistical_grid
from repro.analysis.theory import iqr_error_bound
from repro.baselines import DworkLeiIQR, SampleIQR
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_iqr
from repro.distributions import Gaussian

EPSILON = 0.3
TRIALS = 8
DIST = Gaussian(0.0, 1.0)
SIZES = (2_000, 8_000, 32_000, 128_000)


def _universal(data, gen):
    return estimate_iqr(data, EPSILON, 0.1, gen).iqr


def test_e11_iqr_convergence(run_once, reporter, engine_pool):
    def run():
        theta = DIST.theta(DIST.iqr / 8.0)
        cells = []
        for n in SIZES:
            cells.append(StatisticalCell(
                _universal, DIST, "iqr", n, TRIALS, np.random.default_rng(n),
                key=("universal", n)))
            cells.append(StatisticalCell(
                lambda d, g: DworkLeiIQR(delta=1e-6).estimate(d, EPSILON, g),
                DIST, "iqr", n, TRIALS, np.random.default_rng(n + 1),
                key=("dl09", n), allow_failures=True))
            cells.append(StatisticalCell(
                lambda d, g: SampleIQR().estimate(d), DIST, "iqr", n, TRIALS,
                np.random.default_rng(n + 2), key=("nonprivate", n)))
        results = dict(zip((c.key for c in cells),
                           run_statistical_grid(cells, pool=engine_pool)))
        rows = []
        for n in SIZES:
            dl09 = results[("dl09", n)]
            rows.append(
                [
                    n,
                    results[("universal", n)].summary.q90,
                    dl09.summary.q90,
                    dl09.failures / TRIALS,
                    results[("nonprivate", n)].summary.q90,
                    iqr_error_bound(n, EPSILON, DIST.iqr, theta),
                ]
            )
        return rows

    rows = run_once(run)
    headers = ["n", "universal q90 error", "DL09 q90 error", "DL09 refusal rate",
               "non-private q90 error", "theory shape"]
    table = format_table(headers, rows)
    reporter(
        "E11",
        render_experiment_header("E11", "IQR error vs n: universal (pure DP) vs DL09 (approx DP)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # Universal improves substantially with n; DL09 improves far more slowly,
    # so at the largest n the universal estimator wins.
    assert rows[-1][1] < rows[0][1] / 4.0
    assert rows[-1][1] < rows[-1][2]
    dl_improvement = rows[0][2] / max(rows[-1][2], 1e-9)
    universal_improvement = rows[0][1] / max(rows[-1][1], 1e-9)
    assert universal_improvement > dl_improvement
