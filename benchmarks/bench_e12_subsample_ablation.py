"""E12 — Theorem 4.5 discussion: ablation of the sub-sample size m.

Algorithm 8 finds its clipping range on a sub-sample of ``m = eps * n`` points.
The paper argues this choice balances the clipping bias (more aggressive for
smaller m) against the noise (proportional to the range width): much larger m
widens the range and hence the Laplace noise, while much smaller m clips too
aggressively and adds bias.  The sweep measures the error at multiples of the
default m on a Gaussian and a log-normal (skewed) distribution.

This is the shared-memory showcase: the paired design pre-builds one dataset
per trial (``dataset_batch(..., shared=True)``) and reuses it across every
multiplier cell of the :func:`repro.engine.run_grid` sweep.  Each n=20k
dataset is copied once into a ``multiprocessing.shared_memory`` segment; the
multiplier cells close over the handles, so pool workers map the same pages
instead of receiving a pickled copy per cell dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import summarize_errors
from repro.bench import dataset_batch, format_table, render_experiment_header
from repro.engine import GridCell, run_grid, unlink_all
from repro.core import estimate_mean
from repro.distributions import Gaussian, LogNormal

EPSILON = 0.2
N = 20_000
TRIALS = 10
DISTRIBUTIONS = [Gaussian(0.0, 1.0), LogNormal(0.0, 1.0)]
MULTIPLIERS = [0.1, 1.0, 10.0, 25.0]


def test_e12_subsample_size_ablation(run_once, reporter, engine_pool):
    def run():
        default_m = int(round(EPSILON * N))
        cells = []
        shared_batches = []
        for dist_index, dist in enumerate(DISTRIBUTIONS):
            # Pre-build one dataset per trial and share it across all
            # multipliers: a paired comparison isolates the effect of m from
            # sampling noise.  shared=True places each dataset in shared
            # memory exactly once for the whole multiplier sweep.
            datasets = dataset_batch(
                lambda gen, d=dist: d.sample(N, gen),
                TRIALS,
                rng=100 + dist_index,
                pool=engine_pool,
                shared=True,
            )
            shared_batches.append(datasets)
            for multiplier in MULTIPLIERS:
                m = max(8, min(N, int(round(default_m * multiplier))))
                # Seed range disjoint from the dataset_batch seeds (100, 101)
                # above — reusing a seed would make the estimator's noise
                # stream replay the data-generating stream.
                cells.append(
                    GridCell(
                        trial_fn=lambda i, g, mm=m, ds=datasets: estimate_mean(
                            np.asarray(ds[i]), EPSILON, 0.1, g, subsample_size=mm
                        ).mean,
                        trials=TRIALS,
                        rng=1000 + dist_index * 100 + int(multiplier * 10),
                        key=(dist.name, multiplier, m),
                    )
                )
        try:
            grid = run_grid(cells, pool=engine_pool)
            rows = []
            for dist_index, dist in enumerate(DISTRIBUTIONS):
                truth = float(dist.mean)
                for multiplier in MULTIPLIERS:
                    m = max(8, min(N, int(round(default_m * multiplier))))
                    batch = grid.by_key((dist.name, multiplier, m))
                    errors = np.abs(batch.estimates() - truth)
                    rows.append([dist.name, multiplier, m, summarize_errors(errors).q90])
        finally:
            for datasets in shared_batches:
                unlink_all(datasets)
        return rows

    rows = run_once(run)
    headers = ["distribution", "m / (eps n)", "subsample size m", "q90 error"]
    table = format_table(headers, rows)
    reporter(
        "E12",
        render_experiment_header("E12", "Ablation: sub-sample size for the clipping range (Thm 4.5)") + "\n" + table,
        headers=headers,
        rows=rows,
    )

    # The paper's default (multiplier 1.0) should never be much worse than the
    # best multiplier for either distribution.
    for dist in DISTRIBUTIONS:
        sub = {row[1]: row[3] for row in rows if row[0] == dist.name}
        best = min(sub.values())
        assert sub[1.0] <= 4.0 * best + 0.02
