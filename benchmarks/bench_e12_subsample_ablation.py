"""E12 — Theorem 4.5 discussion: ablation of the sub-sample size m.

Algorithm 8 finds its clipping range on a sub-sample of ``m = eps * n`` points.
The paper argues this choice balances the clipping bias (more aggressive for
smaller m) against the noise (proportional to the range width): much larger m
widens the range and hence the Laplace noise, while much smaller m clips too
aggressively and adds bias.  The sweep measures the error at multiples of the
default m on a Gaussian and a log-normal (skewed) distribution.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_statistical_trials
from repro.bench import format_table, render_experiment_header
from repro.core import estimate_mean
from repro.distributions import Gaussian, LogNormal

EPSILON = 0.2
N = 20_000
TRIALS = 10
DISTRIBUTIONS = [Gaussian(0.0, 1.0), LogNormal(0.0, 1.0)]
MULTIPLIERS = [0.1, 1.0, 10.0, 25.0]


def test_e12_subsample_size_ablation(run_once, reporter):
    def run():
        default_m = int(round(EPSILON * N))
        rows = []
        for dist in DISTRIBUTIONS:
            for multiplier in MULTIPLIERS:
                m = max(8, min(N, int(round(default_m * multiplier))))
                result = run_statistical_trials(
                    lambda d, g, mm=m: estimate_mean(
                        d, EPSILON, 0.1, g, subsample_size=mm
                    ).mean,
                    dist, "mean", N, TRIALS, np.random.default_rng(int(multiplier * 100)),
                )
                rows.append([dist.name, multiplier, m, result.summary.q90])
        return rows

    rows = run_once(run)
    table = format_table(
        ["distribution", "m / (eps n)", "subsample size m", "q90 error"], rows
    )
    reporter("E12", render_experiment_header("E12", "Ablation: sub-sample size for the clipping range (Thm 4.5)") + "\n" + table)

    # The paper's default (multiplier 1.0) should never be much worse than the
    # best multiplier for either distribution.
    for dist in DISTRIBUTIONS:
        sub = {row[1]: row[3] for row in rows if row[0] == dist.name}
        best = min(sub.values())
        assert sub[1.0] <= 4.0 * best + 0.02
