"""Tamper-evident privacy audit trail: hash-chained JSONL, verify, spend replay.

Every privacy-relevant event the service takes — ``reserve``, ``commit``,
``cancel``, ``refuse``, zero-spend ``cache_hit``, ``rate_limit``, ``drain``,
``admin_reload``, ``dataset_add`` / ``dataset_remove`` — appends exactly one
JSON line to the :class:`AuditLog`.  Each record carries the SHA-256 of its
predecessor (``prev``) and of itself (``hash``), so the file is a hash
chain: flipping a single byte, dropping a line, or truncating the tail
breaks verification (:func:`verify_audit_log`, ``repro audit verify``).

The log is also *independently replayable*: :func:`replay_spend`
(``repro audit spend``) walks the verified chain and re-derives every
:class:`~repro.service.BudgetManager` ledger total — per budget owner, per
analyst, per kind — by mirroring the manager's exact commit semantics (a
commit charges the ledger only when the actually-measured spend is
``> 0.0``).  Under the CI serve-and-drive run the replayed totals must
match the live ``/datasets`` snapshot bit-for-bit; the audit trail is not
a summary of the ledger, it *is* the ledger, recomputable by anyone
holding the file.

Float fidelity: records are serialised with :func:`json.dumps`, whose
shortest-repr float encoding round-trips ``float`` values exactly — the
replayed sums accumulate the same IEEE-754 doubles the ledger did, in the
same order the commits were appended.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, IO, Iterator, Optional, Tuple, Union

from repro.exceptions import DomainError, ReproError

__all__ = [
    "AUDIT_EVENTS",
    "AuditChainError",
    "AuditLog",
    "AuditRecord",
    "replay_spend",
    "verify_audit_log",
]

#: The recognised event vocabulary.  Unknown events are rejected at record
#: time so a typo cannot silently open an un-replayable event class.
AUDIT_EVENTS = frozenset(
    {
        "reserve",
        "commit",
        "cancel",
        "refuse",
        "cache_hit",
        "rate_limit",
        "drain",
        "admin_reload",
        "dataset_add",
        "dataset_remove",
    }
)

#: ``prev`` of the first record: 64 zero hex chars (no predecessor).
GENESIS = "0" * 64

#: Keys the chain machinery owns; event payloads may not shadow them.
_RESERVED_KEYS = frozenset({"seq", "time", "event", "prev", "hash"})


class AuditChainError(ReproError):
    """The audit log failed verification (tampered, truncated, malformed)."""


def _chain_hash(record: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``record`` minus its ``hash`` field.

    Canonical form (sorted keys, minimal separators) makes the digest
    independent of dict insertion order; ``prev`` is inside the record, so
    each hash commits to the entire prefix of the log.
    """
    body = {key: value for key, value in record.items() if key != "hash"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AuditRecord:
    """One verified audit record: chain position plus the event payload."""

    seq: int
    time: float
    event: str
    prev: str
    hash: str
    fields: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        document = dict(self.fields)
        document.update(
            seq=self.seq, time=self.time, event=self.event,
            prev=self.prev, hash=self.hash,
        )
        return document


class AuditLog:
    """Append-only hash-chained JSONL writer (the service's audit sink).

    Opening an existing log *resumes* its chain: the writer replays the file
    once to recover the last sequence number and hash, so a restarted server
    extends the same verifiable history.  ``record`` is thread-safe under
    one lock; each line is flushed as written, so the file is valid JSONL
    after every event (readers may tail it live).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        clock: Callable[[], float] = time.time,
    ):
        self._path = Path(path)
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._prev = GENESIS
        if self._path.exists() and self._path.stat().st_size:
            for record in _verified_records(self._path):
                self._seq = record.seq
                self._prev = record.hash
        self._handle: Optional[IO[str]] = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the written record (with its hash)."""
        if event not in AUDIT_EVENTS:
            raise DomainError(
                f"unknown audit event {event!r}; known: {sorted(AUDIT_EVENTS)}"
            )
        if _RESERVED_KEYS & set(fields):
            clash = sorted(_RESERVED_KEYS & set(fields))
            raise DomainError(f"audit fields shadow reserved keys: {clash}")
        with self._lock:
            if self._handle is None:
                raise DomainError(f"audit log {self._path} is closed")
            record: Dict[str, Any] = dict(fields)
            self._seq += 1
            record["seq"] = self._seq
            record["time"] = self._clock()
            record["event"] = event
            record["prev"] = self._prev
            record["hash"] = _chain_hash(record)
            self._prev = record["hash"]
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._handle.flush()
            return record

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters for ``stats()`` / ``/admin/state``."""
        with self._lock:
            return {
                "path": str(self._path),
                "records": self._seq,
                "open": self._handle is not None,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _verified_records(path: Union[str, Path]) -> Iterator[AuditRecord]:
    """Yield records while verifying the chain; raise :class:`AuditChainError`.

    One streaming pass checks, per line: valid JSON object, contiguous
    ``seq`` starting at 1, ``prev`` equal to the predecessor's hash (the
    genesis sentinel first), and the stored ``hash`` equal to the recomputed
    one.  Any deviation names the offending line.
    """
    path = Path(path)
    prev = GENESIS
    expected_seq = 1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                raise AuditChainError(f"{path}:{line_number}: blank line in audit log")
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise AuditChainError(
                    f"{path}:{line_number}: unparseable record ({exc})"
                ) from None
            if not isinstance(record, dict) or not _RESERVED_KEYS <= set(record):
                raise AuditChainError(
                    f"{path}:{line_number}: record missing chain fields"
                )
            if record["seq"] != expected_seq:
                raise AuditChainError(
                    f"{path}:{line_number}: sequence break "
                    f"(got seq={record['seq']!r}, expected {expected_seq})"
                )
            if record["prev"] != prev:
                raise AuditChainError(
                    f"{path}:{line_number}: chain break "
                    f"(prev={record['prev']!r} does not match predecessor hash)"
                )
            recomputed = _chain_hash(record)
            if record["hash"] != recomputed:
                raise AuditChainError(
                    f"{path}:{line_number}: record tampered "
                    f"(stored hash {record['hash']!r} != recomputed {recomputed!r})"
                )
            prev = record["hash"]
            expected_seq += 1
            fields = {
                key: value for key, value in record.items()
                if key not in _RESERVED_KEYS
            }
            yield AuditRecord(
                seq=record["seq"],
                time=record["time"],
                event=record["event"],
                prev=record["prev"],
                hash=record["hash"],
                fields=fields,
            )


def verify_audit_log(path: Union[str, Path]) -> Tuple[int, str]:
    """Verify the whole chain; returns ``(record_count, final_hash)``.

    Raises :class:`AuditChainError` on the first broken link.  An empty or
    absent log verifies trivially as ``(0, GENESIS)``.
    """
    path = Path(path)
    if not path.exists() or not path.stat().st_size:
        return 0, GENESIS
    count, final = 0, GENESIS
    for record in _verified_records(path):
        count, final = record.seq, record.hash
    return count, final


def replay_spend(path: Union[str, Path]) -> Dict[str, Any]:
    """Re-derive every ledger total from the (verified) audit log.

    Mirrors :meth:`BudgetManager.commit` exactly: only ``commit`` events
    with ``epsilon > 0.0`` charge anything, accumulated per budget owner
    (``dataset:<name>`` for private budgets, ``group:<name>`` for joint
    groups), per analyst within the owner, and per estimator kind
    service-wide — in record order, with plain float addition, so the sums
    reproduce the :class:`~repro.service.BudgetManager` ledgers and the
    service's per-kind spend counters bit-for-bit.
    """
    path = Path(path)
    owners: Dict[str, Dict[str, Any]] = {}
    kinds: Dict[str, float] = {}
    events: Dict[str, int] = {}
    count = 0
    if path.exists() and path.stat().st_size:
        for record in _verified_records(path):
            count = record.seq
            events[record.event] = events.get(record.event, 0) + 1
            if record.event != "commit":
                continue
            epsilon = record.fields.get("epsilon", 0.0)
            if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
                continue
            epsilon = float(epsilon)
            if not epsilon > 0.0:
                continue
            owner = str(record.fields.get("budget", ""))
            entry = owners.setdefault(owner, {"spent": 0.0, "analysts": {}})
            entry["spent"] += epsilon
            analyst = record.fields.get("analyst")
            if analyst is not None:
                analysts = entry["analysts"]
                analysts[str(analyst)] = analysts.get(str(analyst), 0.0) + epsilon
            kind = record.fields.get("kind")
            if kind is not None:
                kinds[str(kind)] = kinds.get(str(kind), 0.0) + epsilon
    return {
        "path": str(path),
        "records": count,
        "events": dict(sorted(events.items())),
        "owners": {name: owners[name] for name in sorted(owners)},
        "kinds": {name: kinds[name] for name in sorted(kinds)},
    }
