"""End-to-end query tracing: spans per pipeline stage, a bounded ring, slow-query log.

One :class:`Trace` follows one HTTP request through the service: the
front-end mints (or accepts) the trace id and opens the trace, each pipeline
stage records a :class:`Span` with monotonic timings, and the front-end
finishes the trace into the :class:`TraceRecorder` ring once the response is
serialised.  The recorder is the only shared structure and takes one short
lock per finished trace; an individual ``Trace`` is touched by exactly one
thread at a time (the async front-end hands the same trace from the event
loop to the executor thread *sequentially*), so span recording itself is
lock-free.

Under the sharded tier the same id spans processes: the cluster router
opens its own trace for ``POST /query`` and forwards the id to the owning
shard via ``X-Repro-Trace-Id``, where the shard's front-end accepts it and
records its admission/execution spans against it — so one trace id queried
at ``/debug/traces/<id>`` on router and shard tells the whole cross-process
story (routing spans here, execution spans there).

Determinism: trace ids are drawn from :func:`os.urandom` — deliberately
outside the seeded ``repro._rng`` tree — and nothing in this module ever
feeds a seed, so answers with tracing enabled are bit-for-bit identical to
tracing disabled (pinned in ``tests/test_obs_service.py``).
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.exceptions import DomainError

__all__ = ["Span", "Trace", "TraceRecorder", "mint_trace_id", "span"]

#: Characters accepted in a client-supplied ``X-Repro-Trace-Id`` header.
_ID_CHARS = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")
_MAX_ID_LENGTH = 64


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id from OS entropy (never the seeded RNG)."""
    return os.urandom(8).hex()


def accept_trace_id(candidate: Optional[str]) -> str:
    """The client-supplied trace id if well-formed, else a freshly minted one.

    A header is honoured only when it is 1..64 chars drawn from
    ``[A-Za-z0-9._-]`` — anything else (empty, oversized, control bytes) is
    replaced rather than rejected, so a bad header can never fail a request.
    """
    if candidate:
        candidate = candidate.strip()
        if 0 < len(candidate) <= _MAX_ID_LENGTH and set(candidate) <= _ID_CHARS:
            return candidate
    return mint_trace_id()


@dataclass(frozen=True)
class Span:
    """One timed pipeline stage inside a trace.

    ``start`` is milliseconds since the trace opened; ``duration`` is
    milliseconds of wall clock (monotonic).  ``detail`` carries small
    JSON-safe stage annotations (batch size, per-cell engine timings, ...).
    """

    name: str
    start: float
    duration: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "name": self.name,
            "start_ms": round(self.start, 3),
            "duration_ms": round(self.duration, 3),
        }
        if self.detail:
            document["detail"] = self.detail
        return document


class Trace:
    """The mutable per-request span collector.

    Created by :meth:`TraceRecorder.start`, threaded by keyword through
    ``peek``/``submit``/``submit_many``, and handed back to
    :meth:`TraceRecorder.finish`.  Single-threaded by construction (one
    request, one stage at a time), so there is no lock on the hot path.
    """

    __slots__ = ("trace_id", "meta", "spans", "_opened", "_clock", "_finished")

    def __init__(
        self,
        trace_id: str,
        *,
        clock: Callable[[], float] = time.monotonic,
        **meta: Any,
    ):
        self.trace_id = trace_id
        self.meta: Dict[str, Any] = dict(meta)
        self.spans: List[Span] = []
        self._clock = clock
        self._opened = clock()
        self._finished: Optional[float] = None

    def annotate(self, **meta: Any) -> None:
        """Attach request metadata (dataset, kind, status, ...) to the trace."""
        self.meta.update(meta)

    @contextmanager
    def span(self, name: str, **detail: Any) -> Iterator[Dict[str, Any]]:
        """Record a :class:`Span` around the enclosed stage.

        Yields the mutable ``detail`` dict so the stage can attach
        annotations discovered mid-flight (e.g. per-cell engine timings).
        """
        start = self._clock()
        info: Dict[str, Any] = dict(detail)
        try:
            yield info
        finally:
            stop = self._clock()
            self.spans.append(
                Span(
                    name=name,
                    start=(start - self._opened) * 1000.0,
                    duration=(stop - start) * 1000.0,
                    detail=info,
                )
            )

    def finish(self) -> float:
        """Close the trace; returns (and latches) its total duration in ms."""
        if self._finished is None:
            self._finished = (self._clock() - self._opened) * 1000.0
        return self._finished

    def to_json(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "trace": self.trace_id,
            "duration_ms": round(self.finish(), 3),
            "spans": [record.to_json() for record in self.spans],
        }
        if self.meta:
            document["meta"] = self.meta
        return document


@contextmanager
def span(trace: Optional[Trace], name: str, **detail: Any) -> Iterator[Dict[str, Any]]:
    """``trace.span(name)`` that degrades to a no-op when tracing is off.

    The instrumentation sites call this unconditionally; with ``trace=None``
    the cost is one generator frame and an empty dict — no clock reads, no
    allocation of span records.
    """
    if trace is None:
        yield {}
        return
    with trace.span(name, **detail) as info:
        yield info


class TraceRecorder:
    """Bounded in-memory ring of finished traces + the slow-query log.

    ``ring`` caps how many finished traces are kept (oldest evicted first);
    ``slow_query_ms`` — when not ``None`` — emits one line per trace whose
    total duration meets the threshold.  Both are hot-swappable via
    :meth:`configure` (an ``/admin/reload`` with a changed ``[observability]``
    section lands here).  Thread-safe under one short lock; recording a
    finished trace is a dict insert.
    """

    def __init__(
        self,
        ring: int = 256,
        *,
        slow_query_ms: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        emit: Optional[Callable[[str], None]] = None,
    ):
        if ring < 1:
            raise DomainError(f"trace ring size must be >= 1, got {ring}")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise DomainError(
                f"slow_query_ms must be None or >= 0, got {slow_query_ms}"
            )
        self._lock = Lock()
        self._ring = ring
        self._slow_query_ms = slow_query_ms
        self._clock = clock
        self._emit = emit if emit is not None else self._default_emit
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._recorded = 0
        self._slow = 0

    @staticmethod
    def _default_emit(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def start(self, trace_id: Optional[str] = None, **meta: Any) -> Trace:
        """Open a trace under ``trace_id`` (header value) or a minted id."""
        return Trace(accept_trace_id(trace_id), clock=self._clock, **meta)

    def finish(self, trace: Trace) -> Dict[str, Any]:
        """Record a finished trace into the ring; emit the slow-query line."""
        duration = trace.finish()
        document = trace.to_json()
        document["time"] = time.time()
        slow_line = None
        with self._lock:
            self._recorded += 1
            self._traces[trace.trace_id] = document
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self._ring:
                self._traces.popitem(last=False)
            if self._slow_query_ms is not None and duration >= self._slow_query_ms:
                self._slow += 1
                slow_line = (
                    f"slow query trace={trace.trace_id} "
                    f"duration_ms={duration:.3f} "
                    f"threshold_ms={self._slow_query_ms:g} "
                    + " ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
                ).rstrip()
        if slow_line is not None:
            # Emitting outside the lock: a slow stderr must not stall tracing.
            self._emit(slow_line)
        return document

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The finished trace document for ``trace_id``, or ``None``."""
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recently finished traces, newest first."""
        with self._lock:
            documents = list(self._traces.values())
        return documents[::-1][: max(limit, 0)]

    def configure(
        self,
        *,
        ring: Optional[int] = None,
        slow_query_ms: Optional[float] = None,
        slow_query_enabled: Optional[bool] = None,
    ) -> None:
        """Hot-swap the ring size and/or slow-query threshold (admin reload).

        ``slow_query_ms`` replaces the threshold when given;
        ``slow_query_enabled=False`` switches the slow-query log off
        (``None`` threshold) regardless.
        """
        if ring is not None and ring < 1:
            raise DomainError(f"trace ring size must be >= 1, got {ring}")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise DomainError(
                f"slow_query_ms must be None or >= 0, got {slow_query_ms}"
            )
        with self._lock:
            if ring is not None:
                self._ring = ring
                while len(self._traces) > self._ring:
                    self._traces.popitem(last=False)
            if slow_query_ms is not None:
                self._slow_query_ms = slow_query_ms
            if slow_query_enabled is False:
                self._slow_query_ms = None

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters for ``GET /debug/traces`` and ``stats()``."""
        with self._lock:
            return {
                "ring": self._ring,
                "held": len(self._traces),
                "recorded": self._recorded,
                "slow_query_ms": self._slow_query_ms,
                "slow_queries": self._slow,
            }
