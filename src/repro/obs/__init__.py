"""``repro.obs`` — observability for the private-query service.

The two questions an operator of a privacy system asks first are *what
happened to this one query?* and *where, exactly, did every unit of epsilon
go?*  This package answers both without touching the answer path:

* :mod:`repro.obs.trace` — end-to-end request tracing.  Every HTTP request
  gets a trace id (minted at the front-end, or accepted from an
  ``X-Repro-Trace-Id`` header) and a :class:`Trace` that collects monotonic
  spans at each pipeline stage — parse, rate check, cache lookup, admission,
  coalesce, engine fan-out (per-cell timings via the
  :class:`repro.engine.EnginePool` profiling hook), commit, serialise.
  Finished traces land in a bounded in-memory ring
  (:class:`TraceRecorder`), are inspectable via ``GET /debug/traces`` and
  ``repro trace <id>``, and anything slower than the configured threshold
  is emitted to the slow-query log.  Trace ids come from
  :func:`os.urandom`, never from the seeded RNG tree, so tracing cannot
  perturb the bit-for-bit determinism contract.

* :mod:`repro.obs.audit` — a tamper-evident privacy audit trail.  Every
  privacy-relevant event (reserve, commit, cancel, refusal, zero-spend
  cache hit, rate limit, drain, admin reload, dataset add/remove) appends
  one JSONL record hash-chained to its predecessor (:class:`AuditLog`).
  ``repro audit verify`` proves the chain intact; ``repro audit spend``
  replays the log and reproduces every :class:`BudgetManager` ledger total
  bit-for-bit — the log *is* the ledger, independently recomputable.

Both are wired through the ``[observability]`` serving-config section
(:class:`repro.service.ObservabilityConfig`) and surfaced as per-analyst /
per-kind epsilon-spent gauges on ``GET /metrics`` and in ``stats()``.
"""

from repro.obs.audit import (
    AuditChainError,
    AuditLog,
    AuditRecord,
    replay_spend,
    verify_audit_log,
)
from repro.obs.trace import Span, Trace, TraceRecorder, mint_trace_id, span

__all__ = [
    "AuditChainError",
    "AuditLog",
    "AuditRecord",
    "replay_spend",
    "verify_audit_log",
    "Span",
    "Trace",
    "TraceRecorder",
    "mint_trace_id",
    "span",
]
