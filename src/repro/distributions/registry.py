"""A small registry of named distribution configurations.

Benchmarks and examples refer to distributions by name (e.g. ``"gaussian"``,
``"student_t_3"``) so that workloads are described declaratively and the
experiment index in ``DESIGN.md`` can name them unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.distributions.base import Distribution
from repro.distributions.continuous import (
    Exponential,
    Gaussian,
    GaussianMixture,
    LaplaceDistribution,
    LogNormal,
    Pareto,
    SpikeMixture,
    StudentT,
    Uniform,
)
from repro.exceptions import DomainError

__all__ = ["DistributionSpec", "make_distribution", "available_distributions", "standard_suite"]


@dataclass(frozen=True)
class DistributionSpec:
    """A named, parameterised distribution recipe."""

    key: str
    description: str
    factory: Callable[..., Distribution]
    defaults: dict = field(default_factory=dict)

    def build(self, **overrides) -> Distribution:
        """Instantiate the distribution with defaults merged with ``overrides``."""
        params = dict(self.defaults)
        params.update(overrides)
        return self.factory(**params)


_REGISTRY: Dict[str, DistributionSpec] = {}


def _register(spec: DistributionSpec) -> None:
    _REGISTRY[spec.key] = spec


_register(
    DistributionSpec(
        key="gaussian",
        description="Standard well-behaved Gaussian N(mu, sigma^2)",
        factory=Gaussian,
        defaults={"mu": 0.0, "sigma": 1.0},
    )
)
_register(
    DistributionSpec(
        key="gaussian_shifted",
        description="Gaussian with a large unknown mean (tests removal of assumption A1)",
        factory=Gaussian,
        defaults={"mu": 1.0e6, "sigma": 1.0},
    )
)
_register(
    DistributionSpec(
        key="uniform",
        description="Uniform distribution on an interval",
        factory=Uniform,
        defaults={"low": -1.0, "high": 1.0},
    )
)
_register(
    DistributionSpec(
        key="laplace",
        description="Laplace (double exponential) distribution",
        factory=LaplaceDistribution,
        defaults={"mu": 0.0, "scale": 1.0},
    )
)
_register(
    DistributionSpec(
        key="exponential",
        description="Exponential distribution (skewed, light tail)",
        factory=Exponential,
        defaults={"scale": 1.0},
    )
)
_register(
    DistributionSpec(
        key="lognormal",
        description="Log-normal distribution (skewed, moderately heavy tail)",
        factory=LogNormal,
        defaults={"mu_log": 0.0, "sigma_log": 1.0},
    )
)
_register(
    DistributionSpec(
        key="student_t_3",
        description="Student-t with 3 degrees of freedom (finite 2nd, infinite 3rd moment)",
        factory=StudentT,
        defaults={"df": 3.0},
    )
)
_register(
    DistributionSpec(
        key="student_t_5",
        description="Student-t with 5 degrees of freedom (finite 4th moment)",
        factory=StudentT,
        defaults={"df": 5.0},
    )
)
_register(
    DistributionSpec(
        key="pareto_3",
        description="Pareto with tail index 3 (heavy right tail)",
        factory=Pareto,
        defaults={"alpha": 3.0, "x_m": 1.0},
    )
)
_register(
    DistributionSpec(
        key="mixture_bimodal",
        description="Bimodal Gaussian mixture",
        factory=GaussianMixture,
        defaults={"locs": [-5.0, 5.0], "scales": [1.0, 1.0], "weights": [0.5, 0.5]},
    )
)
_register(
    DistributionSpec(
        key="spike",
        description="Ill-behaved spike mixture (tiny phi(1/16))",
        factory=SpikeMixture,
        defaults={"bulk_sigma": 1.0, "spike_width": 1e-4, "spike_mass": 0.1},
    )
)


def make_distribution(key: str, **overrides) -> Distribution:
    """Instantiate a registered distribution by name."""
    if key not in _REGISTRY:
        raise DomainError(
            f"unknown distribution {key!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key].build(**overrides)


def available_distributions() -> List[DistributionSpec]:
    """All registered distribution specs, sorted by key."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def standard_suite() -> List[Distribution]:
    """The default suite used by cross-distribution benchmarks."""
    keys = ["gaussian", "uniform", "laplace", "lognormal", "student_t_5", "mixture_bimodal"]
    return [make_distribution(k) for k in keys]
