"""Abstract distribution interface and numeric fallbacks (Section 2.1 quantities).

Concrete distributions need only provide sampling, the CDF/PDF/quantile
functions and (where closed forms exist) the moments; the base class supplies
numerically robust defaults for everything else:

* ``central_moment(k)`` — numerical integration of ``|x - mu|^k f(x)``;
* ``phi(beta)`` — the width of the narrowest interval carrying probability
  mass ``beta``, found by minimising ``F^{-1}(p + beta) - F^{-1}(p)``;
* ``theta(kappa)`` — the smallest average density over the four width-``kappa``
  windows adjacent to the two quartiles;
* ``statistical_width(m, beta)`` — an upper bound on the ``(m, beta)``-
  statistical width ``gamma(m, beta)`` via a per-sample union bound, plus a
  Monte-Carlo estimator for benchmarks that want the exact quantity.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np
from scipy import integrate, optimize

from repro._rng import RngLike, resolve_rng
from repro.exceptions import DomainError

__all__ = ["Distribution", "ScipyDistribution"]


class Distribution(abc.ABC):
    """A continuous probability distribution over R with analytic parameters."""

    #: Human-readable name used in benchmark tables.
    name: str = "distribution"

    # ------------------------------------------------------------------ #
    # Sampling and basic functions                                        #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. values."""

    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density function."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution function."""

    @abc.abstractmethod
    def quantile(self, q: np.ndarray) -> np.ndarray:
        """Quantile (inverse CDF) function."""

    # ------------------------------------------------------------------ #
    # First/second order parameters                                       #
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The statistical mean ``mu_P``."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """The statistical variance ``sigma_P^2``."""

    @property
    def std(self) -> float:
        """The standard deviation ``sigma_P``."""
        return math.sqrt(self.variance)

    @property
    def iqr(self) -> float:
        """The interquartile range ``F^{-1}(3/4) - F^{-1}(1/4)``."""
        return float(self.quantile(0.75) - self.quantile(0.25))

    # ------------------------------------------------------------------ #
    # Higher-order / shape parameters                                     #
    # ------------------------------------------------------------------ #

    def central_moment(self, k: int) -> float:
        """The absolute central moment ``mu_k = E[|X - mu|^k]``.

        The default implementation integrates numerically over the quantile
        range ``[F^{-1}(1e-9), F^{-1}(1 - 1e-9)]``; subclasses override it
        when a closed form exists (or when the moment is infinite).
        """
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        mu = self.mean
        low = float(self.quantile(1e-9))
        high = float(self.quantile(1.0 - 1e-9))
        value, _ = integrate.quad(
            lambda x: np.abs(x - mu) ** k * self.pdf(x), low, high, limit=200
        )
        return float(value)

    def phi(self, beta: float) -> float:
        """Width of the narrowest interval with probability mass ``beta``.

        ``phi(beta) = inf { a2 - a1 : integral_{a1}^{a2} f >= beta }``.  For a
        unimodal density this is achieved around the mode; the default
        implementation minimises ``F^{-1}(p + beta) - F^{-1}(p)`` over ``p``
        with a coarse grid followed by a local refinement, which is accurate
        for all the (piecewise-)unimodal families shipped with the library.
        """
        if not 0.0 < beta < 1.0:
            raise DomainError(f"beta must lie in (0, 1), got {beta}")

        def width(p: float) -> float:
            return float(self.quantile(p + beta) - self.quantile(p))

        grid = np.linspace(1e-9, 1.0 - beta - 1e-9, 512)
        widths = np.array([width(p) for p in grid])
        best = int(np.argmin(widths))
        lo = grid[max(best - 1, 0)]
        hi = grid[min(best + 1, grid.size - 1)]
        if hi <= lo:
            return float(widths[best])
        result = optimize.minimize_scalar(width, bounds=(lo, hi), method="bounded")
        return float(min(result.fun, widths[best]))

    def theta(self, kappa: float) -> float:
        """Smallest average density over the four quartile-adjacent windows (Section 6).

        ``theta(kappa) = (1/kappa) * min_i integral_{B_i(kappa)} f`` where the
        ``B_i`` are the width-``kappa`` intervals immediately left/right of
        ``F^{-1}(1/4)`` and ``F^{-1}(3/4)``.
        """
        if kappa <= 0:
            raise DomainError(f"kappa must be positive, got {kappa}")
        q1 = float(self.quantile(0.25))
        q3 = float(self.quantile(0.75))
        masses = [
            self.cdf(q1) - self.cdf(q1 - kappa),
            self.cdf(q1 + kappa) - self.cdf(q1),
            self.cdf(q3) - self.cdf(q3 - kappa),
            self.cdf(q3 + kappa) - self.cdf(q3),
        ]
        return float(min(masses) / kappa)

    def statistical_width(self, m: int, beta: float) -> float:
        """Upper bound on the ``(m, beta)``-statistical width ``gamma(m, beta)``.

        ``gamma(m, beta)`` is the smallest ``lambda`` such that an i.i.d.
        sample of size ``m`` has width at least ``lambda`` with probability at
        most ``beta``.  The union bound
        ``gamma(m, beta) <= F^{-1}(1 - beta/(2m)) - F^{-1}(beta/(2m))``
        is what the paper's simplified theorems use, so it is the default.
        """
        if m < 1:
            raise DomainError(f"m must be at least 1, got {m}")
        if not 0.0 < beta < 1.0:
            raise DomainError(f"beta must lie in (0, 1), got {beta}")
        tail = beta / (2.0 * m)
        return float(self.quantile(1.0 - tail) - self.quantile(tail))

    def statistical_width_monte_carlo(
        self, m: int, beta: float, trials: int = 400, rng: RngLike = None
    ) -> float:
        """Monte-Carlo estimate of ``gamma(m, beta)`` (the exact quantile of the sample width)."""
        if m < 1:
            raise DomainError(f"m must be at least 1, got {m}")
        generator = resolve_rng(rng)
        widths = np.empty(trials)
        for t in range(trials):
            draw = self.sample(m, generator)
            widths[t] = float(np.max(draw) - np.min(draw))
        return float(np.quantile(widths, 1.0 - beta))

    # ------------------------------------------------------------------ #
    # Convenience                                                         #
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """A dictionary of the headline parameters, for reports and logs."""
        return {
            "name": self.name,
            "mean": self.mean,
            "std": self.std,
            "variance": self.variance,
            "iqr": self.iqr,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ScipyDistribution(Distribution):
    """Adapter exposing a frozen ``scipy.stats`` distribution through :class:`Distribution`.

    Subclasses set :attr:`_frozen` (a frozen scipy distribution) in their
    constructor and may override the analytic parameters when scipy's generic
    machinery would be slower or less accurate.
    """

    def __init__(self, frozen, name: Optional[str] = None) -> None:
        self._frozen = frozen
        if name is not None:
            self.name = name

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return np.asarray(self._frozen.rvs(size=n, random_state=generator), dtype=float)

    def pdf(self, x):
        return self._frozen.pdf(x)

    def cdf(self, x):
        return self._frozen.cdf(x)

    def quantile(self, q):
        return self._frozen.ppf(q)

    @property
    def mean(self) -> float:
        return float(self._frozen.mean())

    @property
    def variance(self) -> float:
        return float(self._frozen.var())
