"""Synthetic distribution substrate.

The paper's guarantees are stated in terms of distribution parameters —
``mu``, ``sigma^2``, ``IQR``, central moments ``mu_k``, the highest-density
width ``phi(beta)``, the quartile density ``theta(kappa)`` and the statistical
width ``gamma(m, beta)`` (Section 2.1).  Each distribution class here exposes
all of them (analytically where closed forms exist, numerically otherwise) so
the benchmark harness can compare measured errors against the theory, and the
example/benchmark workloads can be generated reproducibly.
"""

from repro.distributions.base import Distribution, ScipyDistribution
from repro.distributions.continuous import (
    Exponential,
    Gaussian,
    GaussianMixture,
    LaplaceDistribution,
    LogNormal,
    Pareto,
    SpikeMixture,
    StudentT,
    Uniform,
)
from repro.distributions.registry import (
    DistributionSpec,
    available_distributions,
    make_distribution,
    standard_suite,
)

__all__ = [
    "Distribution",
    "ScipyDistribution",
    "Gaussian",
    "Uniform",
    "LaplaceDistribution",
    "Exponential",
    "LogNormal",
    "StudentT",
    "Pareto",
    "GaussianMixture",
    "SpikeMixture",
    "DistributionSpec",
    "make_distribution",
    "available_distributions",
    "standard_suite",
]
