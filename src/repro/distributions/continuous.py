"""Concrete distribution families used by the examples, tests and benchmarks.

The families mirror those the paper compares against prior work on:

* **Gaussian** — the canonical well-behaved case (Theorems 1.7, 1.10);
* **Uniform, Laplace, Exponential** — other light-tailed families for sanity
  checks (the mid-range discussion in the introduction uses the uniform);
* **LogNormal** — a skewed, moderately heavy-tailed family;
* **StudentT, Pareto** — heavy-tailed families with finitely many moments
  (Theorems 1.8, 1.11);
* **GaussianMixture** — bimodal data (location is ambiguous, scale is not);
* **SpikeMixture** — the "ill-behaved" adversarial family whose highest-density
  width ``phi(1/16)`` is made arbitrarily small by a narrow spike, exactly the
  regime the paper's log-log dependence on ``1/phi(1/16)`` is about.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import stats

from repro._rng import RngLike, resolve_rng
from repro.distributions.base import Distribution, ScipyDistribution
from repro.exceptions import DomainError

__all__ = [
    "Gaussian",
    "Uniform",
    "LaplaceDistribution",
    "Exponential",
    "LogNormal",
    "StudentT",
    "Pareto",
    "GaussianMixture",
    "SpikeMixture",
]

#: Standard-normal IQR constant: Phi^{-1}(3/4) - Phi^{-1}(1/4).
_GAUSSIAN_IQR_FACTOR = 1.3489795003921634


class Gaussian(ScipyDistribution):
    """Normal distribution ``N(mu, sigma^2)``."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        if sigma <= 0:
            raise DomainError(f"sigma must be positive, got {sigma}")
        super().__init__(stats.norm(loc=mu, scale=sigma), name=f"gaussian(mu={mu:g}, sigma={sigma:g})")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return generator.normal(self.mu, self.sigma, size=n)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma**2

    @property
    def iqr(self) -> float:
        return _GAUSSIAN_IQR_FACTOR * self.sigma

    def central_moment(self, k: int) -> float:
        """``E[|X - mu|^k] = sigma^k * 2^{k/2} * Gamma((k+1)/2) / sqrt(pi)``."""
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        return float(
            self.sigma**k * 2.0 ** (k / 2.0) * math.gamma((k + 1) / 2.0) / math.sqrt(math.pi)
        )

    def phi(self, beta: float) -> float:
        """The narrowest ``beta``-mass interval is centred at the mean."""
        if not 0.0 < beta < 1.0:
            raise DomainError(f"beta must lie in (0, 1), got {beta}")
        half = stats.norm.ppf(0.5 + beta / 2.0)
        return float(2.0 * half * self.sigma)


class Uniform(ScipyDistribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if high <= low:
            raise DomainError(f"need high > low, got [{low}, {high}]")
        super().__init__(
            stats.uniform(loc=low, scale=high - low), name=f"uniform({low:g}, {high:g})"
        )
        self.low = float(low)
        self.high = float(high)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return generator.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    @property
    def iqr(self) -> float:
        return 0.5 * (self.high - self.low)

    def phi(self, beta: float) -> float:
        if not 0.0 < beta < 1.0:
            raise DomainError(f"beta must lie in (0, 1), got {beta}")
        return beta * (self.high - self.low)

    def central_moment(self, k: int) -> float:
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        half = 0.5 * (self.high - self.low)
        return float(half**k / (k + 1))


class LaplaceDistribution(ScipyDistribution):
    """Laplace (double exponential) distribution with location ``mu`` and scale ``b``."""

    def __init__(self, mu: float = 0.0, scale: float = 1.0) -> None:
        if scale <= 0:
            raise DomainError(f"scale must be positive, got {scale}")
        super().__init__(
            stats.laplace(loc=mu, scale=scale), name=f"laplace(mu={mu:g}, b={scale:g})"
        )
        self.mu = float(mu)
        self.scale = float(scale)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return generator.laplace(self.mu, self.scale, size=n)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return 2.0 * self.scale**2

    @property
    def iqr(self) -> float:
        return 2.0 * self.scale * math.log(2.0)

    def central_moment(self, k: int) -> float:
        """``E[|X - mu|^k] = k! * b^k``."""
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        return float(math.factorial(k) * self.scale**k)


class Exponential(ScipyDistribution):
    """Exponential distribution with rate ``1/scale``, shifted by ``shift``."""

    def __init__(self, scale: float = 1.0, shift: float = 0.0) -> None:
        if scale <= 0:
            raise DomainError(f"scale must be positive, got {scale}")
        super().__init__(
            stats.expon(loc=shift, scale=scale), name=f"exponential(scale={scale:g})"
        )
        self.scale = float(scale)
        self.shift = float(shift)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return self.shift + generator.exponential(self.scale, size=n)

    @property
    def mean(self) -> float:
        return self.shift + self.scale

    @property
    def variance(self) -> float:
        return self.scale**2


class LogNormal(ScipyDistribution):
    """Log-normal distribution: ``exp(N(mu_log, sigma_log^2))``."""

    def __init__(self, mu_log: float = 0.0, sigma_log: float = 1.0) -> None:
        if sigma_log <= 0:
            raise DomainError(f"sigma_log must be positive, got {sigma_log}")
        super().__init__(
            stats.lognorm(s=sigma_log, scale=math.exp(mu_log)),
            name=f"lognormal(mu={mu_log:g}, sigma={sigma_log:g})",
        )
        self.mu_log = float(mu_log)
        self.sigma_log = float(sigma_log)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return np.exp(generator.normal(self.mu_log, self.sigma_log, size=n))

    @property
    def mean(self) -> float:
        return math.exp(self.mu_log + self.sigma_log**2 / 2.0)

    @property
    def variance(self) -> float:
        s2 = self.sigma_log**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu_log + s2)


class StudentT(ScipyDistribution):
    """Student-t distribution with ``df`` degrees of freedom, location and scale.

    The k-th central moment is finite only for ``k < df``, which makes this the
    canonical heavy-tailed family for Theorem 1.8: choosing ``df = k + 1``
    yields a distribution with a finite k-th but infinite (k+1)-th moment.
    """

    def __init__(self, df: float = 3.0, loc: float = 0.0, scale: float = 1.0) -> None:
        if df <= 2:
            raise DomainError(
                f"df must exceed 2 so the variance is finite, got {df}"
            )
        if scale <= 0:
            raise DomainError(f"scale must be positive, got {scale}")
        super().__init__(
            stats.t(df=df, loc=loc, scale=scale),
            name=f"student_t(df={df:g}, loc={loc:g}, scale={scale:g})",
        )
        self.df = float(df)
        self.loc = float(loc)
        self.scale = float(scale)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return self.loc + self.scale * generator.standard_t(self.df, size=n)

    @property
    def mean(self) -> float:
        return self.loc

    @property
    def variance(self) -> float:
        return self.scale**2 * self.df / (self.df - 2.0)

    def central_moment(self, k: int) -> float:
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        if k >= self.df:
            return float("inf")
        return super().central_moment(k)


class Pareto(ScipyDistribution):
    """Pareto (power-law) distribution with tail index ``alpha`` and scale ``x_m``.

    Values are supported on ``[x_m, inf)``; moments of order ``k`` exist only
    for ``k < alpha``.
    """

    def __init__(self, alpha: float = 3.0, x_m: float = 1.0) -> None:
        if alpha <= 2:
            raise DomainError(f"alpha must exceed 2 so the variance is finite, got {alpha}")
        if x_m <= 0:
            raise DomainError(f"x_m must be positive, got {x_m}")
        super().__init__(
            stats.pareto(b=alpha, scale=x_m), name=f"pareto(alpha={alpha:g}, x_m={x_m:g})"
        )
        self.alpha = float(alpha)
        self.x_m = float(x_m)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        return self.x_m * (1.0 + generator.pareto(self.alpha, size=n))

    @property
    def mean(self) -> float:
        return self.alpha * self.x_m / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        a = self.alpha
        return self.x_m**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def central_moment(self, k: int) -> float:
        if k < 1:
            raise DomainError(f"central moment order must be >= 1, got {k}")
        if k >= self.alpha:
            return float("inf")
        return super().central_moment(k)


class _MixtureBase(Distribution):
    """Shared machinery for finite mixtures of scipy-frozen components."""

    def __init__(self, components, weights: Sequence[float], name: str) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.size != len(components):
            raise DomainError("number of weights must match number of components")
        if np.any(weights <= 0):
            raise DomainError("mixture weights must be positive")
        self._components = list(components)
        self._weights = weights / weights.sum()
        self.name = name

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        generator = resolve_rng(rng)
        counts = generator.multinomial(n, self._weights)
        parts = [
            np.asarray(comp.rvs(size=count, random_state=generator), dtype=float)
            for comp, count in zip(self._components, counts)
            if count > 0
        ]
        data = np.concatenate(parts) if parts else np.empty(0)
        generator.shuffle(data)
        return data

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        return sum(w * comp.pdf(x) for w, comp in zip(self._weights, self._components))

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return sum(w * comp.cdf(x) for w, comp in zip(self._weights, self._components))

    def quantile(self, q):
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        lows = [comp.ppf(1e-12) for comp in self._components]
        highs = [comp.ppf(1.0 - 1e-12) for comp in self._components]
        lo, hi = min(lows), max(highs)
        out = np.empty_like(q_arr)
        for i, target in enumerate(q_arr):
            a, b = lo, hi
            for _ in range(200):
                mid = 0.5 * (a + b)
                if self.cdf(mid) < target:
                    a = mid
                else:
                    b = mid
            out[i] = 0.5 * (a + b)
        return out if np.ndim(q) else float(out[0])

    @property
    def mean(self) -> float:
        return float(
            sum(w * comp.mean() for w, comp in zip(self._weights, self._components))
        )

    @property
    def variance(self) -> float:
        mu = self.mean
        second = sum(
            w * (comp.var() + comp.mean() ** 2)
            for w, comp in zip(self._weights, self._components)
        )
        return float(second - mu**2)


class GaussianMixture(_MixtureBase):
    """Finite mixture of Gaussians.

    Parameters
    ----------
    locs, scales, weights:
        Component means, standard deviations and (unnormalised) weights.
    """

    def __init__(
        self,
        locs: Sequence[float],
        scales: Sequence[float],
        weights: Sequence[float],
    ) -> None:
        if not (len(locs) == len(scales) == len(weights)):
            raise DomainError("locs, scales and weights must have equal length")
        if any(s <= 0 for s in scales):
            raise DomainError("all component scales must be positive")
        components = [stats.norm(loc=m, scale=s) for m, s in zip(locs, scales)]
        label = ", ".join(f"N({m:g},{s:g})" for m, s in zip(locs, scales))
        super().__init__(components, weights, name=f"mixture[{label}]")
        self.locs = [float(m) for m in locs]
        self.scales = [float(s) for s in scales]


class SpikeMixture(GaussianMixture):
    """The "ill-behaved" family: a broad Gaussian plus a very narrow spike.

    A fraction ``spike_mass`` of the probability sits in a Gaussian of width
    ``spike_width`` centred at ``spike_location``; the rest is a Gaussian of
    width ``bulk_sigma``.  As ``spike_width -> 0`` the highest-density width
    ``phi(1/16)`` collapses while sigma and the IQR stay essentially fixed,
    which is exactly the regime where the paper's bounds pick up their
    ``log log(1 / phi(1/16))`` dependence.
    """

    def __init__(
        self,
        bulk_sigma: float = 1.0,
        spike_width: float = 1e-4,
        spike_mass: float = 0.1,
        spike_location: float = 0.0,
        bulk_location: float = 0.0,
    ) -> None:
        if not 0.0 < spike_mass < 1.0:
            raise DomainError(f"spike_mass must lie in (0, 1), got {spike_mass}")
        if spike_width <= 0 or bulk_sigma <= 0:
            raise DomainError("spike_width and bulk_sigma must be positive")
        super().__init__(
            locs=[bulk_location, spike_location],
            scales=[bulk_sigma, spike_width],
            weights=[1.0 - spike_mass, spike_mass],
        )
        self.name = (
            f"spike(bulk_sigma={bulk_sigma:g}, spike_width={spike_width:g}, "
            f"spike_mass={spike_mass:g})"
        )
        self.spike_width = float(spike_width)
        self.spike_mass = float(spike_mass)
        self.bulk_sigma = float(bulk_sigma)

    def phi(self, beta: float) -> float:
        """For ``beta <= spike_mass`` the narrowest interval sits inside the spike."""
        if not 0.0 < beta < 1.0:
            raise DomainError(f"beta must lie in (0, 1), got {beta}")
        if beta < self.spike_mass * 0.9:
            # Mass beta of the spike component alone covers the interval, so
            # phi is of the order of the spike width.
            inner = min(beta / self.spike_mass, 1.0 - 1e-9)
            half = stats.norm.ppf(0.5 + inner / 2.0)
            return float(2.0 * half * self.spike_width)
        return super().phi(beta)
