"""``InfiniteDomainRadius`` — Algorithm 3, Theorems 3.1 and 3.6.

The radius ``rad(D) = max_i |X_i|`` is the smallest ``x`` with
``Count(D, x) = |D ∩ [-x, x]| = n``.  Feeding the counting queries
``Count(D, 0), Count(D, 2^0), Count(D, 2^1), ...`` to the Sparse Vector
Technique with the *lowered* threshold ``T = n - (6/eps) log(2/beta)`` makes
SVT stop (Lemma 2.6) at a scale that is at most ``2 * rad(D)`` while still
covering all but ``O(log log(rad(D)) / eps)`` elements of ``D``.

Real-valued data is handled by discretizing with a bucket size ``b``
(Theorem 3.6), which relaxes the guarantees to ``rad <= 2 rad(D) + 3b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.dataview import DatasetView
from repro.domain import Grid
from repro.exceptions import InsufficientDataError
from repro.mechanisms.sparse_vector import DEFAULT_MAX_QUERIES, sparse_vector

__all__ = ["RadiusResult", "estimate_radius"]


@dataclass(frozen=True)
class RadiusResult:
    """Private radius estimate together with analysis-only diagnostics.

    Attributes
    ----------
    radius:
        The privatized radius in the original (real) units.  The interval
        ``[-radius, radius]`` is safe to release: it is a post-processing of
        the SVT output.
    grid_radius:
        The radius expressed in grid units (an integer power of two or zero).
    svt_index:
        The 1-based index at which SVT stopped.
    bucket_size:
        Bucket size used for discretization (1.0 for integer data).
    covered_count, uncovered_count:
        *Non-private diagnostics*: how many data points fall inside/outside
        ``[-radius, radius]``.  They are computed from the raw data for
        utility measurement and must not be released alongside the estimate.
    """

    radius: float
    grid_radius: int
    svt_index: int
    bucket_size: float
    covered_count: int
    uncovered_count: int


def _doubling_count_queries(abs_grid_values: np.ndarray) -> Iterator:
    """Yield the counting queries Count(D, 0), Count(D, 2^0), Count(D, 2^1), ...

    ``abs_grid_values`` must be the sorted absolute values of the discretized
    dataset, so each count is a single ``searchsorted``.
    """

    def make_query(limit: float):
        def query() -> float:
            return float(np.searchsorted(abs_grid_values, limit, side="right"))

        return query

    yield make_query(0.0)
    scale = 1.0
    while True:
        yield make_query(scale)
        scale *= 2.0


def estimate_radius(
    values: Sequence[float],
    epsilon: float,
    beta: float,
    rng: RngLike = None,
    *,
    bucket_size: float = 1.0,
    ledger: Optional[PrivacyLedger] = None,
    max_queries: int = DEFAULT_MAX_QUERIES,
    label: str = "radius",
    sorted_abs: Optional[np.ndarray] = None,
) -> RadiusResult:
    """Privately estimate ``rad(D)`` over the (discretized) unbounded domain.

    Parameters
    ----------
    values:
        The dataset ``D`` (integers, or reals when ``bucket_size`` is set).
        A :class:`~repro.dataview.DatasetView` carrying the ``sorted_abs``
        sketch skips the per-call grid conversion and sort: ``|rint(x/b)| ==
        rint(|x|/b)`` and rounding is monotone, so snapping the sketch yields
        exactly the sorted absolute grid values the plain path computes.
    epsilon, beta:
        Privacy budget and failure probability for this call.
    bucket_size:
        Discretization bucket ``b``; use 1.0 for integer data.
    ledger:
        Optional ledger that records a spend of ``epsilon``.
    sorted_abs:
        Precomputed ``np.sort(np.abs(grid.to_grid(values)).astype(float))``
        — callers that already hold the sorted absolute *grid* values (e.g.
        derived from a dataset sketch) pass it here to skip both the grid
        conversion and the sort.  Results are bit-for-bit identical.

    Returns
    -------
    RadiusResult
        ``radius <= 2 * rad(D) + 3 * bucket_size`` and all but
        ``O(log(log(rad(D) / b) / beta) / eps)`` points of ``D`` lie inside
        ``[-radius, radius]``, each with probability at least ``1 - beta``.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot estimate the radius of an empty dataset")
    generator = resolve_rng(rng)

    grid = Grid(bucket_size)
    if sorted_abs is None and isinstance(values, DatasetView):
        sorted_abs = grid.to_grid(values.sorted_abs).astype(float)
    if sorted_abs is not None:
        grid_values = None
        abs_sorted = np.asarray(sorted_abs, dtype=float)
    else:
        grid_values = grid.to_grid(data)
        abs_sorted = np.sort(np.abs(grid_values).astype(float))
    n = data.size

    threshold = n - (6.0 / epsilon) * math.log(2.0 / beta)
    result = sparse_vector(
        threshold,
        epsilon,
        _doubling_count_queries(abs_sorted),
        generator,
        max_queries=max_queries,
        ledger=ledger,
        label=label,
    )

    if result.index == 1:
        grid_radius = 0
    else:
        grid_radius = 2 ** (result.index - 2)
    radius = grid.from_grid_scalar(grid_radius)

    if grid_values is None:
        # Count of |x| <= r over the sorted absolute values; identical to the
        # count_nonzero below on the same multiset.
        covered = int(np.searchsorted(abs_sorted, float(grid_radius), side="right"))
    else:
        covered = int(np.count_nonzero(np.abs(grid_values) <= grid_radius))
    return RadiusResult(
        radius=radius,
        grid_radius=int(grid_radius),
        svt_index=result.index,
        bucket_size=grid.bucket_size,
        covered_count=covered,
        uncovered_count=n - covered,
    )
