"""``InfiniteDomainRange`` — Algorithm 4, Theorems 3.2 and 3.7.

A good privatized range must be close to the empirical range ``R(D)`` in both
*scale* and *location*.  Algorithm 4 proceeds in three steps:

1. privately estimate the radius ``rad(D)`` so the bulk of the data is known
   to lie inside ``[-rad, rad]`` (Algorithm 3);
2. locate the data by privately finding a median over the now-finite domain
   ``Z ∩ [-rad, rad]`` with the inverse sensitivity mechanism (Algorithm 2);
3. re-centre the data at that median and privately estimate the radius again,
   which now measures the *width* ``gamma(D)`` rather than the magnitude of
   the values.

The returned interval has width at most ``4 * gamma(D) + 6b`` and misses only
``O(log log(gamma(D) / b) / eps)`` points of ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.dataview import DatasetView
from repro.domain import Grid
from repro.empirical.radius import RadiusResult, estimate_radius
from repro.exceptions import InsufficientDataError
from repro.mechanisms.exponential import finite_domain_quantile
from repro.mechanisms.sparse_vector import DEFAULT_MAX_QUERIES

__all__ = ["RangeResult", "estimate_range"]


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two ascending arrays into one (equal to ``np.sort(concat)``).

    Scatter positions come from cross-``searchsorted``: every element of
    ``a`` lands before the equal elements of ``b`` and vice versa, which is a
    bijection onto the output slots.  For float arrays of exact values (ties
    are bit-identical) the result is bitwise equal to sorting the
    concatenation, at the cost of two binary-search passes instead of a full
    sort.
    """
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    out[np.searchsorted(b, a, side="left") + np.arange(a.size)] = a
    out[np.searchsorted(a, b, side="right") + np.arange(b.size)] = b
    return out


@dataclass(frozen=True)
class RangeResult:
    """Private range estimate ``[low, high]`` plus analysis-only diagnostics.

    Attributes
    ----------
    low, high:
        Endpoints of the privatized range in real units.
    center:
        The privatized median used to re-centre the data (real units).
    width:
        ``high - low``.
    grid_low, grid_high, grid_center:
        The same quantities in grid units.
    bucket_size:
        Discretization bucket used.
    inside_count, outside_count:
        *Non-private diagnostics*: how many points of ``D`` fall inside /
        outside ``[low, high]``; used only to measure utility.
    radius_first, radius_recentred:
        The two intermediate radius estimates (useful for debugging and the
        E2 benchmark).
    """

    low: float
    high: float
    center: float
    width: float
    grid_low: int
    grid_high: int
    grid_center: int
    bucket_size: float
    inside_count: int
    outside_count: int
    radius_first: RadiusResult
    radius_recentred: RadiusResult


def estimate_range(
    values: Sequence[float],
    epsilon: float,
    beta: float,
    rng: RngLike = None,
    *,
    bucket_size: float = 1.0,
    ledger: Optional[PrivacyLedger] = None,
    max_queries: int = DEFAULT_MAX_QUERIES,
    label: str = "range",
) -> RangeResult:
    """Privately estimate a range covering (almost all of) ``D``.

    The total privacy cost is ``epsilon`` (basic composition over the
    ``eps/8 + eps/8 + 3 eps/4`` split of Algorithm 4).

    Parameters
    ----------
    values:
        The dataset ``D``.
    epsilon, beta:
        Privacy budget and failure probability.
    bucket_size:
        Discretization bucket ``b``; 1.0 for integer data.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot estimate the range of an empty dataset")
    generator = resolve_rng(rng)

    grid = Grid(bucket_size)
    n = data.size

    # Sketch fast path: with a DatasetView carrying the ``sorted`` and
    # ``sorted_abs`` sketches, every representation below is derived from the
    # sketches by monotone transforms (grid snapping, clipping, shifting) —
    # identical multisets, already in sorted order — so the per-call full
    # sorts and grid conversions of the plain path disappear while every
    # mechanism sees bit-for-bit identical inputs.
    view = values if isinstance(values, DatasetView) else None
    if view is not None:
        grid_sorted = grid.to_grid(view.sorted_values).astype(float)
        abs_grid_sorted = grid.to_grid(view.sorted_abs).astype(float)
        grid_values = None
    else:
        grid_sorted = abs_grid_sorted = None
        grid_values = grid.to_grid(data).astype(float)

    # Step 1: private radius of the raw (discretized) data, eps/8 of the budget.
    radius_first = estimate_radius(
        grid_sorted if grid_values is None else grid_values,
        epsilon / 8.0,
        beta / 3.0,
        generator,
        bucket_size=1.0,
        ledger=ledger,
        max_queries=max_queries,
        label=f"{label}.radius_first",
        sorted_abs=abs_grid_sorted,
    )
    rad1 = radius_first.grid_radius

    # Step 2: private median over the finite domain Z ∩ [-rad1, rad1], eps/8.
    # Clipping is monotone, so the clipped sketch stays sorted.
    clipped = np.clip(grid_sorted if grid_values is None else grid_values, -rad1, rad1)
    median_rank = max(1, n // 2)
    grid_center = finite_domain_quantile(
        clipped,
        median_rank,
        -rad1,
        rad1,
        epsilon / 8.0,
        beta / 3.0,
        generator,
        ledger=ledger,
        label=f"{label}.median",
        assume_sorted=grid_values is None,
    )

    # Step 3: re-centre and estimate the radius again, 3 eps/4 of the budget.
    if grid_values is None:
        # Shifting preserves order; the sorted absolute values of the
        # recentred data are the merge of the negated negative part
        # (reversed) with the non-negative part.
        recentred = grid_sorted - grid_center
        negatives = int(np.searchsorted(recentred, 0.0, side="left"))
        recentred_abs = _merge_sorted(
            -recentred[:negatives][::-1], recentred[negatives:]
        )
    else:
        recentred = grid_values - grid_center
        recentred_abs = None
    radius_recentred = estimate_radius(
        recentred,
        3.0 * epsilon / 4.0,
        beta / 3.0,
        generator,
        bucket_size=1.0,
        ledger=ledger,
        max_queries=max_queries,
        label=f"{label}.radius_recentred",
        sorted_abs=recentred_abs,
    )
    rad2 = radius_recentred.grid_radius

    grid_low = int(grid_center - rad2)
    grid_high = int(grid_center + rad2)
    low = grid.from_grid_scalar(grid_low)
    high = grid.from_grid_scalar(grid_high)

    if view is not None:
        sorted_data = view.sorted_values
        inside = int(
            np.searchsorted(sorted_data, high, side="right")
            - np.searchsorted(sorted_data, low, side="left")
        )
    else:
        inside = int(np.count_nonzero((data >= low) & (data <= high)))
    return RangeResult(
        low=low,
        high=high,
        center=grid.from_grid_scalar(grid_center),
        width=high - low,
        grid_low=grid_low,
        grid_high=grid_high,
        grid_center=int(grid_center),
        bucket_size=grid.bucket_size,
        inside_count=inside,
        outside_count=n - inside,
        radius_first=radius_first,
        radius_recentred=radius_recentred,
    )
