"""``InfiniteDomainMean`` — Algorithm 5, Theorems 3.3 and 3.8.

With a good privatized range in hand, the empirical mean is released by
clipping the data into that range and adding Laplace noise calibrated to the
range width: ``ClippedMean(D, R̃) + Lap(5 |R̃| / (eps n))``.  The error is
``O(gamma(D) * log log(gamma(D)) / (eps n))`` — inward-neighbourhood optimal
up to the ``log log`` factor (Theorem 3.4 shows this factor is necessary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.empirical.range_finder import RangeResult, estimate_range
from repro.exceptions import InsufficientDataError
from repro.mechanisms.clipped_mean import clipped_mean, count_outside
from repro.mechanisms.laplace import laplace_noise

__all__ = ["EmpiricalMeanResult", "estimate_empirical_mean"]


@dataclass(frozen=True)
class EmpiricalMeanResult:
    """Private empirical mean plus analysis-only diagnostics.

    Attributes
    ----------
    mean:
        The ε-DP estimate of the empirical mean ``mu(D)``.
    range_used:
        The privatized range the data was clipped into.
    noise_scale:
        Scale of the Laplace noise added (``5 |R̃| / (eps n)``).
    clipped_count:
        *Non-private diagnostic*: number of points clipped.
    true_mean:
        *Non-private diagnostic*: the exact empirical mean, for error
        measurement in tests and benchmarks.
    """

    mean: float
    range_used: RangeResult
    noise_scale: float
    clipped_count: int
    true_mean: float

    @property
    def absolute_error(self) -> float:
        """|estimate - exact empirical mean| (non-private, analysis only)."""
        return abs(self.mean - self.true_mean)


def estimate_empirical_mean(
    values: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    bucket_size: float = 1.0,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "empirical_mean",
) -> EmpiricalMeanResult:
    """Privately estimate the empirical mean ``mu(D)`` over an unbounded domain.

    Error guarantee (Theorem 3.3 / 3.8): with probability at least
    ``1 - beta``,

    ``|estimate - mu(D)| = O((gamma(D) + b) * log(log(gamma(D)/b) / beta) / (eps n))``

    provided ``n > (c1 / eps) * log(rad(D) / (b * beta))``.

    Parameters
    ----------
    values:
        The dataset ``D``.
    epsilon, beta:
        Privacy budget and failure probability.
    bucket_size:
        Discretization bucket ``b``; 1.0 for integer data.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot estimate the mean of an empty dataset")
    generator = resolve_rng(rng)
    n = data.size

    # 4/5 of the budget finds the range, the remaining 1/5 pays for the noise.
    range_result = estimate_range(
        data,
        4.0 * epsilon / 5.0,
        beta / 2.0,
        generator,
        bucket_size=bucket_size,
        ledger=ledger,
        label=f"{label}.range",
    )

    exact_clipped = clipped_mean(data, range_result.low, range_result.high)
    noise_scale = 5.0 * range_result.width / (epsilon * n)
    if ledger is not None:
        ledger.charge(f"{label}.noise", epsilon / 5.0)
    estimate = exact_clipped + float(laplace_noise(noise_scale, generator))

    return EmpiricalMeanResult(
        mean=float(estimate),
        range_used=range_result,
        noise_scale=noise_scale,
        clipped_count=count_outside(data, range_result.low, range_result.high),
        true_mean=float(np.mean(data)),
    )
