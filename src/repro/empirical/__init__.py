"""Empirical (per-dataset) estimators over the unbounded integer domain.

These implement Section 3 of the paper:

* :func:`estimate_radius` — ``InfiniteDomainRadius`` (Algorithm 3),
* :func:`estimate_range` — ``InfiniteDomainRange`` (Algorithm 4),
* :func:`estimate_empirical_mean` — ``InfiniteDomainMean`` (Algorithm 5),
* :func:`estimate_empirical_quantile` — ``InfiniteDomainQuantile`` (Algorithm 6),

each of which also accepts real-valued data together with a bucket size,
implementing the discretized variants of Section 3.5 (Theorems 3.6-3.9).
"""

from repro.empirical.mean import EmpiricalMeanResult, estimate_empirical_mean
from repro.empirical.quantile import EmpiricalQuantileResult, estimate_empirical_quantile
from repro.empirical.radius import RadiusResult, estimate_radius
from repro.empirical.range_finder import RangeResult, estimate_range

__all__ = [
    "RadiusResult",
    "estimate_radius",
    "RangeResult",
    "estimate_range",
    "EmpiricalMeanResult",
    "estimate_empirical_mean",
    "EmpiricalQuantileResult",
    "estimate_empirical_quantile",
]
