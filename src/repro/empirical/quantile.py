"""``InfiniteDomainQuantile`` — Algorithm 6, Theorems 3.5 and 3.9.

A privatized quantile over an unbounded domain is obtained by first finding a
private range (Algorithm 4), clipping the data into it, and invoking the
finite-domain inverse-sensitivity quantile (Algorithm 2) over the integers in
that range.  The rank error is ``O(log(gamma(D) / b) / eps)``, which matches
the ``Omega(log N / eps)`` lower bound from the interior-point problem in the
finite-domain case, but adapts to the actual width of the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.dataview import DatasetView
from repro.domain import Grid
from repro.empirical.range_finder import RangeResult, estimate_range
from repro.exceptions import DomainError, InsufficientDataError
from repro.mechanisms.exponential import finite_domain_quantile

__all__ = ["EmpiricalQuantileResult", "estimate_empirical_quantile"]


@dataclass(frozen=True)
class EmpiricalQuantileResult:
    """Private quantile estimate plus analysis-only diagnostics.

    Attributes
    ----------
    value:
        The ε-DP estimate of the ``tau``-th smallest value (real units).
    tau:
        The requested rank.
    range_used:
        The privatized range the data was clipped into.
    rank_error:
        *Non-private diagnostic*: the rank distance between the estimate and
        the requested order statistic (how many data points lie strictly
        between them), used by tests and benchmarks.
    true_value:
        *Non-private diagnostic*: the exact ``tau``-th smallest value.
    """

    value: float
    tau: int
    range_used: RangeResult
    rank_error: int
    true_value: float


def _rank_distance(sorted_data: np.ndarray, tau: int, estimate: float) -> int:
    """Number of data points strictly between the tau-th order statistic and the estimate."""
    true_value = sorted_data[tau - 1]
    low, high = min(true_value, estimate), max(true_value, estimate)
    strictly_between = np.count_nonzero((sorted_data > low) & (sorted_data < high))
    return int(strictly_between)


def estimate_empirical_quantile(
    values: Sequence[float],
    tau: int,
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    bucket_size: float = 1.0,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "empirical_quantile",
) -> EmpiricalQuantileResult:
    """Privately estimate the ``tau``-th smallest value of ``D`` over an unbounded domain.

    Guarantee (Theorem 3.5 / 3.9): with probability at least ``1 - beta`` the
    returned value lies between the order statistics of ranks
    ``tau ± O(log(gamma(D) / (b beta)) / eps)`` (shifted by at most ``b`` due
    to discretization), provided ``n > (c1/eps) log(rad(D) / (b beta))``.

    Parameters
    ----------
    values:
        The dataset ``D``.
    tau:
        Requested rank, ``1 <= tau <= n``.
    epsilon, beta:
        Privacy budget and failure probability.
    bucket_size:
        Discretization bucket ``b``; 1.0 for integer data.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot estimate a quantile of an empty dataset")
    n = data.size
    if not 1 <= tau <= n:
        raise DomainError(f"tau must lie in [1, {n}], got {tau}")
    generator = resolve_rng(rng)

    grid = Grid(bucket_size)

    # Sketch fast path: a DatasetView's ``sorted`` sketch replaces every full
    # sort below — grid snapping and clipping are monotone, so the snapped /
    # clipped sketch is the sorted version of what the plain path computes
    # and all mechanism inputs are bit-for-bit identical.
    view = values if isinstance(values, DatasetView) else None

    # 4/5 of the budget finds the range, 1/5 pays for the quantile release.
    range_result = estimate_range(
        values if view is not None else data,
        4.0 * epsilon / 5.0,
        beta / 2.0,
        generator,
        bucket_size=bucket_size,
        ledger=ledger,
        label=f"{label}.range",
    )

    if view is not None:
        grid_values = grid.to_grid(view.sorted_values).astype(float)
    else:
        grid_values = grid.to_grid(data).astype(float)
    clipped = np.clip(grid_values, range_result.grid_low, range_result.grid_high)
    grid_estimate = finite_domain_quantile(
        clipped,
        tau,
        range_result.grid_low,
        range_result.grid_high,
        epsilon / 5.0,
        beta / 2.0,
        generator,
        ledger=ledger,
        label=f"{label}.quantile",
        assume_sorted=view is not None,
    )
    estimate = grid.from_grid_scalar(grid_estimate)

    sorted_data = view.sorted_values if view is not None else np.sort(data)
    return EmpiricalQuantileResult(
        value=float(estimate),
        tau=tau,
        range_used=range_result,
        rank_error=_rank_distance(sorted_data, tau, estimate),
        true_value=float(sorted_data[tau - 1]),
    )
