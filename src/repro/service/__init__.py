"""``repro.service`` — a concurrent private-query service.

The deployment story the estimators exist for: datasets are *registered*
with a finite total privacy budget, analysts submit typed *queries* — any
kind in the :mod:`repro.estimators` spec registry: the universal
mean / variance / quantile / IQR / multivariate mean plus every adapted
``baseline.*`` estimator (advertised by ``GET /kinds``) — and the service

* atomically **admits or refuses** each query against the remaining budget
  (:class:`BudgetManager`: reserve → commit, per-analyst sub-budgets,
  structured refusals that leave the ledger untouched);
* answers **identical repeated queries from cache at zero marginal
  epsilon** (:class:`AnswerCache` — DP post-processing, and the service's
  main throughput lever);
* **fans concurrent distinct queries out** through a shared
  :class:`repro.engine.EnginePool` (:class:`QueryService`, with a serial
  in-process fallback and :class:`repro.engine.SharedArray` hand-off for
  ``share=True`` datasets);
* speaks **JSON over HTTP** via two interchangeable stdlib front-ends —
  thread-per-connection (:mod:`repro.service.http`) and a single-event-loop
  asyncio server (:mod:`repro.service.aio`) that answers cache hits and
  refusals without leaving the loop (CLI: ``repro serve [--frontend async]``
  / ``repro query``);
* boots **multi-dataset deployments from a declarative config**
  (:mod:`repro.service.config`: TOML/JSON sources, budgets, cache, workers)
  including **joint budget groups** — one epsilon cap spanning several
  datasets (``repro serve --config serving.toml``);
* exposes a **live control plane** (:mod:`repro.service.admin`): an
  authenticated ``/admin`` surface that hot-reloads the serving config
  through a declarative differ — add datasets, rotate analyst budgets,
  resize the cache, drain a dataset before removal — plus per-analyst /
  per-kind **token-bucket rate limits** (:mod:`repro.service.qos`, 429
  before any budget is touched) and a **Prometheus** ``GET /metrics``
  exposition (:mod:`repro.service.metrics`) with per-kind latency
  histograms (``repro admin reload|drain|stats``);
* carries **end-to-end observability** (:mod:`repro.obs`): a trace id per
  request with pipeline-stage spans (``GET /debug/traces``,
  ``repro trace <id>``, slow-query log), a hash-chained tamper-evident
  privacy **audit trail** whose replay reproduces every ledger total
  bit-for-bit (``repro audit verify|spend``), and per-analyst / per-kind
  epsilon-spent gauges on ``/metrics`` (``[observability]`` config
  section).

Under a fixed service ``seed`` every answer is bit-for-bit identical for
``workers=1`` and ``workers=N`` — each query's randomness is derived from
``(service seed, canonical query key)``, never from scheduling.

Quick start
-----------
>>> import numpy as np
>>> from repro.service import QueryService
>>> service = QueryService(seed=7)
>>> _ = service.register("heights", np.random.default_rng(0).normal(170, 8, 20_000),
...                      total_budget=2.0)
>>> answer = service.query("heights", "mean", epsilon=0.5)
>>> answer.ok and abs(answer.value - 170) < 2
True
>>> service.query("heights", "mean", epsilon=0.5).cached  # same query: free
True
"""

from repro.service.cache import AnswerCache, CacheStats
from repro.service.executor import QueryAnswer, QueryRequest, QueryService
from repro.service.queries import (
    QUERY_KINDS,
    InvalidQueryError,
    Query,
    QueryPlan,
    UnknownQueryKindError,
    plan_query,
)
from repro.service.registry import (
    BudgetManager,
    DatasetRegistry,
    RegisteredDataset,
    RemoteBudgetManager,
    Reservation,
    UnknownDatasetError,
)
from repro.service.http import (
    DEFAULT_MAX_BODY,
    ServiceServer,
    make_server,
    serve_forever,
)
from repro.service.aio import (
    AsyncServerThread,
    AsyncServiceServer,
    serve_async,
    start_async_server,
)
from repro.service.config import (
    AdminConfig,
    BuiltService,
    ClusterConfig,
    DatasetConfig,
    GroupConfig,
    ObservabilityConfig,
    ServingConfig,
    build_service,
    load_serving_config,
    parse_serving_config,
)
from repro.service.admin import (
    AdminController,
    ConfigChange,
    ReloadRejected,
    diff_serving_configs,
)
from repro.service.metrics import LatencyRecorder, render_prometheus
from repro.service.qos import (
    LimitSpec,
    RateLimitDecision,
    RateLimiter,
    RateLimits,
)

__all__ = [
    "QueryService",
    "QueryRequest",
    "QueryAnswer",
    "Query",
    "QueryPlan",
    "QUERY_KINDS",
    "plan_query",
    "InvalidQueryError",
    "UnknownQueryKindError",
    "BudgetManager",
    "RemoteBudgetManager",
    "Reservation",
    "DatasetRegistry",
    "RegisteredDataset",
    "UnknownDatasetError",
    "AnswerCache",
    "CacheStats",
    "ServiceServer",
    "make_server",
    "serve_forever",
    "DEFAULT_MAX_BODY",
    "AsyncServiceServer",
    "AsyncServerThread",
    "serve_async",
    "start_async_server",
    "BuiltService",
    "ClusterConfig",
    "DatasetConfig",
    "GroupConfig",
    "ObservabilityConfig",
    "ServingConfig",
    "build_service",
    "load_serving_config",
    "parse_serving_config",
    "AdminConfig",
    "AdminController",
    "ConfigChange",
    "ReloadRejected",
    "diff_serving_configs",
    "LatencyRecorder",
    "render_prometheus",
    "LimitSpec",
    "RateLimitDecision",
    "RateLimiter",
    "RateLimits",
]
