"""``repro.service`` — a concurrent private-query service.

The deployment story the estimators exist for: datasets are *registered*
with a finite total privacy budget, analysts submit typed *queries*
(mean / variance / quantile / IQR / multivariate mean), and the service

* atomically **admits or refuses** each query against the remaining budget
  (:class:`BudgetManager`: reserve → commit, per-analyst sub-budgets,
  structured refusals that leave the ledger untouched);
* answers **identical repeated queries from cache at zero marginal
  epsilon** (:class:`AnswerCache` — DP post-processing, and the service's
  main throughput lever);
* **fans concurrent distinct queries out** through a shared
  :class:`repro.engine.EnginePool` (:class:`QueryService`, with a serial
  in-process fallback and :class:`repro.engine.SharedArray` hand-off for
  ``share=True`` datasets);
* speaks **JSON over HTTP** via the stdlib front-end in
  :mod:`repro.service.http` (CLI: ``repro serve`` / ``repro query``).

Under a fixed service ``seed`` every answer is bit-for-bit identical for
``workers=1`` and ``workers=N`` — each query's randomness is derived from
``(service seed, canonical query key)``, never from scheduling.

Quick start
-----------
>>> import numpy as np
>>> from repro.service import QueryService
>>> service = QueryService(seed=7)
>>> _ = service.register("heights", np.random.default_rng(0).normal(170, 8, 20_000),
...                      total_budget=2.0)
>>> answer = service.query("heights", "mean", epsilon=0.5)
>>> answer.ok and abs(answer.value - 170) < 2
True
>>> service.query("heights", "mean", epsilon=0.5).cached  # same query: free
True
"""

from repro.service.cache import AnswerCache, CacheStats
from repro.service.executor import QueryAnswer, QueryRequest, QueryService
from repro.service.queries import (
    QUERY_KINDS,
    InvalidQueryError,
    Query,
    QueryPlan,
    plan_query,
)
from repro.service.registry import (
    BudgetManager,
    DatasetRegistry,
    RegisteredDataset,
    Reservation,
    UnknownDatasetError,
)
from repro.service.http import ServiceServer, make_server, serve_forever

__all__ = [
    "QueryService",
    "QueryRequest",
    "QueryAnswer",
    "Query",
    "QueryPlan",
    "QUERY_KINDS",
    "plan_query",
    "InvalidQueryError",
    "BudgetManager",
    "Reservation",
    "DatasetRegistry",
    "RegisteredDataset",
    "UnknownDatasetError",
    "AnswerCache",
    "CacheStats",
    "ServiceServer",
    "make_server",
    "serve_forever",
]
