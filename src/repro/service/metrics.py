"""Service metrics: latency histograms and Prometheus text exposition.

:class:`LatencyRecorder` collects per-``(kind, outcome)`` latency histograms
with a single short-lived lock per observation (a bisect into a fixed bucket
ladder plus three integer/float increments — cheap enough to sit on the hot
submit path).  Outcomes are the answer statuses (``ok``, ``refused``,
``invalid``, ``failed``) refined by the zero-cost paths (``cached``,
``coalesced``) plus the pre-admission ``rate_limited`` refusal, so the
histogram doubles as the request counter: ``count`` per label pair is the
number of requests answered with that outcome.

:func:`render_prometheus` turns the recorder plus the service's existing
:meth:`~repro.service.QueryService.stats` counters into the Prometheus text
exposition format (version 0.0.4): ``repro_requests_total``,
``repro_request_latency_seconds`` (cumulative ``_bucket``/``_sum``/
``_count``), cache and budget gauges per dataset/group, per-kind and
per-analyst epsilon-spent gauges (``repro_kind_spent_epsilon``,
``repro_analyst_spent_epsilon``), trace/audit counters when observability
is configured, and the front-end counters.  Everything is derived from the
same snapshots ``GET /datasets`` reports, so the two views can be
cross-checked against each other.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "LatencyRecorder",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
]

#: Log-spaced latency bucket upper bounds in seconds: sub-millisecond cache
#: hits through multi-second cold estimator runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The Content-Type ``GET /metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class HistogramSnapshot:
    """One immutable histogram: per-bucket counts (non-cumulative), sum, count.

    ``counts`` has ``len(buckets) + 1`` entries; the last is the overflow
    bucket (observations above the largest bound, Prometheus ``+Inf``).
    """

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le-label, cumulative count)`` pairs, ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((f"{bound:g}", running))
        out.append(("+Inf", self.count))
        return out


class _Histogram:
    """Mutable histogram cell (guarded by the recorder's lock)."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, size: int):
        self.counts = [0] * size
        self.total = 0.0
        self.count = 0


class LatencyRecorder:
    """Thread-safe per-``(kind, outcome)`` latency histograms.

    One lock, taken briefly per observation; snapshots copy the counters out
    under the same lock so an exposition never reads a half-updated cell.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self._buckets = tuple(sorted(float(bound) for bound in buckets))
        self._cells: Dict[Tuple[str, str], _Histogram] = {}
        self._lock = threading.Lock()

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._buckets

    def observe(self, kind: str, outcome: str, seconds: float) -> None:
        """Record one request of ``kind`` answered as ``outcome`` in ``seconds``."""
        seconds = max(float(seconds), 0.0)
        index = bisect_left(self._buckets, seconds)
        label = (str(kind), str(outcome))
        with self._lock:
            cell = self._cells.get(label)
            if cell is None:
                cell = self._cells[label] = _Histogram(len(self._buckets) + 1)
            cell.counts[index] += 1
            cell.total += seconds
            cell.count += 1

    def snapshot(self) -> Dict[Tuple[str, str], HistogramSnapshot]:
        """Consistent copy of every cell (safe to iterate lock-free)."""
        with self._lock:
            return {
                label: HistogramSnapshot(
                    buckets=self._buckets,
                    counts=tuple(cell.counts),
                    sum=cell.total,
                    count=cell.count,
                )
                for label, cell in self._cells.items()
            }


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs.items())
    return "{" + inner + "}"


def _number(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Exposition:
    """Accumulates exposition lines with one HELP/TYPE header per metric."""

    def __init__(self):
        self._lines: List[str] = []
        self._declared: set = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._declared:
            self._declared.add(name)
            self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: Mapping[str, str], value: Any) -> None:
        self._lines.append(f"{name}{_labels(labels)} {_number(value)}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(
    service: Any,
    *,
    frontend: Optional[Mapping[str, Any]] = None,
    limiter: Optional[Any] = None,
) -> str:
    """The ``GET /metrics`` body for one service (plus optional front-end/QoS).

    Derived entirely from the same snapshots ``GET /datasets`` serves —
    :meth:`QueryService.stats`, the latency recorder, the front-end counter
    dict and the rate limiter's counters — so tests can parse this text and
    cross-check it against the JSON view.
    """
    out = _Exposition()
    stats = service.stats()

    out.declare(
        "repro_requests_total", "counter",
        "Requests answered, by estimator kind and outcome.",
    )
    histograms = service.metrics.snapshot()
    for (kind, outcome), cell in sorted(histograms.items()):
        out.sample(
            "repro_requests_total", {"kind": kind, "outcome": outcome}, cell.count
        )

    out.declare(
        "repro_request_latency_seconds", "histogram",
        "Wall-clock request latency, by estimator kind and outcome.",
    )
    for (kind, outcome), cell in sorted(histograms.items()):
        labels = {"kind": kind, "outcome": outcome}
        for le, cumulative in cell.cumulative():
            out.sample(
                "repro_request_latency_seconds_bucket",
                {**labels, "le": le},
                cumulative,
            )
        out.sample("repro_request_latency_seconds_sum", labels, cell.sum)
        out.sample("repro_request_latency_seconds_count", labels, cell.count)

    cache = stats.get("cache", {})
    for key, metric, kind, help_text in (
        ("hits", "repro_cache_hits_total", "counter", "Answer-cache hits."),
        ("misses", "repro_cache_misses_total", "counter", "Answer-cache misses."),
        ("evictions", "repro_cache_evictions_total", "counter",
         "Answer-cache LRU evictions."),
        ("size", "repro_cache_entries", "gauge", "Answers currently cached."),
    ):
        if key in cache:
            out.declare(metric, kind, help_text)
            out.sample(metric, {}, cache[key])

    out.declare(
        "repro_budget_capacity_epsilon", "gauge",
        "Total privacy budget per dataset.",
    )
    out.declare(
        "repro_budget_spent_epsilon", "gauge",
        "Committed privacy spend per dataset.",
    )
    out.declare(
        "repro_budget_reserved_epsilon", "gauge",
        "In-flight reserved epsilon per dataset.",
    )
    out.declare(
        "repro_budget_remaining_epsilon", "gauge",
        "Grantable privacy budget per dataset.",
    )
    out.declare(
        "repro_dataset_records", "gauge", "Records per registered dataset.",
    )
    out.declare(
        "repro_dataset_draining", "gauge",
        "1 when the dataset is draining (no new admissions), else 0.",
    )
    for dataset in stats.get("datasets", []):
        labels = {"dataset": dataset["name"]}
        budget = dataset["budget"]
        out.sample("repro_budget_capacity_epsilon", labels, budget["capacity"])
        out.sample("repro_budget_spent_epsilon", labels, budget["spent"])
        out.sample("repro_budget_reserved_epsilon", labels, budget["reserved"])
        out.sample("repro_budget_remaining_epsilon", labels, budget["remaining"])
        out.sample("repro_dataset_records", labels, dataset["records"])
        out.sample(
            "repro_dataset_draining", labels, 1 if dataset.get("draining") else 0
        )

    groups = stats.get("groups", {})
    if groups:
        out.declare(
            "repro_group_budget_capacity_epsilon", "gauge",
            "Joint budget group capacity.",
        )
        out.declare(
            "repro_group_budget_spent_epsilon", "gauge",
            "Joint budget group committed spend.",
        )
        for name, group in sorted(groups.items()):
            labels = {"group": name}
            out.sample(
                "repro_group_budget_capacity_epsilon", labels,
                group["budget"]["capacity"],
            )
            out.sample(
                "repro_group_budget_spent_epsilon", labels,
                group["budget"]["spent"],
            )

    spend = stats.get("spend", {})
    kinds = spend.get("kinds", {})
    if kinds:
        out.declare(
            "repro_kind_spent_epsilon", "gauge",
            "Committed privacy spend per estimator kind (service lifetime).",
        )
        for kind, value in sorted(kinds.items()):
            out.sample("repro_kind_spent_epsilon", {"kind": kind}, value)
    analysts = spend.get("analysts", {})
    if analysts:
        out.declare(
            "repro_analyst_spent_epsilon", "gauge",
            "Committed privacy spend per analyst (service lifetime).",
        )
        for analyst, value in sorted(analysts.items()):
            out.sample("repro_analyst_spent_epsilon", {"analyst": analyst}, value)

    traces = stats.get("traces")
    if traces is not None:
        out.declare(
            "repro_traces_recorded_total", "counter",
            "Query traces recorded (the ring may have evicted older ones).",
        )
        out.sample("repro_traces_recorded_total", {}, traces["recorded"])
        out.declare(
            "repro_slow_queries_total", "counter",
            "Traces that exceeded the slow-query threshold.",
        )
        out.sample("repro_slow_queries_total", {}, traces["slow_queries"])
    audit = stats.get("audit")
    if audit is not None:
        out.declare(
            "repro_audit_records_total", "counter",
            "Records appended to the hash-chained privacy audit log.",
        )
        out.sample("repro_audit_records_total", {}, audit["records"])

    if limiter is not None:
        qos = limiter.stats()
        out.declare(
            "repro_rate_limit_allowed_total", "counter",
            "Requests admitted by the rate limiter.",
        )
        out.declare(
            "repro_rate_limit_refused_total", "counter",
            "Requests refused (429) by the rate limiter.",
        )
        out.sample("repro_rate_limit_allowed_total", {}, qos["allowed"])
        out.sample("repro_rate_limit_refused_total", {}, qos["limited"])

    if frontend is not None:
        flavour = str(frontend.get("frontend", "unknown"))
        out.declare(
            "repro_frontend_events_total", "counter",
            "Front-end protocol counters (disconnects, malformed requests, ...).",
        )
        for key, value in sorted(frontend.items()):
            if key in ("frontend", "max_body") or not isinstance(value, int):
                continue
            out.sample(
                "repro_frontend_events_total",
                {"frontend": flavour, "event": key},
                value,
            )

    out.declare("repro_service_workers", "gauge", "Engine-pool worker count.")
    out.sample("repro_service_workers", {}, stats.get("workers", 1))
    return out.render()
