"""The query service: admission, coalescing, and engine-pool fan-out.

:class:`QueryService` composes the registry (budget admission), the answer
cache (zero-spend repeats), and :mod:`repro.engine` (parallel execution)
into a thread-safe in-process serving layer:

Request life cycle
------------------
1. **Validate** — the query is type/parameter/shape-checked against the
   dataset (:func:`repro.service.queries.plan_query`) before any budget is
   touched; malformed requests become structured ``invalid`` answers.
2. **Cache** — an identical earlier release (canonical-key match) is served
   from the :class:`~repro.service.cache.AnswerCache` at **zero marginal
   epsilon** (DP post-processing).
3. **Admit** — the dataset's :class:`~repro.service.registry.BudgetManager`
   atomically reserves the query's worst-case spend; refusal is a structured
   ``refused`` answer with the ledger untouched.
4. **Execute** — admitted queries of one :meth:`QueryService.submit_many`
   batch become :class:`~repro.engine.GridCell`\\ s fanned out over the
   shared :class:`~repro.engine.EnginePool` (serial in-process when no pool
   is configured).  Same-kind queries on one dataset are grouped into a
   single vectorized cell when the kind's spec is ``batchable`` (per-query
   cells otherwise), so a sketch-backed dataset serves its cached sketches
   to the whole group in one pass.  Registered-with-``share=True`` datasets
   — sketches included — cross to the workers as
   :class:`~repro.engine.SharedArray` segment names, not copies.
5. **Commit** — the epsilon the estimator's own ledger actually recorded is
   committed against the budget (reservations are exact upper bounds), and
   successful answers enter the cache.

Determinism contract (service extension)
----------------------------------------
Under a fixed ``seed``, each query's generator is derived from
``(service seed, canonical query key)`` — never from submission order,
thread timing, or the worker count.  Combined with the engine's grid
contract this makes every answer **bit-for-bit identical for ``pool=None``,
``workers=1`` and ``workers=N``**, across batching layouts, for the life of
the service.  With ``seed=None`` every fresh release draws new entropy.

Concurrent *identical* queries from different threads are coalesced: one
computes, the rest wait and share the released answer (again zero marginal
epsilon).  Concurrent *distinct* queries proceed independently; admission
order decides who gets the last of a nearly-exhausted budget.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._rng import spawn_seeds
from repro.accounting import PrivacyLedger
from repro.engine import GridCell, run_grid
from repro.exceptions import (
    BudgetExceededError,
    CoordinatorUnavailableError,
    InsufficientDataError,
    ReproError,
)
from repro.obs import AuditLog, Trace, TraceRecorder
from repro.obs import span as obs_span
from repro.service.cache import AnswerCache, CacheStats
from repro.service.metrics import LatencyRecorder
from repro.service.queries import InvalidQueryError, Query, plan_query
from repro.service.registry import (
    DatasetRegistry,
    RegisteredDataset,
    UnknownDatasetError,
)

__all__ = ["QueryRequest", "QueryAnswer", "QueryService"]


@dataclass(frozen=True)
class QueryRequest:
    """One submission: a query addressed to a named dataset by an analyst."""

    dataset: str
    query: Query
    analyst: Optional[str] = None


@dataclass(frozen=True)
class QueryAnswer:
    """Structured outcome of one submission.

    ``status`` is one of:

    * ``"ok"`` — ``value`` holds the release (float, or tuple of floats for
      quantile / multivariate answers);
    * ``"refused"`` — the budget admission failed; the ledger is unchanged
      and ``epsilon_charged`` is 0;
    * ``"invalid"`` — the request never reached admission (unknown dataset,
      malformed parameters, shape mismatch); nothing was spent;
    * ``"failed"`` — the estimator aborted mid-release (e.g. a rejected
      propose-test-release check).  The partial spend its ledger recorded
      *was* committed, exactly as a real deployment must account it.
    """

    dataset: str
    kind: str
    status: str
    key: str
    value: Optional[Union[float, Tuple[float, ...]]] = None
    epsilon_charged: float = 0.0
    cached: bool = False
    coalesced: bool = False
    error: Optional[str] = None
    message: Optional[str] = None
    remaining: Optional[float] = None
    query: Optional[Query] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        value: Any = self.value
        if isinstance(value, tuple):
            value = list(value)
        payload: Dict[str, Any] = {
            "dataset": self.dataset,
            "kind": self.kind,
            "status": self.status,
            "key": self.key,
            "value": value,
            "epsilon_charged": self.epsilon_charged,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "remaining": self.remaining,
        }
        if self.error is not None:
            payload["error"] = self.error
            payload["message"] = self.message
        if self.query is not None:
            payload["query"] = self.query.to_json()
        return payload


def _outcome(answer: QueryAnswer) -> str:
    """The metrics outcome label: status refined by the zero-cost paths."""
    if answer.cached:
        return "cached"
    if answer.coalesced:
        return "coalesced"
    return answer.status


class _QueryTrial:
    """Engine trial body for one admitted query (picklable by plain pickle).

    Holds only the dataset handle and the frozen :class:`Query`; the
    estimator spec is looked up by kind in the worker's own registry
    (import-populated), so nothing closure-like has to cross the pipe.  A
    ``share=True`` dataset crosses as its shared-memory segment name.
    """

    def __init__(self, data: Any, query: Query):
        self.data = data
        self.query = query

    def __call__(self, index: int, generator: np.random.Generator):
        from repro.estimators import UnknownKindError, get_estimator

        ledger = PrivacyLedger()
        try:
            spec = get_estimator(self.query.kind)
        except UnknownKindError as exc:
            # The parent validated this kind, so reaching here means it was
            # registered at runtime *after* this worker forked (workers only
            # see import-time registrations).  Zero spend: nothing ran.
            return (
                "failed",
                None,
                0.0,
                f"{exc} in this worker process: kinds registered after the "
                "engine pool forked are invisible to its workers — register "
                "custom kinds at import time or before the pool's first "
                "parallel call",
            )
        try:
            value = spec.run(
                self.data,
                generator,
                ledger,
                epsilon=self.query.epsilon,
                beta=self.query.beta,
                **self.query.params_dict,
            )
        except ReproError as exc:
            # MechanismError (e.g. a rejected propose-test-release check) is
            # the expected case; any other library error is likewise a failed
            # release whose partial spend must still be committed — never an
            # exception that aborts the sibling queries of the batch.
            return ("failed", None, ledger.total_epsilon, str(exc))
        return ("ok", value, ledger.total_epsilon, None)


class _QueryGroupTrial:
    """Engine trial body for a group of same-kind queries on one dataset.

    ``submit_many`` groups admitted queries that share ``(dataset, kind)`` —
    when the kind's spec is ``batchable`` — into one grid cell: the spec is
    resolved once and every member runs against the same dataset object in
    one pass, so a sketch-backed dataset crosses the pipe (or the serial
    path) once per group and its cached sketches serve the whole group.
    Kinds registered with ``batchable=False`` keep per-query cells.

    Determinism is preserved exactly: each member's generator is derived
    from its own ``(service seed, canonical key)`` base seed precisely the
    way the engine seeds a singleton one-trial cell —
    ``default_rng(int(spawn_seeds(base_seed, 1)[0]))`` — so every answer is
    bit-for-bit identical to what per-query cells produce, under any
    grouping layout and any worker count.
    """

    def __init__(self, data: Any, kind: str, members: List[Tuple[Query, int]]):
        self.data = data
        self.kind = kind
        self.members = members  # [(query, base seed), ...] in admission order

    def __call__(self, index: int, generator: np.random.Generator):
        from repro.estimators import UnknownKindError, get_estimator

        try:
            spec = get_estimator(self.kind)
        except UnknownKindError as exc:
            message = (
                f"{exc} in this worker process: kinds registered after the "
                "engine pool forked are invisible to its workers — register "
                "custom kinds at import time or before the pool's first "
                "parallel call"
            )
            return [("failed", None, 0.0, message) for _ in self.members]
        outcomes = []
        for query, base_seed in self.members:
            ledger = PrivacyLedger()
            member_rng = np.random.default_rng(int(spawn_seeds(base_seed, 1)[0]))
            try:
                value = spec.run(
                    self.data,
                    member_rng,
                    ledger,
                    epsilon=query.epsilon,
                    beta=query.beta,
                    **query.params_dict,
                )
            except ReproError as exc:
                outcomes.append(("failed", None, ledger.total_epsilon, str(exc)))
            else:
                outcomes.append(("ok", value, ledger.total_epsilon, None))
        return outcomes


class _InFlight:
    """Rendezvous for threads coalescing on one canonical key."""

    __slots__ = ("event", "answer")

    def __init__(self):
        self.event = threading.Event()
        self.answer: Optional[QueryAnswer] = None


@dataclass(frozen=True)
class _Admitted:
    """Book-keeping for one admitted (reserved, not yet executed) request."""

    position: int
    request: QueryRequest
    dataset: RegisteredDataset
    key: str
    reservation: Any
    flight: _InFlight


class QueryService:
    """Thread-safe private-query service over a :class:`DatasetRegistry`.

    Parameters
    ----------
    registry:
        The datasets to serve (a fresh empty registry by default; use
        :meth:`register` to populate).
    pool:
        An open :class:`~repro.engine.EnginePool` for fan-out of concurrent
        distinct queries.  ``None`` executes serially in-process — the
        bit-for-bit identical fallback.
    seed:
        Service seed for deterministic answers (see the module docstring).
        ``None`` draws fresh entropy per release.
    cache:
        Answer cache; defaults to an unbounded :class:`AnswerCache`.  Pass
        ``AnswerCache(maxsize=0)`` to disable caching.
    metrics:
        A :class:`~repro.service.metrics.LatencyRecorder` collecting
        per-kind/per-outcome latency histograms (a fresh one by default);
        every answered request is observed exactly once — by the submit
        path, or by :meth:`peek` when it resolves the request itself.
    tracer:
        A :class:`~repro.obs.TraceRecorder` collecting per-request traces
        (``None`` disables tracing).  Front-ends read it off the service,
        open a :class:`~repro.obs.Trace` per request and thread it through
        ``peek``/``submit`` via the keyword-only ``trace`` parameter; the
        executor only records spans into whatever trace it is handed.
    audit:
        An :class:`~repro.obs.AuditLog`; when set, every privacy-relevant
        decision (reserve, commit, cancel, refusal, zero-spend cache hit)
        appends one hash-chained record.  ``None`` disables auditing.
    """

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        *,
        pool=None,
        seed: Optional[int] = None,
        cache: Optional[AnswerCache] = None,
        metrics: Optional[LatencyRecorder] = None,
        tracer: Optional[TraceRecorder] = None,
        audit: Optional[AuditLog] = None,
    ):
        self.registry = registry if registry is not None else DatasetRegistry()
        self._pool = pool
        self._seed = None if seed is None else int(seed)
        self._cache = cache if cache is not None else AnswerCache()
        self.metrics = metrics if metrics is not None else LatencyRecorder()
        self.tracer = tracer
        self.audit = audit
        self._coalesce_lock = threading.Lock()
        self._inflight: Dict[str, _InFlight] = {}
        self._spend_lock = threading.Lock()
        self._kind_spend: Dict[str, float] = {}
        self._analyst_spend: Dict[str, float] = {}

    # -- registration convenience ------------------------------------------
    def register(self, name: str, data: Any, total_budget: float, **kwargs):
        """Register a dataset (see :meth:`DatasetRegistry.register`)."""
        return self.registry.register(name, data, total_budget, **kwargs)

    @property
    def cache(self) -> AnswerCache:
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    @property
    def workers(self) -> int:
        return self._pool.workers if self._pool is not None else 1

    # -- seeding -----------------------------------------------------------
    def _query_seed(self, key: str) -> int:
        """Derive the query's base seed from ``(service seed, canonical key)``.

        The canonical key is hashed (SHA-256) into seed-sequence entropy, so
        the seed depends on *what* is asked, never on when, by whom, or on
        which worker it runs — the root of the service determinism contract.
        """
        if self._seed is None:
            # Unseeded service: fresh entropy per query, drawn through the
            # sanctioned repro._rng seeding site rather than a bare
            # SeedSequence() so every entropy draw has one auditable origin.
            return int(spawn_seeds(None, 1)[0])
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        entropy = (self._seed & (2**64 - 1),) + struct.unpack(">8I", digest)
        sequence = np.random.SeedSequence(entropy)
        return int(sequence.generate_state(1, np.uint64)[0] % (2**63 - 1))

    # -- observability -----------------------------------------------------
    def _audit_event(self, event: str, **fields: Any) -> None:
        """Append one privacy event to the audit log; no-op when unconfigured.

        Emission sites sit in the same thread as (and immediately after) the
        budget mutation they describe, so replaying the log reproduces the
        ledger totals in commit order (``repro audit spend``).
        """
        if self.audit is not None:
            self.audit.record(event, **fields)

    def _record_spend(self, kind: str, analyst: Optional[str], actual: float) -> None:
        """Fold one committed spend into the service-wide gauges.

        Mirrors :meth:`BudgetManager.commit`: only a strictly positive
        measured spend counts, so these counters stay bit-for-bit consistent
        with the ledgers they summarise (per kind, and per analyst across
        every dataset — the ledger itself only tracks capped analysts).
        """
        if not actual > 0.0:
            return
        with self._spend_lock:
            self._kind_spend[kind] = self._kind_spend.get(kind, 0.0) + actual
            if analyst is not None:
                self._analyst_spend[analyst] = (
                    self._analyst_spend.get(analyst, 0.0) + actual
                )

    # -- submission API ----------------------------------------------------
    def submit(
        self, request: QueryRequest, *, trace: Optional[Trace] = None
    ) -> QueryAnswer:
        """Answer one request, coalescing with concurrent identical requests."""
        return self._submit_batch([request], trace=trace)[0]

    def submit_many(
        self, requests: Sequence[QueryRequest], *, trace: Optional[Trace] = None
    ) -> List[QueryAnswer]:
        """Answer a batch, fanning distinct queries across the engine pool.

        Intra-batch duplicates are computed once and shared, and both the
        single and batch paths coalesce with identical queries already in
        flight on other threads; answers come back in submission order.
        Admitted same-kind queries on one dataset execute as one grouped
        cell (unless the kind opts out via ``batchable=False``) with
        per-query generators still derived from ``(seed, canonical key)`` —
        grouping never changes an answer.
        """
        return self._submit_batch(list(requests), trace=trace)

    def query(
        self,
        dataset: str,
        kind: str,
        epsilon: float,
        *,
        beta: float = 1.0 / 3.0,
        levels: Sequence[float] = (),
        params: Optional[Dict[str, Any]] = None,
        analyst: Optional[str] = None,
    ) -> QueryAnswer:
        """Convenience wrapper building the :class:`QueryRequest` inline."""
        try:
            query = Query(
                kind=kind,
                epsilon=epsilon,
                beta=beta,
                levels=tuple(levels),
                params=tuple((params or {}).items()),
            )
        except ReproError as exc:
            return QueryAnswer(
                dataset=dataset,
                kind=str(kind),
                status="invalid",
                key="",
                error="invalid_query",
                message=str(exc),
            )
        return self.submit(QueryRequest(dataset=dataset, query=query, analyst=analyst))

    def peek(
        self, request: QueryRequest, *, trace: Optional[Trace] = None
    ) -> Optional[QueryAnswer]:
        """Answer ``request`` without executing an estimator, if possible.

        Returns the structured answer for the outcomes that need no engine
        work — an ``invalid`` request, a cache hit (zero marginal epsilon), or
        a sure budget refusal — and ``None`` when a fresh (blocking) release
        is required.  This is the non-blocking fast path the asyncio front-end
        serves directly on the event loop; ``None`` means "dispatch
        :meth:`submit` to a worker thread".

        A query identical to one already computing on another thread is also
        ``None``: :meth:`submit` coalesces with it at zero marginal epsilon,
        which must win over a point-in-time refusal (front-end parity).  The
        refusal probe holds no reservation: it is exactly what :meth:`submit`
        would decide at the same instant.  Cache counters stay exact — a hit
        is counted here (atomically, by :meth:`AnswerCache.peek`) and a miss
        only once, by :meth:`submit`.
        """
        started = time.perf_counter()
        answer = self._peek_inner(request, trace=trace)
        if answer is not None:
            self.metrics.observe(
                answer.kind, _outcome(answer), time.perf_counter() - started
            )
        return answer

    def _peek_inner(
        self, request: QueryRequest, *, trace: Optional[Trace] = None
    ) -> Optional[QueryAnswer]:
        prepared = self._prepare(request)
        if not isinstance(prepared, str):
            return prepared
        key = prepared
        dataset = self.registry.get(request.dataset)
        with obs_span(trace, "cache_lookup") as info:
            stored = self._cache.peek(key)
            info["hit"] = stored is not None
        if stored is not None:
            self._audit_event(
                "cache_hit",
                dataset=request.dataset,
                kind=request.query.kind,
                key=key,
                analyst=request.analyst,
            )
            return dataclasses.replace(
                stored,
                cached=True,
                coalesced=False,
                epsilon_charged=0.0,
                remaining=dataset.budget.remaining,
            )
        # From here on, outcomes answered by this probe (invalid, refused)
        # count the cache miss themselves — the submission path counts it
        # via its own lookup, and front-end counters must agree.
        if dataset.draining:
            self._cache.record_miss()
            return self._draining(request, key, dataset)
        try:
            plan = plan_query(
                request.query,
                records=dataset.records,
                dimension=dataset.dimension,
                allowed=dataset.kinds,
            )
        except InvalidQueryError as exc:
            self._cache.record_miss()
            return self._invalid(request, key, "invalid_query", exc)
        except InsufficientDataError as exc:
            self._cache.record_miss()
            return self._invalid(request, key, "insufficient_data", exc)
        with self._coalesce_lock:
            if key in self._inflight:
                return None  # submit will coalesce: cheaper than any refusal
        with obs_span(trace, "admission_probe") as info:
            try:
                refusal = dataset.budget.peek(
                    plan.reserve_epsilon, analyst=request.analyst
                )
            except CoordinatorUnavailableError as exc:
                self._cache.record_miss()
                info["refused"] = True
                return self._unavailable(request, key, str(exc))
            info["refused"] = refusal is not None
        if refusal is not None:
            self._cache.record_miss()
            return self._refused(request, key, refusal, dataset)
        return None

    # -- internals ---------------------------------------------------------
    def _prepare(self, request: QueryRequest) -> Union[str, QueryAnswer]:
        """Resolve the canonical key, or an ``invalid`` answer."""
        try:
            self.registry.get(request.dataset)
        except UnknownDatasetError as exc:
            return QueryAnswer(
                dataset=request.dataset,
                kind=request.query.kind,
                status="invalid",
                key="",
                error="unknown_dataset",
                message=str(exc),
                query=request.query,
            )
        return request.query.canonical_key(request.dataset)

    def _cache_lookup(self, request: QueryRequest, key: str) -> Optional[QueryAnswer]:
        stored = self._cache.get(key)
        if stored is None:
            return None
        self._audit_event(
            "cache_hit",
            dataset=request.dataset,
            kind=request.query.kind,
            key=key,
            analyst=request.analyst,
        )
        return dataclasses.replace(
            stored,
            cached=True,
            coalesced=False,
            epsilon_charged=0.0,
            remaining=self.registry.get(request.dataset).budget.remaining,
        )

    def _invalid(self, request: QueryRequest, key: str, error: str, exc: Exception) -> QueryAnswer:
        return QueryAnswer(
            dataset=request.dataset,
            kind=request.query.kind,
            status="invalid",
            key=key,
            error=error,
            message=str(exc),
            query=request.query,
        )

    def _refused(
        self, request: QueryRequest, key: str, message: str, dataset: RegisteredDataset
    ) -> QueryAnswer:
        """The structured refusal document (one shape for submit and peek).

        Every budget refusal the service serves is built here, so this is
        also the single audit-emission point for the ``refuse`` event.
        """
        self._audit_event(
            "refuse",
            dataset=request.dataset,
            kind=request.query.kind,
            key=key,
            analyst=request.analyst,
            reason="budget_exceeded",
        )
        return QueryAnswer(
            dataset=request.dataset,
            kind=request.query.kind,
            status="refused",
            key=key,
            error="budget_exceeded",
            message=message,
            remaining=dataset.budget.remaining,
            query=request.query,
        )

    def _unavailable(self, request: QueryRequest, key: str, message: str) -> QueryAnswer:
        """A structured coordinator-outage answer: nothing charged or observed.

        A joint budget group whose coordinator is unreachable must not admit
        spend (any shard-local fallback ledger would double-count the group
        cluster-wide), so the query fails cleanly — zero epsilon, ledger
        untouched — and the outage joins the audit chain as a decision.
        """
        self._audit_event(
            "refuse",
            dataset=request.dataset,
            kind=request.query.kind,
            key=key,
            analyst=request.analyst,
            reason="coordinator_unavailable",
        )
        return QueryAnswer(
            dataset=request.dataset,
            kind=request.query.kind,
            status="failed",
            key=key,
            error="coordinator_unavailable",
            message=message,
            query=request.query,
        )

    def _draining(
        self, request: QueryRequest, key: str, dataset: RegisteredDataset
    ) -> QueryAnswer:
        """Refusal for a draining dataset: no fresh admissions, ledger untouched.

        Cache hits are still served (post-processing costs nothing), so this
        is only reached after the cache came up empty — stop-admitting,
        keep-serving semantics for the decommission window.
        """
        self._audit_event(
            "refuse",
            dataset=request.dataset,
            kind=request.query.kind,
            key=key,
            analyst=request.analyst,
            reason="draining",
        )
        return QueryAnswer(
            dataset=request.dataset,
            kind=request.query.kind,
            status="refused",
            key=key,
            error="draining",
            message=(
                f"dataset {request.dataset!r} is draining: new releases are "
                "not admitted (previously released answers are still served "
                "from cache)"
            ),
            remaining=dataset.budget.remaining,
            query=request.query,
        )

    def _submit_batch(
        self, requests: List[QueryRequest], *, trace: Optional[Trace] = None
    ) -> List[QueryAnswer]:
        """Timed wrapper: answer the batch, then record one observation each.

        Batch entries share the batch's wall-clock elapsed time — the latency
        a caller of :meth:`submit_many` actually experienced for each answer.
        """
        started = time.perf_counter()
        answers = self._answer_batch(requests, trace=trace)
        elapsed = time.perf_counter() - started
        for answer in answers:
            self.metrics.observe(answer.kind, _outcome(answer), elapsed)
        return answers

    def _answer_batch(
        self, requests: List[QueryRequest], *, trace: Optional[Trace] = None
    ) -> List[QueryAnswer]:
        answers: List[Optional[QueryAnswer]] = [None] * len(requests)
        admitted: List[_Admitted] = []
        batch_first: Dict[str, int] = {}  # key -> position of its computing entry
        duplicates: List[Tuple[int, str]] = []
        waiting: List[Tuple[int, QueryRequest, _InFlight]] = []

        with obs_span(trace, "admission", requests=len(requests)) as admission_info:
            for position, request in enumerate(requests):
                prepared = self._prepare(request)
                if not isinstance(prepared, str):
                    answers[position] = prepared
                    continue
                key = prepared
                dataset = self.registry.get(request.dataset)
                hit = self._cache_lookup(request, key)
                if hit is not None:
                    answers[position] = hit
                    continue
                if dataset.draining:
                    answers[position] = self._draining(request, key, dataset)
                    continue
                if key in batch_first:
                    duplicates.append((position, key))
                    continue
                try:
                    plan = plan_query(
                        request.query,
                        records=dataset.records,
                        dimension=dataset.dimension,
                        allowed=dataset.kinds,
                    )
                except InvalidQueryError as exc:
                    answers[position] = self._invalid(request, key, "invalid_query", exc)
                    continue
                except InsufficientDataError as exc:
                    answers[position] = self._invalid(
                        request, key, "insufficient_data", exc
                    )
                    continue
                # Coalesce with an identical query already computing on another
                # thread, else reserve budget and claim the key — atomically, so
                # two threads can never both admit (and both charge) one release.
                # The audit writes (refuse / reserve) happen after the lock is
                # dropped: appending to the log is file I/O and must not extend
                # the admission critical section.
                with self._coalesce_lock:
                    flight = self._inflight.get(key)
                    if flight is not None:
                        waiting.append((position, request, flight))
                        continue
                    refusal = outage = None
                    try:
                        reservation = dataset.budget.reserve(
                            plan.reserve_epsilon, analyst=request.analyst
                        )
                    except BudgetExceededError as exc:
                        refusal = str(exc)
                    except CoordinatorUnavailableError as exc:
                        outage = str(exc)
                    else:
                        flight = _InFlight()
                        self._inflight[key] = flight
                if outage is not None:
                    answers[position] = self._unavailable(request, key, outage)
                    continue
                if refusal is not None:
                    answers[position] = self._refused(request, key, refusal, dataset)
                    continue
                admitted.append(
                    _Admitted(
                        position=position,
                        request=request,
                        dataset=dataset,
                        key=key,
                        reservation=reservation,
                        flight=flight,
                    )
                )
                batch_first[key] = position
                self._audit_event(
                    "reserve",
                    budget=dataset.budget_owner,
                    dataset=request.dataset,
                    kind=request.query.kind,
                    key=key,
                    epsilon=plan.reserve_epsilon,
                    analyst=request.analyst,
                )
            admission_info["admitted"] = len(admitted)

        if admitted:
            try:
                self._execute_admitted(admitted, answers, trace=trace)
            finally:
                # Publish outcomes (None if execution raised) and release the
                # keys, whatever happened — a waiter must never block forever.
                with self._coalesce_lock:
                    for entry in admitted:
                        self._inflight.pop(entry.key, None)
                for entry in admitted:
                    entry.flight.answer = answers[entry.position]
                    entry.flight.event.set()

        for position, key in duplicates:
            source = answers[batch_first[key]]
            assert source is not None
            answers[position] = dataclasses.replace(
                source, coalesced=True, epsilon_charged=0.0
            )

        # Waiters block only after this batch's own events are set, so two
        # batches waiting on each other's keys cannot deadlock.
        if waiting:
            with obs_span(trace, "coalesce", waiters=len(waiting)):
                for position, request, flight in waiting:
                    flight.event.wait()
                    if flight.answer is not None:
                        # Sharing an already-released answer is post-processing:
                        # zero marginal epsilon for the waiter.
                        answers[position] = dataclasses.replace(
                            flight.answer, coalesced=True, epsilon_charged=0.0
                        )
                    else:
                        # The owner errored before producing an answer; compute
                        # it ourselves (possibly surfacing the same error).  The
                        # inner call keeps the retry inside this batch's single
                        # metrics observation instead of double-counting the
                        # request.
                        answers[position] = self._answer_batch(
                            [request], trace=trace
                        )[0]

        assert all(answer is not None for answer in answers)
        return [answer for answer in answers if answer is not None]

    def _execute_admitted(
        self,
        admitted: List[_Admitted],
        answers: List[Optional[QueryAnswer]],
        *,
        trace: Optional[Trace] = None,
    ) -> None:
        """Run every admitted query through the engine, then commit spends.

        Admitted queries sharing ``(dataset, kind)`` are grouped into one
        :class:`_QueryGroupTrial` cell when the kind is ``batchable`` (one
        vectorized pass per group; see the class docstring for the exact
        per-member seed derivation).  Singleton groups and opted-out kinds
        run as classic per-query :class:`_QueryTrial` cells.
        """
        from repro.estimators import get_estimator

        groups: Dict[Tuple[str, str], List[int]] = {}
        for index, entry in enumerate(admitted):
            group_key = (entry.request.dataset, entry.request.query.kind)
            groups.setdefault(group_key, []).append(index)

        cells: List[GridCell] = []
        # admitted index -> (cell index, member index within a group or None)
        locator: List[Tuple[int, Optional[int]]] = [(0, None)] * len(admitted)
        for (_, kind), members in groups.items():
            # plan_query validated every admitted kind in this process, so
            # the spec lookup cannot fail here (worker-side registry drift is
            # still handled inside the trial bodies).
            if len(members) > 1 and get_estimator(kind).batchable:
                entries = [admitted[i] for i in members]
                cell = GridCell(
                    trial_fn=_QueryGroupTrial(
                        entries[0].dataset.data,
                        kind,
                        [
                            (e.request.query, self._query_seed(e.key))
                            for e in entries
                        ],
                    ),
                    trials=1,
                    rng=0,  # unused: members derive their own generators
                    key=len(cells),
                )
                for member, i in enumerate(members):
                    locator[i] = (len(cells), member)
                cells.append(cell)
            else:
                for i in members:
                    entry = admitted[i]
                    cell = GridCell(
                        trial_fn=_QueryTrial(entry.dataset.data, entry.request.query),
                        trials=1,
                        rng=self._query_seed(entry.key),
                        key=len(cells),
                    )
                    locator[i] = (len(cells), None)
                    cells.append(cell)
        # Per-cell wall-clock only when a trace wants it: the profile hook
        # observes timings without touching scheduling or results.
        profile: Optional[Dict[int, float]] = {} if trace is not None else None
        try:
            with obs_span(trace, "engine", cells=len(cells)) as engine_info:
                grid = run_grid(cells, pool=self._pool, workers=1, profile=profile)
                if profile:
                    # Group members share their group's wall-clock time.
                    engine_info["per_cell_ms"] = {
                        entry.key: round(
                            profile.get(locator[index][0], 0.0) * 1000.0, 3
                        )
                        for index, entry in enumerate(admitted)
                    }
        except BaseException:
            # Infrastructure failure before any estimator result came back:
            # no release happened, so the reservations are simply returned.
            for entry in admitted:
                try:
                    entry.dataset.budget.cancel(entry.reservation)
                except CoordinatorUnavailableError:
                    # The coordinator holds the reservation; unreachable
                    # means it stays held (conservative: the joint cap can
                    # only under-admit, never over-spend).  Keep releasing
                    # the remaining entries.
                    continue
                self._audit_event(
                    "cancel",
                    budget=entry.dataset.budget_owner,
                    dataset=entry.request.dataset,
                    kind=entry.request.query.kind,
                    key=entry.key,
                    epsilon=entry.reservation.amount,
                    analyst=entry.request.analyst,
                )
            raise

        for index, entry in enumerate(admitted):
            cell_index, member = locator[index]
            outcome = grid[cell_index].results[0]
            status, value, spent, message = (
                outcome if member is None else outcome[member]
            )
            with obs_span(trace, "commit", key=entry.key):
                try:
                    actual = entry.dataset.budget.commit(
                        entry.reservation, spent, label=entry.key
                    )
                except CoordinatorUnavailableError as exc:
                    # The release already happened but its spend could not
                    # be committed: the coordinator keeps the (larger)
                    # reservation held, so the joint cap stays safe, and
                    # the answer reports the outage instead of the value —
                    # an uncommitted release must not be served or cached.
                    answers[entry.position] = self._unavailable(
                        entry.request, entry.key, str(exc)
                    )
                    continue
            self._audit_event(
                "commit",
                budget=entry.dataset.budget_owner,
                dataset=entry.request.dataset,
                kind=entry.request.query.kind,
                key=entry.key,
                epsilon=actual,
                analyst=entry.request.analyst,
                status=status,
            )
            self._record_spend(entry.request.query.kind, entry.request.analyst, actual)
            if status == "ok":
                answer = QueryAnswer(
                    dataset=entry.request.dataset,
                    kind=entry.request.query.kind,
                    status="ok",
                    key=entry.key,
                    value=value,
                    epsilon_charged=actual,
                    remaining=entry.dataset.budget.remaining,
                    query=entry.request.query,
                )
                self._cache.put(entry.key, answer)
            else:
                answer = QueryAnswer(
                    dataset=entry.request.dataset,
                    kind=entry.request.query.kind,
                    status="failed",
                    key=entry.key,
                    error="mechanism_error",
                    message=message,
                    epsilon_charged=actual,
                    remaining=entry.dataset.budget.remaining,
                    query=entry.request.query,
                )
            answers[entry.position] = answer

    # -- introspection -----------------------------------------------------
    def spend_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Committed-epsilon totals per estimator kind and per analyst.

        One consistent snapshot (taken under the spend lock) feeds both the
        ``stats()`` document and the ``/metrics`` gauges, so the two surfaces
        can never disagree.
        """
        with self._spend_lock:
            return {
                "kinds": dict(sorted(self._kind_spend.items())),
                "analysts": dict(sorted(self._analyst_spend.items())),
            }

    def stats(self) -> Dict[str, Any]:
        """JSON-safe snapshot: datasets, budgets, joint groups, cache counters."""
        document: Dict[str, Any] = {
            "datasets": [dataset.to_json() for dataset in self.registry],
            "groups": self.registry.groups_json(),
            "cache": self._cache.stats.to_json(),
            "workers": self.workers,
            "seed": self._seed,
            "spend": self.spend_snapshot(),
        }
        if self.tracer is not None:
            document["traces"] = self.tracer.stats()
        if self.audit is not None:
            document["audit"] = self.audit.stats()
        return document
