"""Asyncio HTTP/1.1 front-end for :class:`~repro.service.QueryService`.

The threaded front-end (:mod:`repro.service.http`) spends one OS thread per
connection; at hundreds of concurrent clients the GIL and the scheduler eat
the cached path alive.  This module serves the *same* service from a single
event loop (pure stdlib: :func:`asyncio.start_server` plus a minimal
HTTP/1.1 parser — no new dependencies):

* **Fast paths run on the loop.**  Cache hits, sure budget refusals, invalid
  requests and rate-limit refusals are answered without leaving the event
  loop (:meth:`QueryService.peek` — lock-guarded dict lookups, never an
  estimator run), so the hot cached path is one task switch per request.
* **Cold queries leave the loop.**  A request that needs a fresh release is
  dispatched to a small thread pool via ``run_in_executor`` and flows through
  the untouched admission → coalesce → fan-out → commit pipeline of
  :class:`QueryService`.  Because both front-ends execute the identical
  service code and every query's randomness derives from
  ``(service seed, canonical key)``, answers are **bit-for-bit identical**
  across front-ends and worker counts.
* **Keep-alive and pipelining.**  Each connection is one task reading
  requests in order; pipelined requests queue in the stream buffer and are
  answered in order.
* **Hardening mirrors the threaded front-end.**  Malformed
  ``Content-Length`` → 400, oversized body → 413 (never read into memory),
  a peer disconnecting mid-request or mid-response is swallowed and counted
  — the log stays traceback-free by construction.

Every response body comes from :mod:`repro.service.wire` (the v1 envelope),
and the route surface matches the threaded front-end exactly: ``/health``,
``/datasets``, ``/kinds``, ``/metrics`` (Prometheus text), ``/query``
(single or batch, with pre-admission per-analyst / per-kind rate limiting),
``/debug/traces`` (the observability ring; traced ``/query`` responses echo
their ``"trace"`` id, honouring ``X-Repro-Trace-Id``), ``/datasets``
registration, and the authenticated ``/admin`` control plane
(state / reload / drain; mutating operations run off-loop in the executor).

``GET /datasets`` reports the front-end counters (requests, loop-answered,
executor-dispatched, disconnects, malformed) under the ``frontend`` key.

Entry points: :func:`start_async_server` (coroutine),
:func:`serve_async` (blocking, for the CLI) and :class:`AsyncServerThread`
(run the loop on a daemon thread — the blocking-world counterpart of
:func:`repro.service.http.serve_forever`, used by tests and benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.obs import span as obs_span
from repro.service import wire
from repro.service.executor import QueryService
from repro.service.http import DEFAULT_MAX_BODY
from repro.service.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.queries import InvalidQueryError

__all__ = [
    "AsyncServiceServer",
    "AsyncServerThread",
    "start_async_server",
    "serve_async",
]

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Upper bound on header lines per request (anti-abuse, matches stdlib).
_MAX_HEADERS = 100


class _Hangup(Exception):
    """Stop serving this connection (peer gone or framing unrecoverable)."""


class AsyncServiceServer:
    """One event loop serving a :class:`QueryService` over HTTP/1.1.

    Parameters mirror :func:`repro.service.http.make_server` (including the
    ``limiter`` QoS gate and the ``admin`` control plane);
    ``executor_threads`` sizes the pool that runs cold (estimator-executing)
    queries off the loop, and ``keepalive_timeout`` bounds every per-request
    wait — idle time between requests, header/body reads, and response
    drain — so a stalled client cannot pin its connection task forever.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_register: bool = False,
        quiet: bool = False,
        max_body: Optional[int] = DEFAULT_MAX_BODY,
        executor_threads: Optional[int] = None,
        keepalive_timeout: float = 75.0,
        limiter: Optional[Any] = None,
        admin: Optional[Any] = None,
    ):
        self.service = service
        self._host = host
        self._port = port
        self.allow_register = allow_register
        self.quiet = quiet
        self.max_body = max_body
        self.limiter = limiter
        self.admin = admin
        self._keepalive_timeout = keepalive_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-aio-query"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._bound: Optional[Tuple[str, int]] = None
        # Touched only from the event-loop thread; read anywhere (CPython int
        # loads are atomic, and the stats are monitoring data, not invariants).
        self._counters: Dict[str, int] = {
            "requests": 0,
            "answered_on_loop": 0,
            "executed": 0,
            "disconnects": 0,
            "malformed": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "AsyncServiceServer":
        """Bind and start accepting connections (``port=0`` → ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, backlog=512
        )
        self._bound = self._server.sockets[0].getsockname()[:2]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    @property
    def url(self) -> str:
        assert self._bound is not None, "server is not started"
        host, port = self._bound
        return f"http://{host}:{port}"

    @property
    def server_address(self) -> Tuple[str, int]:
        assert self._bound is not None, "server is not started"
        return self._bound

    def frontend_stats(self) -> Dict[str, Any]:
        """Front-end counters reported under ``frontend`` in ``GET /datasets``."""
        stats: Dict[str, Any] = {"frontend": "async", "max_body": self.max_body}
        stats.update(self._counters)
        return stats

    @property
    def disconnects(self) -> int:
        return self._counters["disconnects"]

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while await self._serve_one(reader, writer):
                pass
        except _Hangup:
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            self._counters["disconnects"] += 1
        except Exception as exc:  # noqa: BLE001 - a connection must never leak a traceback
            if not self.quiet:
                print(
                    f"error on connection: {type(exc).__name__}: {exc}",
                    file=sys.stderr,
                    flush=True,
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read and answer one request; returns whether to keep the connection."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self._keepalive_timeout
            )
        except asyncio.TimeoutError:
            return False
        except ValueError:  # request line beyond the stream's line limit
            self._counters["malformed"] += 1
            await self._send(writer, 400, wire.bad_request("request line too long"),
                             keep_alive=False, log="-")
            return False
        if not request_line.strip():
            return False  # clean close (or bare CRLF) between requests
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._counters["malformed"] += 1
            await self._send(writer, 400, wire.bad_request("unparseable request line"),
                             keep_alive=False, log="-")
            return False
        method, path, version = parts
        try:
            headers = await asyncio.wait_for(
                self._read_headers(reader), self._keepalive_timeout
            )
        except asyncio.TimeoutError:
            # A stalled (slowloris-style) client: reclaim the connection.
            self._counters["disconnects"] += 1
            return False
        if headers is None:
            self._counters["malformed"] += 1
            await self._send(writer, 400, wire.bad_request("unparseable headers"),
                             keep_alive=False, log=f"{method} {path}")
            return False
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:  # HTTP/1.0 closes unless the client opts in
            keep_alive = connection == "keep-alive"
        self._counters["requests"] += 1
        log = f"{method} {path}"
        if method == "GET":
            return await self._handle_get(path, headers, writer, keep_alive, log)
        if method == "POST":
            return await self._handle_post(path, headers, reader, writer, keep_alive, log)
        await self._send(writer, 405, wire.method_not_allowed(method),
                         keep_alive=False, log=log)
        return False

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, str]]:
        """Header block as a lowercase dict; ``None`` when unparseable."""
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await reader.readline()
            except ValueError:
                return None
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:  # EOF mid-headers: the client hung up
                self._counters["disconnects"] += 1
                raise _Hangup
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        return None  # header block too large

    def _check_rate_limit(self, request) -> Optional[Any]:
        """The pre-admission QoS gate (see the threaded front-end's twin).

        Runs on the loop — the limiter check is one lock plus arithmetic —
        and a refusal never touches budget, cache or executor.
        """
        if self.limiter is None:
            return None
        decision = self.limiter.check(request.analyst, request.query.kind)
        if decision is not None:
            self.service.metrics.observe(request.query.kind, "rate_limited", 0.0)
            wire.audit_rate_limit(self.service, request, decision)
        return decision

    # -- routes ------------------------------------------------------------
    async def _handle_get(
        self,
        path: str,
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
        keep_alive: bool,
        log: str,
    ) -> bool:
        try:
            if path == "/health":
                await self._send(writer, 200, wire.health_document(self.service),
                                 keep_alive=keep_alive, log=log)
            elif path == "/datasets":
                await self._send(
                    writer, 200,
                    wire.stats_document(self.service, frontend=self.frontend_stats()),
                    keep_alive=keep_alive, log=log,
                )
            elif path == "/kinds":
                await self._send(writer, 200, wire.kinds_document(self.service),
                                 keep_alive=keep_alive, log=log)
            elif path == "/metrics":
                text = render_prometheus(
                    self.service,
                    frontend=self.frontend_stats(),
                    limiter=self.limiter,
                )
                await self._send_raw(
                    writer, 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE,
                    keep_alive=keep_alive, log=log,
                )
            elif path == "/debug/traces" or path.startswith("/debug/traces/"):
                tracer = self.service.tracer
                if tracer is None:
                    await self._send(writer, 404, wire.tracing_disabled(),
                                     keep_alive=keep_alive, log=log)
                elif path == "/debug/traces":
                    await self._send(writer, 200, wire.traces_document(tracer),
                                     keep_alive=keep_alive, log=log)
                else:
                    code, doc = wire.trace_document(
                        tracer, path[len("/debug/traces/"):]
                    )
                    await self._send(writer, code, doc, keep_alive=keep_alive, log=log)
            elif path.startswith("/admin"):
                code, doc = self._admin_dispatch("GET", path, None, headers)
                await self._send(writer, code, doc, keep_alive=keep_alive, log=log)
            else:
                await self._send(writer, 404, wire.unknown_path("GET", path),
                                 keep_alive=keep_alive, log=log)
        except (_Hangup, ConnectionError):
            raise
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            await self._send(writer, 500, wire.internal_error(exc),
                             keep_alive=keep_alive, log=log)
        return keep_alive

    def _admin_dispatch(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, Any]]:
        if self.admin is None:
            return 403, wire.admin_disabled()
        token = wire.bearer_token(
            headers.get("authorization"), headers.get("x-admin-token")
        )
        return self.admin.handle(method, path, payload, token)

    async def _handle_post(
        self,
        path: str,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
        log: str,
    ) -> bool:
        # Body framing first: a malformed Content-Length leaves the stream
        # position unknown, so those responses always close the connection.
        raw_length = headers.get("content-length")
        try:
            length = int(raw_length) if raw_length is not None else 0
            if length < 0:
                raise ValueError
        except ValueError:
            self._counters["malformed"] += 1
            await self._send(
                writer, 400,
                wire.bad_request(
                    f"Content-Length must be a non-negative integer, got {raw_length!r}"
                ),
                keep_alive=False, log=log,
            )
            return False
        if self.max_body is not None and length > self.max_body:
            await self._send(writer, 413, wire.too_large(length, self.max_body),
                             keep_alive=False, log=log)
            return False
        if length == 0:
            # An empty POST /admin/reload means "re-read the booted config".
            if path.startswith("/admin"):
                return await self._handle_admin_post(
                    path, None, headers, writer, keep_alive, log
                )
            await self._send(writer, 400, wire.bad_request("request body is empty"),
                             keep_alive=keep_alive, log=log)
            return keep_alive
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), self._keepalive_timeout
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            # Hung up early, or stalled without ever delivering the promised
            # bytes — either way the request is unrecoverable.
            self._counters["disconnects"] += 1
            raise _Hangup from None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send(
                writer, 400,
                wire.bad_request(f"request body is not valid JSON: {exc}"),
                keep_alive=keep_alive, log=log,
            )
            return keep_alive

        loop = asyncio.get_running_loop()
        try:
            if path == "/query":
                return await self._handle_query(
                    payload, headers, writer, keep_alive, log, loop
                )
            elif path == "/datasets":
                if not self.allow_register:
                    await self._send(writer, 403, wire.registration_disabled(),
                                     keep_alive=keep_alive, log=log)
                else:
                    code, doc = await loop.run_in_executor(
                        self._executor, wire.register_response, self.service, payload
                    )
                    await self._send(writer, code, doc, keep_alive=keep_alive, log=log)
            elif path.startswith("/admin"):
                return await self._handle_admin_post(
                    path, payload, headers, writer, keep_alive, log
                )
            else:
                await self._send(writer, 404, wire.unknown_path("POST", path),
                                 keep_alive=keep_alive, log=log)
        except (_Hangup, ConnectionError):
            raise
        except ReproError as exc:
            await self._send(writer, 400, wire.invalid_request(exc),
                             keep_alive=keep_alive, log=log)
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            await self._send(writer, 500, wire.internal_error(exc),
                             keep_alive=keep_alive, log=log)
        return keep_alive

    async def _handle_query(
        self,
        payload: Any,
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
        keep_alive: bool,
        log: str,
        loop: asyncio.AbstractEventLoop,
    ) -> bool:
        """Answer ``POST /query`` under one per-request trace.

        The trace is opened on the loop, handed *sequentially* to the
        executor thread for cold queries (never touched by two threads at
        once), and finished here whatever the outcome — including the 400
        path, so invalid requests echo their trace id like any other.  It is
        finished *before* the response bytes leave, so a client that reads
        the echoed trace id can immediately inspect it via
        ``GET /debug/traces/<id>``.
        """
        tracer = self.service.tracer
        trace = None
        if tracer is not None:
            trace = tracer.start(headers.get("x-repro-trace-id"), frontend="async")
        trace_id = trace.trace_id if trace is not None else None
        try:
            if isinstance(payload, dict) and "queries" in payload:
                status, document = await self._handle_batch(payload, loop, trace)
            else:
                with obs_span(trace, "parse"):
                    request = wire.parse_request(payload)
                if trace is not None:
                    trace.annotate(
                        dataset=request.dataset,
                        kind=request.query.kind,
                        analyst=request.analyst,
                    )
                with obs_span(trace, "rate_check") as info:
                    decision = self._check_rate_limit(request)
                    info["limited"] = decision is not None
                if decision is not None:
                    self._counters["answered_on_loop"] += 1
                    if trace is not None:
                        trace.annotate(status="rate_limited")
                    status, document = 429, wire.with_trace(
                        wire.rate_limited_answer(request, decision), trace_id
                    )
                else:
                    answer = self.service.peek(request, trace=trace)
                    if answer is not None:
                        self._counters["answered_on_loop"] += 1
                    else:
                        self._counters["executed"] += 1
                        answer = await loop.run_in_executor(
                            self._executor,
                            partial(self.service.submit, request, trace=trace),
                        )
                    if trace is not None:
                        trace.annotate(status=answer.status, cached=answer.cached)
                    with obs_span(trace, "serialize"):
                        document = wire.with_trace(
                            wire.answer_document(answer), trace_id
                        )
                    status = wire.answer_status_code(answer)
        except (_Hangup, ConnectionError):
            raise
        except ReproError as exc:
            if trace is not None:
                trace.annotate(status="invalid")
            status, document = 400, wire.with_trace(
                wire.invalid_request(exc), trace_id
            )
        finally:
            if tracer is not None and trace is not None:
                tracer.finish(trace)
        await self._send(writer, status, document, keep_alive=keep_alive, log=log)
        return keep_alive

    async def _handle_batch(
        self,
        payload: Dict[str, Any],
        loop: asyncio.AbstractEventLoop,
        trace: Optional[Any] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        trace_id = trace.trace_id if trace is not None else None
        entries = payload["queries"]
        if not isinstance(entries, list):
            raise InvalidQueryError("'queries' must be a list of query objects")
        with obs_span(trace, "parse", queries=len(entries)):
            parsed = [wire.parse_request(entry) for entry in entries]
        if trace is not None:
            trace.annotate(queries=len(parsed))
        docs: List[Optional[Dict[str, Any]]] = [None] * len(parsed)
        admitted = []
        with obs_span(trace, "rate_check"):
            for index, request in enumerate(parsed):
                decision = self._check_rate_limit(request)
                if decision is not None:
                    docs[index] = wire.rate_limited_answer(request, decision)
                else:
                    admitted.append(index)
        self._counters["executed"] += 1
        answers = await loop.run_in_executor(
            self._executor,
            partial(
                self.service.submit_many,
                [parsed[index] for index in admitted],
                trace=trace,
            ),
        )
        with obs_span(trace, "serialize"):
            for index, answer in zip(admitted, answers):
                docs[index] = wire.answer_document(answer)
            document = wire.with_trace(wire.answers_document(docs), trace_id)
        return 200, document

    async def _handle_admin_post(
        self,
        path: str,
        payload: Any,
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
        keep_alive: bool,
        log: str,
    ) -> bool:
        try:
            if self.admin is None:
                await self._send(writer, 403, wire.admin_disabled(),
                                 keep_alive=keep_alive, log=log)
                return keep_alive
            token = wire.bearer_token(
                headers.get("authorization"), headers.get("x-admin-token")
            )
            # Reloads load dataset sources and take the admin lock: off-loop.
            loop = asyncio.get_running_loop()
            code, doc = await loop.run_in_executor(
                self._executor, self.admin.handle, "POST", path, payload, token
            )
            await self._send(writer, code, doc, keep_alive=keep_alive, log=log)
        except (_Hangup, ConnectionError):
            raise
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            await self._send(writer, 500, wire.internal_error(exc),
                             keep_alive=keep_alive, log=log)
        return keep_alive

    # -- response writing ---------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
        log: str,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._send_raw(writer, code, body, "application/json",
                             keep_alive=keep_alive, log=log)

    async def _send_raw(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        content_type: str,
        *,
        keep_alive: bool,
        log: str,
    ) -> None:
        head = (
            f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await asyncio.wait_for(writer.drain(), self._keepalive_timeout)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            # Mid-response disconnect (or a peer that stopped reading):
            # count it and end the connection quietly.
            self._counters["disconnects"] += 1
            raise _Hangup from None
        if not self.quiet:
            print(f'async "{log}" {code}', file=sys.stderr, flush=True)


async def start_async_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> AsyncServiceServer:
    """Build and start an :class:`AsyncServiceServer` on the running loop."""
    server = AsyncServiceServer(service, host, port, **kwargs)
    await server.start()
    return server


def serve_async(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    on_ready: Optional[Callable[[AsyncServiceServer], None]] = None,
    **kwargs: Any,
) -> None:
    """Run the async front-end until interrupted (blocking; used by the CLI).

    ``on_ready(server)`` fires once the socket is bound — the CLI uses it to
    print the (possibly ephemeral) listening URL.
    """

    async def _main() -> None:
        server = await start_async_server(service, host, port, **kwargs)
        try:
            if on_ready is not None:
                on_ready(server)
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    asyncio.run(_main())


class AsyncServerThread:
    """Run :class:`AsyncServiceServer` on a dedicated event-loop thread.

    The blocking-world counterpart of :func:`repro.service.http.serve_forever`
    for the async front-end: tests, benchmarks and mixed deployments call
    :meth:`start`, read :attr:`url`, then :meth:`stop`.  Usable as a context
    manager.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs: Any,
    ):
        self._args = (service, host, port)
        self._kwargs = kwargs
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-aio-loop"
        )
        self.server: Optional[AsyncServiceServer] = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def start(self, timeout: float = 10.0) -> "AsyncServerThread":
        self._thread.start()
        service, host, port = self._args
        future = asyncio.run_coroutine_threadsafe(
            start_async_server(service, host, port, **self._kwargs), self._loop
        )
        self.server = future.result(timeout)
        return self

    @property
    def url(self) -> str:
        assert self.server is not None, "call start() first"
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        if self.server is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.aclose(), self._loop
            ).result(timeout)
            self.server = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "AsyncServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
