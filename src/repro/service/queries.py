"""Typed query model for the private-query service, plus the planner.

A :class:`Query` is the unit a client submits against a registered dataset:
a statistic *kind* resolved through the process-wide estimator-spec registry
(:mod:`repro.estimators`) together with its privacy parameters and the
kind's typed params.  Queries are validated **before any privacy budget is
touched** — a malformed request must cost nothing — and canonicalised so
that two requests asking for the same release map to the same cache key.

:func:`plan_query` turns a validated query into a :class:`QueryPlan`: the
spec's runner bound to the query's parameters plus the *reservation
epsilon* — ``epsilon`` times the spec's exact reservation factor, an upper
bound on what the estimator's own ledger will record.  Most estimators
spend at most the epsilon they are asked for (sub-sampled probes charge the
smaller amplified value), but ``variance`` runs its paired radius search at
``eps/2`` on top of the halved recursive mean estimate and can record up to
``9/8`` of the requested epsilon; its spec's factor covers that worst case
so the budget manager can refuse *before* execution while never
under-counting the actual spend it later commits.

The set of servable kinds is open: anything registered via
:func:`repro.estimators.register_estimator` — including the adapted
``baseline.*`` estimators — is immediately constructible, plannable,
cacheable and servable here with no changes to this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.estimators import (
    ParamValidationError,
    UnknownKindError,
    get_estimator,
    registered_kinds,
)
from repro.estimators.spec import EstimatorSpec
from repro.exceptions import DomainError, InsufficientDataError

__all__ = [
    "QUERY_KINDS",
    "Query",
    "QueryPlan",
    "plan_query",
    "InvalidQueryError",
    "UnknownQueryKindError",
]


class InvalidQueryError(DomainError):
    """A query's kind or parameters are malformed (rejected before any spend)."""


class UnknownQueryKindError(InvalidQueryError):
    """The query named a kind no estimator spec is registered for.

    ``kinds`` carries the kinds registered at raise time, so front-ends can
    hand clients the authoritative list instead of a copy that drifts.
    """

    def __init__(self, message: str, kinds: Sequence[str]):
        super().__init__(message)
        self.kinds = list(kinds)


def _spec_for(kind: str) -> EstimatorSpec:
    """Resolve ``kind`` in the registry, normalising the error type."""
    try:
        return get_estimator(kind)
    except UnknownKindError as exc:
        raise UnknownQueryKindError(str(exc), exc.kinds) from None


class _KindReservations(Mapping):
    """Live view of the registry: kind -> exact reservation factor.

    Kept as the module-level :data:`QUERY_KINDS` for backward compatibility;
    it always reflects the estimator registry, so kinds registered later
    (including every ``baseline.*`` adapter) appear automatically.
    """

    def __getitem__(self, kind: str) -> float:
        try:
            return get_estimator(kind).reservation
        except UnknownKindError:
            raise KeyError(kind) from None

    def __iter__(self):
        return iter(registered_kinds())

    def __len__(self) -> int:
        return len(registered_kinds())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QUERY_KINDS({dict(self)!r})"


#: Supported statistic kinds mapped to their exact reservation factors —
#: now a live, registry-backed view rather than a hardcoded table.
QUERY_KINDS: Mapping[str, float] = _KindReservations()


@dataclass(frozen=True)
class Query:
    """One statistic release request.

    Attributes
    ----------
    kind:
        A registered estimator kind (see :func:`repro.estimators.registered_kinds`).
    epsilon, beta:
        Privacy budget and failure probability of the release.
    levels:
        Python-level convenience alias for the ``levels`` param of
        ``quantile`` queries; after construction it always mirrors
        ``params``' canonical ``levels`` entry (empty tuple when absent).
        The *wire* no longer accepts a top-level ``levels`` field —
        :meth:`from_json` takes it only inside ``params``.
    params:
        The kind's typed parameters.  Accepts a mapping (or ``(name, value)``
        pairs) at construction; stored canonically as a sorted tuple of
        items after validation against the kind's spec, so two spellings of
        the same request compare — and cache — equal.
    """

    kind: str
    epsilon: float
    beta: float = 1.0 / 3.0
    levels: Tuple[float, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        spec = _spec_for(self.kind)
        try:
            object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))
            object.__setattr__(self, "beta", validate_beta(self.beta))
        except DomainError:
            raise
        except Exception as exc:  # PrivacyParameterError is already a ReproError
            raise InvalidQueryError(str(exc)) from exc
        raw: Dict[str, Any] = {}
        if self.params:
            try:
                raw.update(dict(self.params))
            except (TypeError, ValueError):
                raise InvalidQueryError(
                    f"params must be a mapping of parameter names to values, "
                    f"got {self.params!r}"
                ) from None
        if self.levels is not None and len(tuple(self.levels)) > 0:
            if "levels" in raw:
                raise InvalidQueryError(
                    "give quantile levels once: either levels= or "
                    "params={'levels': ...}, not both"
                )
            raw["levels"] = tuple(self.levels)
        try:
            canonical = spec.validate_params(raw)
        except ParamValidationError as exc:
            raise InvalidQueryError(str(exc)) from None
        object.__setattr__(self, "params", tuple(sorted(canonical.items())))
        object.__setattr__(self, "levels", tuple(canonical.get("levels", ())))

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The canonical parameters as a plain dict (runner kwargs)."""
        return dict(self.params)

    # -- canonical form ----------------------------------------------------
    def canonical_key(self, dataset: str) -> str:
        """A stable string identifying this exact release against ``dataset``.

        Floats are rendered with ``repr`` (shortest round-trip form), so two
        queries compare equal iff they would produce byte-identical parameter
        sets — the key under which answers are cached and coalesced.  The
        layout for the built-in kinds is unchanged from the pre-registry
        service (same keys, hence same derived per-query seeds and answers);
        parameters beyond ``levels`` are appended as sorted-key JSON, so
        semantically identical queries written with any key order always hit
        the same cache entry.
        """
        levels = ",".join(repr(level) for level in self.levels)
        key = (
            f"{dataset}|{self.kind}|eps={self.epsilon!r}|beta={self.beta!r}"
            f"|levels={levels}"
        )
        extra = {name: value for name, value in self.params if name != "levels"}
        if extra:
            key += "|params=" + json.dumps(extra, sort_keys=True, separators=(",", ":"))
        return key

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe dict form (inverse of :meth:`from_json`).

        Emits the canonical spelling: every kind parameter — ``levels``
        included — lives under ``params``.
        """
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "epsilon": self.epsilon,
            "beta": self.beta,
        }
        params = {
            name: (list(value) if isinstance(value, tuple) else value)
            for name, value in self.params
        }
        if params:
            payload["params"] = params
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "Query":
        """Build a query from a decoded JSON object, validating as we go."""
        if not isinstance(payload, Mapping):
            raise InvalidQueryError(
                f"query must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "epsilon", "beta", "params"}
        if unknown:
            # Includes the legacy top-level "levels" alias, removed after
            # its one-release deprecation window: levels go in params.
            raise InvalidQueryError(f"unknown query fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise InvalidQueryError("query is missing the 'kind' field")
        if "epsilon" not in payload:
            raise InvalidQueryError("query is missing the 'epsilon' field")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise InvalidQueryError(
                f"params must be a JSON object of parameter values, got {params!r}"
            )
        try:
            return cls(
                kind=str(payload["kind"]),
                epsilon=float(payload["epsilon"]),
                beta=float(payload.get("beta", 1.0 / 3.0)),
                params=tuple(dict(params).items()),
            )
        except InvalidQueryError:
            # Already structured (including UnknownQueryKindError with its
            # registered-kind list); don't flatten it into a generic message.
            raise
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"malformed query parameters: {exc}") from exc


@dataclass(frozen=True)
class QueryPlan:
    """A validated query bound to its estimator runner.

    Attributes
    ----------
    query:
        The validated query.
    reserve_epsilon:
        Exact upper bound on the epsilon the runner's ledger will record;
        what the budget manager reserves before execution.
    runner:
        ``(data, generator, ledger) -> value`` executing the release.  The
        value is a float for scalar kinds, a tuple of floats for vector
        kinds (``quantile``, ``multivariate_mean``).
    """

    query: Query
    reserve_epsilon: float
    runner: Callable[[Any, np.random.Generator, PrivacyLedger], Any] = field(
        repr=False, compare=False
    )


def plan_query(
    query: Query,
    *,
    records: int,
    dimension: int,
    allowed: Optional[Sequence[str]] = None,
) -> QueryPlan:
    """Bind ``query`` to its registered spec, validating dataset compatibility.

    ``allowed`` (a per-dataset kind allowlist from the serving config)
    restricts which registered kinds this dataset serves.  Raises
    :class:`InvalidQueryError` (kind not allowed, shape mismatch) or
    :class:`~repro.exceptions.InsufficientDataError` — both *before* any
    budget is reserved or spent.
    """
    spec = _spec_for(query.kind)
    if allowed is not None and query.kind not in allowed:
        raise InvalidQueryError(
            f"kind {query.kind!r} is not served for this dataset; "
            f"allowed kinds: {sorted(allowed)}"
        )
    if spec.dimension == "multivariate":
        if dimension < 2:
            raise InvalidQueryError(
                f"{query.kind} needs a multi-column dataset; "
                f"this dataset has dimension {dimension}"
            )
    elif dimension != 1:
        raise InvalidQueryError(
            f"{query.kind} queries need a single-column dataset; "
            f"this dataset has dimension {dimension}"
        )
    if records < spec.min_records:
        raise InsufficientDataError(
            f"dataset has {records} records; {query.kind} needs at least "
            f"{spec.min_records}"
        )
    params = query.params_dict

    def run(data, generator, ledger):
        return spec.run(
            data, generator, ledger, epsilon=query.epsilon, beta=query.beta, **params
        )

    return QueryPlan(
        query=query,
        reserve_epsilon=query.epsilon * spec.reservation,
        runner=run,
    )


def parse_query_json(text: str) -> Query:
    """Decode a JSON document into a :class:`Query` (convenience for clients)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidQueryError(f"request body is not valid JSON: {exc}") from exc
    return Query.from_json(payload)
