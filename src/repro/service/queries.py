"""Typed query model for the private-query service, plus the planner.

A :class:`Query` is the unit a client submits against a registered dataset:
a statistic kind (mean / variance / quantile / IQR / multivariate mean) with
its privacy parameters.  Queries are validated **before any privacy budget is
touched** — a malformed request must cost nothing — and canonicalised so that
two requests asking for the same release map to the same cache key.

:func:`plan_query` turns a validated query into a :class:`QueryPlan`: the
estimator runner from :mod:`repro.core` / :mod:`repro.multivariate` plus the
*reservation epsilon* — an exact upper bound on what the estimator's own
ledger will record.  Most estimators spend at most the epsilon they are asked
for (sub-sampled probes charge the smaller amplified value), but
``estimate_variance`` runs its paired radius search at ``eps/2`` on top of
the halved recursive mean estimate and can record up to ``9/8`` of the
requested epsilon; the reservation covers that worst case so the budget
manager can refuse *before* execution while never under-counting the actual
spend it later commits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core import (
    estimate_iqr,
    estimate_mean,
    estimate_quantiles,
    estimate_variance,
)
from repro.exceptions import DomainError, InsufficientDataError
from repro.multivariate import estimate_mean_multivariate

__all__ = ["QUERY_KINDS", "Query", "QueryPlan", "plan_query", "InvalidQueryError"]


class InvalidQueryError(DomainError):
    """A query's kind or parameters are malformed (rejected before any spend)."""


#: Supported statistic kinds, mapped to the worst-case ratio between the
#: epsilon the estimator's ledger records and the epsilon it was asked for
#: (the reservation factor).  All factors are exact bounds, not heuristics:
#: variance's 9/8 is attained when sub-sampling amplification degenerates
#: (``eps >= 1``); every other estimator never exceeds its nominal epsilon.
QUERY_KINDS: Dict[str, float] = {
    "mean": 1.0,
    "variance": 9.0 / 8.0,
    "iqr": 1.0,
    "quantile": 1.0,
    "multivariate_mean": 1.0,
}

#: Fewest records each estimator accepts (its own up-front validation;
#: variance needs paired halves and requires twice the base minimum).
_MIN_RECORDS = {
    "mean": 8,
    "variance": 16,
    "iqr": 8,
    "quantile": 8,
    "multivariate_mean": 8,
}


@dataclass(frozen=True)
class Query:
    """One statistic release request.

    Attributes
    ----------
    kind:
        One of :data:`QUERY_KINDS`.
    epsilon, beta:
        Privacy budget and failure probability of the release.
    levels:
        Quantile levels in (0, 1); required (non-empty) for ``quantile``
        queries and forbidden for every other kind.
    """

    kind: str
    epsilon: float
    beta: float = 1.0 / 3.0
    levels: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise InvalidQueryError(
                f"unknown query kind {self.kind!r}; expected one of {sorted(QUERY_KINDS)}"
            )
        try:
            object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))
            object.__setattr__(self, "beta", validate_beta(self.beta))
        except DomainError:
            raise
        except Exception as exc:  # PrivacyParameterError is already a ReproError
            raise InvalidQueryError(str(exc)) from exc
        levels = tuple(float(level) for level in self.levels)
        if self.kind == "quantile":
            if not levels:
                raise InvalidQueryError("quantile queries need at least one level")
            if any(not 0.0 < level < 1.0 for level in levels):
                raise InvalidQueryError(
                    f"quantile levels must lie strictly between 0 and 1, got {levels}"
                )
        elif levels:
            raise InvalidQueryError(
                f"levels are only valid for quantile queries, not {self.kind!r}"
            )
        object.__setattr__(self, "levels", levels)

    # -- canonical form ----------------------------------------------------
    def canonical_key(self, dataset: str) -> str:
        """A stable string identifying this exact release against ``dataset``.

        Floats are rendered with ``repr`` (shortest round-trip form), so two
        queries compare equal iff they would produce byte-identical parameter
        sets — the key under which answers are cached and coalesced.
        """
        levels = ",".join(repr(level) for level in self.levels)
        return (
            f"{dataset}|{self.kind}|eps={self.epsilon!r}|beta={self.beta!r}"
            f"|levels={levels}"
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe dict form (inverse of :meth:`from_json`)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "epsilon": self.epsilon,
            "beta": self.beta,
        }
        if self.levels:
            payload["levels"] = list(self.levels)
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "Query":
        """Build a query from a decoded JSON object, validating as we go."""
        if not isinstance(payload, Mapping):
            raise InvalidQueryError(
                f"query must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "epsilon", "beta", "levels"}
        if unknown:
            raise InvalidQueryError(f"unknown query fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise InvalidQueryError("query is missing the 'kind' field")
        if "epsilon" not in payload:
            raise InvalidQueryError("query is missing the 'epsilon' field")
        levels = payload.get("levels", ())
        if isinstance(levels, (str, bytes)) or not isinstance(levels, Sequence):
            raise InvalidQueryError(f"levels must be a list of numbers, got {levels!r}")
        try:
            return cls(
                kind=str(payload["kind"]),
                epsilon=float(payload["epsilon"]),
                beta=float(payload.get("beta", 1.0 / 3.0)),
                levels=tuple(float(level) for level in levels),
            )
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"malformed query parameters: {exc}") from exc


@dataclass(frozen=True)
class QueryPlan:
    """A validated query bound to its estimator runner.

    Attributes
    ----------
    query:
        The validated query.
    reserve_epsilon:
        Exact upper bound on the epsilon the runner's ledger will record;
        what the budget manager reserves before execution.
    runner:
        ``(data, generator, ledger) -> value`` executing the release.  The
        value is a float for scalar kinds, a tuple of floats for ``quantile``
        and ``multivariate_mean``.
    """

    query: Query
    reserve_epsilon: float
    runner: Callable[[Any, np.random.Generator, PrivacyLedger], Any] = field(
        repr=False, compare=False
    )


def _run_mean(query: Query, data, generator, ledger):
    return float(estimate_mean(data, query.epsilon, query.beta, generator, ledger=ledger).mean)


def _run_variance(query: Query, data, generator, ledger):
    return float(
        estimate_variance(data, query.epsilon, query.beta, generator, ledger=ledger).variance
    )


def _run_iqr(query: Query, data, generator, ledger):
    return float(estimate_iqr(data, query.epsilon, query.beta, generator, ledger=ledger).iqr)


def _run_quantile(query: Query, data, generator, ledger):
    result = estimate_quantiles(
        data, list(query.levels), query.epsilon, query.beta, generator, ledger=ledger
    )
    return tuple(float(value) for value in result.values)


def _run_multivariate_mean(query: Query, data, generator, ledger):
    result = estimate_mean_multivariate(
        data, query.epsilon, query.beta, generator, ledger=ledger
    )
    return tuple(float(value) for value in result.mean)


_RUNNERS = {
    "mean": _run_mean,
    "variance": _run_variance,
    "iqr": _run_iqr,
    "quantile": _run_quantile,
    "multivariate_mean": _run_multivariate_mean,
}


def plan_query(query: Query, *, records: int, dimension: int) -> QueryPlan:
    """Bind ``query`` to its estimator, validating dataset compatibility.

    Raises :class:`InvalidQueryError` (shape mismatch) or
    :class:`~repro.exceptions.InsufficientDataError` — both *before* any
    budget is reserved or spent.
    """
    if query.kind == "multivariate_mean":
        if dimension < 2:
            raise InvalidQueryError(
                "multivariate_mean needs a multi-column dataset; "
                f"this dataset has dimension {dimension}"
            )
    elif dimension != 1:
        raise InvalidQueryError(
            f"{query.kind} queries need a single-column dataset; "
            f"this dataset has dimension {dimension}"
        )
    minimum = _MIN_RECORDS[query.kind]
    if records < minimum:
        raise InsufficientDataError(
            f"dataset has {records} records; {query.kind} needs at least {minimum}"
        )
    runner = _RUNNERS[query.kind]

    def run(data, generator, ledger):
        return runner(query, data, generator, ledger)

    return QueryPlan(
        query=query,
        reserve_epsilon=query.epsilon * QUERY_KINDS[query.kind],
        runner=run,
    )


def parse_query_json(text: str) -> Query:
    """Decode a JSON document into a :class:`Query` (convenience for clients)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidQueryError(f"request body is not valid JSON: {exc}") from exc
    return Query.from_json(payload)
