"""Declarative serving config: boot a multi-dataset service from one file.

``repro serve --config serving.toml`` reads a TOML (or JSON) document
describing an entire deployment — many datasets in one process, each with a
CSV/NPY source (or inline values), a private budget or a **joint budget
group** membership, per-analyst sub-budgets, engine workers, cache size and
the front-end flavour — validates it, and builds the
:class:`~repro.service.QueryService` plus its engine pool in one call.

The TOML grammar (JSON mirrors the same structure)::

    [service]
    seed = 7              # optional: deterministic answers
    workers = 4           # engine-pool processes (1 = serial in-process)
    cache_size = 4096     # answer-cache entries (omit = unbounded, 0 = off)
    frontend = "async"    # "threaded" or "async"
    host = "127.0.0.1"
    port = 8080           # 0 picks an ephemeral port
    max_body = 1048576    # request-body cap in bytes (413 beyond it)
    allow_register = false
    quiet = false

    [groups.clinical]     # one BudgetManager cap spanning member datasets
    budget = 4.0
    [groups.clinical.analyst_budgets]
    dashboard = 1.0

    [[datasets]]
    name = "salaries"
    source = "salaries.csv"    # .csv (needs column=) or .npy, relative to
    column = "salary"          # the config file's directory
    budget = 6.0               # private budget: exactly one of budget/group
    share = true               # optional: shared-memory hand-off override
    kinds = ["mean", "baseline.bounded_laplace_mean"]
                               # optional allowlist of registered estimator
                               # kinds (omit = serve every registered kind;
                               # unknown names fail at boot)
    [datasets.analyst_budgets]
    alice = 2.0

    [[datasets]]
    name = "heights"
    source = "heights.npy"
    group = "clinical"         # draws from the joint group cap

    [admin]                    # optional: enables the live /admin surface
    token = "change-me"        # shared secret; or token_env = "REPRO_ADMIN_TOKEN"

    [limits]                   # optional: token-bucket QoS (429 pre-admission)
    analyst_rate = 20.0        # default per-analyst sustained requests/second
    analyst_burst = 40         # bucket capacity (defaults to max(rate, 1))
    kind_rate = 100.0          # default per-estimator-kind limit
    [limits.analysts.alice]    # per-analyst override
    rate = 2.0
    burst = 4
    [limits.kinds.variance]    # per-kind override (keyed on spec.name)
    rate = 10.0

    [observability]            # optional: tracing + the privacy audit trail
    trace_ring = 256           # finished traces kept for GET /debug/traces
                               # (0 disables tracing entirely)
    slow_query_ms = 250.0      # slow-query log threshold (omit = off)
    audit_log = "audit.jsonl"  # hash-chained JSONL audit trail, relative to
                               # the config file (omit = no audit log)

    [cluster]                  # optional: the sharded tier (repro compose)
    shards = 4                 # replica count behind the router
    router_port = 8080         # router listen port (0 = allocate free)
    coordinator_port = 0       # budget-coordinator RPC port (0 = allocate)
    shard_base_port = 0        # first shard port, +1 per shard (0 = allocate)
                               # (shard_index= and coordinator= appear only in
                               # the per-shard configs `repro compose` emits)

Inline data (``values = [1.0, 2.0, ...]``) is accepted in place of
``source`` — handy for tests and tiny demos.

TOML parsing uses :mod:`tomllib` (Python 3.11+).  On 3.10 a small built-in
parser covering exactly the grammar above (tables, arrays of tables,
strings / numbers / booleans / single-line arrays, ``#`` comments) keeps the
feature available without any new dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import DomainError
from repro.service.cache import AnswerCache
from repro.service.executor import QueryService
from repro.service.http import DEFAULT_MAX_BODY
from repro.service.qos import LimitSpec, RateLimiter, RateLimits

try:  # Python 3.11+
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 only
    _tomllib = None

__all__ = [
    "AdminConfig",
    "ClusterConfig",
    "DatasetConfig",
    "GroupConfig",
    "ObservabilityConfig",
    "ServingConfig",
    "BuiltService",
    "parse_serving_config",
    "load_serving_config",
    "load_serving_document",
    "shard_document",
    "build_service",
]

#: Default environment variable consulted for the admin shared secret when
#: the config file does not set ``[admin] token=``.
ADMIN_TOKEN_ENV = "REPRO_ADMIN_TOKEN"

_FRONTENDS = ("threaded", "async")


@dataclass(frozen=True)
class GroupConfig:
    """One joint budget group: a single cap shared by its member datasets."""

    name: str
    budget: float
    analyst_budgets: Optional[Mapping[str, float]] = None


@dataclass(frozen=True)
class DatasetConfig:
    """One dataset to serve: its source and its budget (private or group)."""

    name: str
    source: Optional[str] = None
    column: Optional[str] = None
    values: Optional[Tuple[float, ...]] = None
    budget: Optional[float] = None
    group: Optional[str] = None
    analyst_budgets: Optional[Mapping[str, float]] = None
    share: Optional[bool] = None  # None = auto (shared memory iff pool forks)
    kinds: Optional[Tuple[str, ...]] = None  # None = every registered kind


@dataclass(frozen=True)
class AdminConfig:
    """The ``[admin]`` section: shared-secret auth for the live control plane.

    ``token`` is the secret itself; when absent, the environment variable
    named by ``token_env`` is consulted at boot.  With neither set the
    ``/admin`` surface answers 403 ``admin_disabled``.
    """

    token: Optional[str] = None
    token_env: str = ADMIN_TOKEN_ENV


@dataclass(frozen=True)
class ObservabilityConfig:
    """The ``[observability]`` section: tracing + the privacy audit trail.

    ``trace_ring`` caps the in-memory ring of finished traces served by
    ``GET /debug/traces`` (0 disables tracing); ``slow_query_ms`` — when
    set — logs any trace at least that slow; ``audit_log`` names the
    hash-chained JSONL audit-trail file (relative paths resolve against the
    config file's directory).  Ring size and threshold are live-serviceable
    over ``/admin/reload``; the audit log path is restart-only.
    """

    trace_ring: int = 256
    slow_query_ms: Optional[float] = None
    audit_log: Optional[str] = None


@dataclass(frozen=True)
class ClusterConfig:
    """The ``[cluster]`` section: the sharded serving tier (``repro compose``).

    In the *source* config (what an operator writes), ``shards`` sizes the
    tier and the ``*_port`` knobs pin listening ports (0 = allocate a free
    one at compose time).  In the *generated* per-shard configs
    (:func:`shard_document`), ``shard_index`` identifies the replica and
    ``coordinator`` carries the budget-coordinator endpoint — its presence
    is what makes :func:`build_service` install a
    :class:`~repro.service.registry.RemoteBudgetManager` proxy for every
    joint budget group instead of a shard-local ledger.  Private-budget
    datasets never involve the coordinator: the router pins them to one
    shard, whose local manager stays authoritative.
    """

    shards: int = 1
    coordinator: Optional[str] = None  # "host:port"; set in generated configs
    coordinator_port: int = 0
    router_port: int = 0
    shard_base_port: int = 0
    shard_index: Optional[int] = None


@dataclass(frozen=True)
class ServingConfig:
    """A validated serving document, ready for :func:`build_service`."""

    datasets: Tuple[DatasetConfig, ...]
    groups: Tuple[GroupConfig, ...] = ()
    seed: Optional[int] = None
    workers: int = 1
    cache_size: Optional[int] = None
    host: str = "127.0.0.1"
    port: int = 8080
    frontend: str = "threaded"
    max_body: Optional[int] = DEFAULT_MAX_BODY
    allow_register: bool = False
    quiet: bool = False
    admin: Optional[AdminConfig] = None
    limits: Optional[RateLimits] = None
    observability: Optional[ObservabilityConfig] = None
    cluster: Optional[ClusterConfig] = None
    base_dir: Optional[Path] = None  # resolves relative dataset sources
    source_path: Optional[Path] = None  # the file this config was loaded from


# ---------------------------------------------------------------------------
# document parsing


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DomainError(f"serving config: {message}")


def _parse_analyst_budgets(raw: Any, where: str) -> Optional[Dict[str, float]]:
    if raw is None:
        return None
    _require(isinstance(raw, Mapping), f"{where}.analyst_budgets must be a table")
    budgets: Dict[str, float] = {}
    for name, cap in raw.items():
        try:
            budgets[str(name)] = float(cap)
        except (TypeError, ValueError):
            raise DomainError(
                f"serving config: {where}.analyst_budgets[{name!r}] must be a "
                f"number, got {cap!r}"
            ) from None
    return budgets


def _parse_dataset(raw: Any, index: int) -> DatasetConfig:
    where = f"datasets[{index}]"
    _require(isinstance(raw, Mapping), f"{where} must be a table")
    unknown = set(raw) - {
        "name", "source", "column", "values", "budget", "group",
        "analyst_budgets", "share", "kinds",
    }
    _require(not unknown, f"{where} has unknown keys: {sorted(unknown)}")
    _require("name" in raw and str(raw["name"]), f"{where} needs a non-empty name")
    name = str(raw["name"])
    source = raw.get("source")
    values = raw.get("values")
    _require(
        (source is None) != (values is None),
        f"{where} ({name!r}) needs exactly one of source= or values=",
    )
    if values is not None:
        _require(
            isinstance(values, (list, tuple)),
            f"{where} ({name!r}) values must be an array",
        )
        try:
            values = tuple(float(value) for value in values)
        except (TypeError, ValueError):
            raise DomainError(
                f"serving config: {where} ({name!r}) values must be numbers"
            ) from None
    column = raw.get("column")
    if source is not None and str(source).lower().endswith(".csv"):
        _require(column is not None, f"{where} ({name!r}): a .csv source needs column=")
    else:
        _require(column is None, f"{where} ({name!r}): column= is only for .csv sources")
    budget = raw.get("budget")
    group = raw.get("group")
    _require(
        (budget is None) != (group is None),
        f"{where} ({name!r}) needs exactly one of budget= or group=",
    )
    if budget is not None:
        try:
            budget = float(budget)
        except (TypeError, ValueError):
            raise DomainError(
                f"serving config: {where} ({name!r}) budget must be a number"
            ) from None
    analyst_budgets = _parse_analyst_budgets(raw.get("analyst_budgets"), where)
    _require(
        analyst_budgets is None or group is None,
        f"{where} ({name!r}): analyst budgets of a joint group belong under "
        "[groups.<name>.analyst_budgets], not on member datasets",
    )
    share = raw.get("share")
    _require(
        share is None or isinstance(share, bool),
        f"{where} ({name!r}) share must be a boolean",
    )
    kinds = raw.get("kinds")
    if kinds is not None:
        from repro.estimators import registered_kinds

        _require(
            isinstance(kinds, (list, tuple))
            and kinds
            and all(isinstance(kind, str) and kind for kind in kinds),
            f"{where} ({name!r}) kinds must be a non-empty array of kind names",
        )
        known = set(registered_kinds())
        unknown_kinds = sorted(set(kinds) - known)
        _require(
            not unknown_kinds,
            f"{where} ({name!r}) names unknown estimator kind(s) "
            f"{unknown_kinds} (registered: {sorted(known)})",
        )
        kinds = tuple(dict.fromkeys(kinds))
    return DatasetConfig(
        name=name,
        source=None if source is None else str(source),
        column=None if column is None else str(column),
        values=values,
        budget=budget,
        group=None if group is None else str(group),
        analyst_budgets=analyst_budgets,
        share=share,
        kinds=kinds,
    )


def _parse_admin(raw: Any) -> Optional[AdminConfig]:
    if raw is None:
        return None
    _require(isinstance(raw, Mapping), "[admin] must be a table")
    unknown = set(raw) - {"token", "token_env"}
    _require(not unknown, f"[admin] has unknown keys: {sorted(unknown)}")
    token = raw.get("token")
    if token is not None:
        _require(
            isinstance(token, str) and bool(token),
            "[admin] token must be a non-empty string",
        )
    token_env = raw.get("token_env", ADMIN_TOKEN_ENV)
    _require(
        isinstance(token_env, str) and bool(token_env),
        "[admin] token_env must be a non-empty string",
    )
    return AdminConfig(token=token, token_env=token_env)


def _parse_limit_spec(raw: Any, where: str) -> LimitSpec:
    _require(isinstance(raw, Mapping), f"[{where}] must be a table")
    unknown = set(raw) - {"rate", "burst"}
    _require(not unknown, f"[{where}] has unknown keys: {sorted(unknown)}")
    _require("rate" in raw, f"[{where}] needs a rate")
    return _limit_spec(raw["rate"], raw.get("burst"), where)


def _limit_spec(raw_rate: Any, raw_burst: Any, where: str) -> LimitSpec:
    try:
        rate = float(raw_rate)
        burst = max(1.0, rate) if raw_burst is None else float(raw_burst)
    except (TypeError, ValueError):
        raise DomainError(
            f"serving config: [{where}] rate/burst must be numbers"
        ) from None
    return LimitSpec(rate=rate, burst=burst)


def _parse_limits(raw: Any) -> Optional[RateLimits]:
    if raw is None:
        return None
    _require(isinstance(raw, Mapping), "[limits] must be a table")
    unknown = set(raw) - {
        "analyst_rate", "analyst_burst", "kind_rate", "kind_burst",
        "analysts", "kinds",
    }
    _require(not unknown, f"[limits] has unknown keys: {sorted(unknown)}")
    for default, scope in (("analyst_rate", "analyst"), ("kind_rate", "kind")):
        _require(
            default in raw or f"{scope}_burst" not in raw,
            f"[limits] {scope}_burst needs {default} alongside it",
        )
    analyst = (
        _limit_spec(raw["analyst_rate"], raw.get("analyst_burst"), "limits")
        if "analyst_rate" in raw
        else None
    )
    kind = (
        _limit_spec(raw["kind_rate"], raw.get("kind_burst"), "limits")
        if "kind_rate" in raw
        else None
    )
    overrides: Dict[str, Dict[str, LimitSpec]] = {"analysts": {}, "kinds": {}}
    for section in ("analysts", "kinds"):
        table = raw.get(section, {})
        _require(
            isinstance(table, Mapping),
            f"[limits.{section}] must be a table of per-name tables",
        )
        for name, spec_raw in table.items():
            overrides[section][str(name)] = _parse_limit_spec(
                spec_raw, f"limits.{section}.{name}"
            )
    return RateLimits(
        analyst=analyst,
        kind=kind,
        analysts=overrides["analysts"],
        kinds=overrides["kinds"],
    )


def _parse_observability(raw: Any) -> Optional[ObservabilityConfig]:
    if raw is None:
        return None
    _require(isinstance(raw, Mapping), "[observability] must be a table")
    unknown = set(raw) - {"trace_ring", "slow_query_ms", "audit_log"}
    _require(not unknown, f"[observability] has unknown keys: {sorted(unknown)}")
    try:
        trace_ring = int(raw.get("trace_ring", 256))
    except (TypeError, ValueError):
        raise DomainError(
            "serving config: [observability] trace_ring must be an integer"
        ) from None
    _require(
        trace_ring >= 0,
        f"[observability] trace_ring must be >= 0, got {trace_ring}",
    )
    slow_query_ms = raw.get("slow_query_ms")
    if slow_query_ms is not None:
        try:
            slow_query_ms = float(slow_query_ms)
        except (TypeError, ValueError):
            raise DomainError(
                "serving config: [observability] slow_query_ms must be a number"
            ) from None
        _require(
            slow_query_ms >= 0,
            f"[observability] slow_query_ms must be >= 0, got {slow_query_ms}",
        )
    audit_log = raw.get("audit_log")
    if audit_log is not None:
        _require(
            isinstance(audit_log, str) and bool(audit_log),
            "[observability] audit_log must be a non-empty path string",
        )
    return ObservabilityConfig(
        trace_ring=trace_ring,
        slow_query_ms=slow_query_ms,
        audit_log=audit_log,
    )


def _parse_port(raw: Any, where: str) -> int:
    try:
        port = int(raw)
    except (TypeError, ValueError):
        raise DomainError(f"serving config: {where} must be an integer") from None
    _require(0 <= port <= 65535, f"{where} must be in [0, 65535], got {port}")
    return port


def _parse_cluster(raw: Any) -> Optional[ClusterConfig]:
    if raw is None:
        return None
    _require(isinstance(raw, Mapping), "[cluster] must be a table")
    unknown = set(raw) - {
        "shards", "coordinator", "coordinator_port", "router_port",
        "shard_base_port", "shard_index",
    }
    _require(not unknown, f"[cluster] has unknown keys: {sorted(unknown)}")
    try:
        shards = int(raw.get("shards", 1))
    except (TypeError, ValueError):
        raise DomainError(
            "serving config: [cluster] shards must be an integer"
        ) from None
    _require(shards >= 1, f"[cluster] shards must be >= 1, got {shards}")
    coordinator = raw.get("coordinator")
    if coordinator is not None:
        _require(
            isinstance(coordinator, str) and ":" in coordinator,
            "[cluster] coordinator must be a 'host:port' string",
        )
        _parse_port(coordinator.rpartition(":")[2], "[cluster] coordinator port")
    shard_index = raw.get("shard_index")
    if shard_index is not None:
        try:
            shard_index = int(shard_index)
        except (TypeError, ValueError):
            raise DomainError(
                "serving config: [cluster] shard_index must be an integer"
            ) from None
        _require(
            0 <= shard_index < shards,
            f"[cluster] shard_index must be in [0, {shards}), got {shard_index}",
        )
    return ClusterConfig(
        shards=shards,
        coordinator=coordinator,
        coordinator_port=_parse_port(
            raw.get("coordinator_port", 0), "[cluster] coordinator_port"
        ),
        router_port=_parse_port(raw.get("router_port", 0), "[cluster] router_port"),
        shard_base_port=_parse_port(
            raw.get("shard_base_port", 0), "[cluster] shard_base_port"
        ),
        shard_index=shard_index,
    )


def parse_serving_config(
    document: Mapping[str, Any],
    *,
    base_dir: Optional[Path] = None,
    source_path: Optional[Path] = None,
) -> ServingConfig:
    """Validate a decoded config document into a :class:`ServingConfig`."""
    _require(isinstance(document, Mapping), "top level must be a table/object")
    unknown = set(document) - {
        "service", "groups", "datasets", "admin", "limits", "observability",
        "cluster",
    }
    _require(not unknown, f"unknown top-level keys: {sorted(unknown)}")

    service_raw = document.get("service", {})
    _require(isinstance(service_raw, Mapping), "[service] must be a table")
    unknown = set(service_raw) - {
        "seed", "workers", "cache_size", "host", "port", "frontend",
        "max_body", "allow_register", "quiet",
    }
    _require(not unknown, f"[service] has unknown keys: {sorted(unknown)}")
    frontend = str(service_raw.get("frontend", "threaded"))
    _require(
        frontend in _FRONTENDS,
        f"[service] frontend must be one of {list(_FRONTENDS)}, got {frontend!r}",
    )
    workers = int(service_raw.get("workers", 1))
    _require(workers >= 1, f"[service] workers must be >= 1, got {workers}")
    cache_size = service_raw.get("cache_size")
    if cache_size is not None:
        cache_size = int(cache_size)
        _require(cache_size >= 0, f"[service] cache_size must be >= 0, got {cache_size}")
    seed = service_raw.get("seed")
    port = int(service_raw.get("port", 8080))
    _require(0 <= port <= 65535, f"[service] port must be in [0, 65535], got {port}")
    max_body = service_raw.get("max_body", DEFAULT_MAX_BODY)
    if max_body is not None:
        max_body = int(max_body)
        _require(max_body > 0, f"[service] max_body must be > 0, got {max_body}")

    groups_raw = document.get("groups", {})
    _require(isinstance(groups_raw, Mapping), "[groups] must be a table of tables")
    groups: List[GroupConfig] = []
    for name, raw in groups_raw.items():
        where = f"groups.{name}"
        _require(isinstance(raw, Mapping), f"[{where}] must be a table")
        unknown = set(raw) - {"budget", "analyst_budgets"}
        _require(not unknown, f"[{where}] has unknown keys: {sorted(unknown)}")
        _require("budget" in raw, f"[{where}] needs a budget")
        try:
            budget = float(raw["budget"])
        except (TypeError, ValueError):
            raise DomainError(
                f"serving config: [{where}] budget must be a number"
            ) from None
        groups.append(
            GroupConfig(
                name=str(name),
                budget=budget,
                analyst_budgets=_parse_analyst_budgets(
                    raw.get("analyst_budgets"), where
                ),
            )
        )

    datasets_raw = document.get("datasets", [])
    _require(
        isinstance(datasets_raw, (list, tuple)) and datasets_raw,
        "config needs at least one [[datasets]] entry",
    )
    datasets = [_parse_dataset(raw, index) for index, raw in enumerate(datasets_raw)]
    names = [dataset.name for dataset in datasets]
    _require(
        len(set(names)) == len(names),
        f"duplicate dataset names: {sorted(n for n in names if names.count(n) > 1)}",
    )
    group_names = {group.name for group in groups}
    for dataset in datasets:
        _require(
            dataset.group is None or dataset.group in group_names,
            f"dataset {dataset.name!r} references unknown group {dataset.group!r} "
            f"(known: {sorted(group_names) or 'none'})",
        )

    return ServingConfig(
        datasets=tuple(datasets),
        groups=tuple(groups),
        seed=None if seed is None else int(seed),
        workers=workers,
        cache_size=cache_size,
        host=str(service_raw.get("host", "127.0.0.1")),
        port=port,
        frontend=frontend,
        max_body=max_body,
        allow_register=bool(service_raw.get("allow_register", False)),
        quiet=bool(service_raw.get("quiet", False)),
        admin=_parse_admin(document.get("admin")),
        limits=_parse_limits(document.get("limits")),
        observability=_parse_observability(document.get("observability")),
        cluster=_parse_cluster(document.get("cluster")),
        base_dir=base_dir,
        source_path=source_path,
    )


def load_serving_document(path: Any) -> Dict[str, Any]:
    """Read a ``.toml`` or ``.json`` config file into its raw document.

    No validation beyond decoding — :func:`load_serving_config` is the
    validating loader.  ``repro compose`` uses the raw document as the
    template it derives per-shard configs from (:func:`shard_document`).
    """
    path = Path(path)
    if not path.exists():
        raise DomainError(f"serving config not found: {path}")
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DomainError(f"serving config {path} is not valid JSON: {exc}") from exc
    elif suffix == ".toml":
        if _tomllib is not None:
            try:
                document = _tomllib.loads(text)
            except _tomllib.TOMLDecodeError as exc:
                raise DomainError(
                    f"serving config {path} is not valid TOML: {exc}"
                ) from exc
        else:  # pragma: no cover - Python 3.10 fallback
            document = _parse_toml_subset(text, str(path))
    else:
        raise DomainError(
            f"serving config must be a .toml or .json file, got {path.name!r}"
        )
    if not isinstance(document, dict):
        raise DomainError(f"serving config {path}: top level must be a table/object")
    return document


def load_serving_config(path: Any) -> ServingConfig:
    """Read and validate a ``.toml`` or ``.json`` serving config file."""
    path = Path(path)
    document = load_serving_document(path)
    return parse_serving_config(document, base_dir=path.parent, source_path=path)


def shard_document(
    document: Mapping[str, Any],
    *,
    shard_index: int,
    shard_port: int,
    coordinator: str,
    base_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Derive one shard replica's serving document from a cluster template.

    Pure data transformation (``repro compose --generate`` writes the result
    as JSON): the shard keeps the template's datasets, groups, limits and —
    crucially — its ``seed``, so every replica derives identical per-query
    randomness and the tier answers bit-for-bit like a single process.  What
    changes per shard:

    * ``service.port`` → this shard's allocated port;
    * ``cluster.shard_index`` / ``cluster.coordinator`` → identity and the
      budget-coordinator endpoint (which switches joint groups to
      :class:`~repro.service.registry.RemoteBudgetManager` at boot);
    * ``observability.audit_log`` → a per-shard file (``audit.jsonl`` →
      ``audit.shard0.jsonl``): each hash chain has exactly one writer;
    * relative dataset ``source`` paths → absolute (the generated file lives
      in the compose directory, not next to the template).

    Requires an explicit ``service.seed``: without one each process would
    seed from entropy and answers would diverge across replicas.
    """
    import copy

    shard = copy.deepcopy(dict(document))
    service_raw = dict(shard.get("service", {}))
    if service_raw.get("seed") is None:
        raise DomainError(
            "serving config: a [cluster] deployment needs an explicit "
            "[service] seed= — replicas must share one seed to answer "
            "identically"
        )
    service_raw["port"] = int(shard_port)
    shard["service"] = service_raw
    cluster_raw = dict(shard.get("cluster", {}))
    cluster_raw["shard_index"] = int(shard_index)
    cluster_raw["coordinator"] = str(coordinator)
    shard["cluster"] = cluster_raw
    obs_raw = shard.get("observability")
    if isinstance(obs_raw, Mapping) and obs_raw.get("audit_log"):
        obs_raw = dict(obs_raw)
        audit = Path(str(obs_raw["audit_log"]))
        obs_raw["audit_log"] = str(
            audit.with_suffix(f".shard{shard_index}{audit.suffix}")
        )
        shard["observability"] = obs_raw
    if base_dir is not None:
        datasets_raw = shard.get("datasets")
        if isinstance(datasets_raw, list):
            for entry in datasets_raw:
                if isinstance(entry, dict) and entry.get("source"):
                    source = Path(str(entry["source"]))
                    if not source.is_absolute():
                        entry["source"] = str((Path(base_dir) / source).resolve())
    return shard


# ---------------------------------------------------------------------------
# building the service


@dataclass
class BuiltService:
    """A booted service plus the resources :func:`build_service` created.

    ``close()`` releases the registry's shared segments and — only when the
    pool was created here rather than passed in — the engine pool.

    ``limiter`` is the QoS rate limiter (always present; a no-op when the
    config has no ``[limits]``) and ``admin`` the live control plane
    (:class:`~repro.service.admin.AdminController`); the front-ends take
    both so every deployment path shares one wiring.  ``tracer`` and
    ``audit`` mirror ``service.tracer`` / ``service.audit`` (both ``None``
    without an ``[observability]`` section); the audit log is closed here.
    """

    service: QueryService
    config: ServingConfig
    pool: Any = None
    owns_pool: bool = False
    limiter: Optional[RateLimiter] = None
    admin: Any = None
    tracer: Any = None
    audit: Any = None
    coordinator: Any = None  # CoordinatorClient when [cluster] names one
    _closed: bool = field(default=False, repr=False)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.service.registry.close()
        if self.audit is not None:
            self.audit.close()
        if self.coordinator is not None:
            self.coordinator.close()
        if self.owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "BuiltService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _load_dataset_values(dataset: DatasetConfig, base_dir: Optional[Path]) -> np.ndarray:
    """Materialise one dataset's records from its configured source."""
    if dataset.values is not None:
        return np.asarray(dataset.values, dtype=float)
    assert dataset.source is not None  # parse_serving_config guarantees one of the two
    source = Path(dataset.source)
    if not source.is_absolute() and base_dir is not None:
        source = base_dir / source
    if not source.exists():
        raise DomainError(
            f"dataset {dataset.name!r}: source file not found: {source}"
        )
    # A column= marks the source as CSV-shaped whatever its suffix (the
    # legacy CLI accepts extensionless delimited files); config files are
    # stricter and only pair column= with .csv sources at parse time.
    if dataset.column is not None or source.suffix.lower() == ".csv":
        if dataset.column is None:
            raise DomainError(
                f"dataset {dataset.name!r}: a CSV source needs column="
            )
        from repro.cli import load_column

        return load_column(source, dataset.column)
    if source.suffix.lower() == ".npy":
        try:
            return np.asarray(np.load(source, allow_pickle=False), dtype=float)
        except ValueError as exc:
            raise DomainError(
                f"dataset {dataset.name!r}: cannot load {source}: {exc}"
            ) from exc
    raise DomainError(
        f"dataset {dataset.name!r}: source must be .csv or .npy, got {source.name!r}"
    )


def build_service(config: ServingConfig, *, pool: Any = None) -> BuiltService:
    """Boot a :class:`QueryService` (datasets, groups, cache, pool) from config.

    Pass an open :class:`~repro.engine.EnginePool` to share one across
    services; otherwise a pool is created when ``config.workers > 1`` and
    owned (closed) by the returned :class:`BuiltService`.
    """
    owns_pool = False
    if pool is None and config.workers > 1:
        from repro.engine import EnginePool

        pool = EnginePool(config.workers)
        owns_pool = True
    service = None
    tracer = None
    audit = None
    coordinator = None
    try:
        if config.observability is not None:
            from repro.obs import AuditLog, TraceRecorder

            obs = config.observability
            if obs.trace_ring > 0:
                tracer = TraceRecorder(
                    obs.trace_ring, slow_query_ms=obs.slow_query_ms
                )
            if obs.audit_log is not None:
                audit_path = Path(obs.audit_log)
                if not audit_path.is_absolute() and config.base_dir is not None:
                    audit_path = config.base_dir / audit_path
                audit = AuditLog(audit_path)
        service = QueryService(
            pool=pool,
            seed=config.seed,
            cache=AnswerCache(maxsize=config.cache_size),
            tracer=tracer,
            audit=audit,
        )
        if (
            config.cluster is not None
            and config.cluster.coordinator is not None
            and config.groups
        ):
            # A shard of a cluster: joint budget groups live in the budget
            # coordinator, so every group gets a RemoteBudgetManager proxy
            # instead of a shard-local ledger.  The proxy's constructor
            # issues the idempotent "create" RPC, which also verifies every
            # replica boots the group with the same cap.
            from repro.cluster.rpc import CoordinatorClient
            from repro.service.registry import RemoteBudgetManager

            host, _, port = config.cluster.coordinator.rpartition(":")
            coordinator = CoordinatorClient(host or "127.0.0.1", int(port))
            for group in config.groups:
                manager = RemoteBudgetManager(
                    f"group:{group.name}",
                    coordinator,
                    capacity=group.budget,
                    analyst_budgets=group.analyst_budgets,
                )
                service.registry.create_group(group.name, group.budget, manager=manager)
        else:
            for group in config.groups:
                service.registry.create_group(
                    group.name, group.budget, analyst_budgets=group.analyst_budgets
                )
        for dataset in config.datasets:
            values = _load_dataset_values(dataset, config.base_dir)
            share = dataset.share
            if share is None:
                share = pool is not None and pool.parallel
            service.register(
                dataset.name,
                values,
                dataset.budget,
                group=dataset.group,
                analyst_budgets=dataset.analyst_budgets,
                share=share,
                kinds=dataset.kinds,
            )
        limiter = RateLimiter(config.limits)
        # Imported here: repro.service.admin needs this module's parser and
        # loaders, so the dependency must stay one-way at import time.
        from repro.service.admin import AdminController

        admin = AdminController(
            service, config=config, limiter=limiter, pool=pool
        )
    except BaseException:
        # Release whatever was already built: shared-memory segments of
        # datasets registered before the failure, the audit log handle, and
        # the pool if owned.
        if service is not None:
            service.registry.close()
        if audit is not None:
            audit.close()
        if coordinator is not None:
            coordinator.close()
        if owns_pool:
            pool.close()
        raise
    return BuiltService(
        service=service,
        config=config,
        pool=pool,
        owns_pool=owns_pool,
        limiter=limiter,
        admin=admin,
        tracer=tracer,
        audit=audit,
        coordinator=coordinator,
    )


# ---------------------------------------------------------------------------
# minimal TOML-subset parser (Python 3.10, where tomllib is unavailable)


def _parse_toml_value(text: str, where: str) -> Any:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(item, where) for item in inner.split(",")]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise DomainError(f"serving config {where}: cannot parse value {text!r}") from None


def _strip_toml_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"' and (index == 0 or line[index - 1] != "\\"):
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_toml_subset(text: str, where: str) -> Dict[str, Any]:
    """Parse the documented config grammar (used only when tomllib is absent).

    Supports ``[table.path]``, ``[[array.of.tables]]`` and
    ``key = string | number | boolean | single-line array`` with ``#``
    comments — exactly the shapes the module docstring documents.
    """
    root: Dict[str, Any] = {}
    current: Dict[str, Any] = root

    def descend(path: List[str], *, as_array: bool) -> Dict[str, Any]:
        node: Any = root
        for part in path[:-1]:
            node = node.setdefault(part, {})
            if isinstance(node, list):  # sub-table of the last array element
                node = node[-1]
        leaf = path[-1]
        if as_array:
            entries = node.setdefault(leaf, [])
            if not isinstance(entries, list):
                raise DomainError(f"serving config {where}: {leaf!r} is not an array")
            entries.append({})
            return entries[-1]
        target = node.setdefault(leaf, {})
        if isinstance(target, list):
            target = target[-1]
        return target

    for number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            current = descend(line[2:-2].strip().split("."), as_array=True)
        elif line.startswith("[") and line.endswith("]"):
            current = descend(line[1:-1].strip().split("."), as_array=False)
        elif "=" in line:
            key, _, value = line.partition("=")
            current[key.strip()] = _parse_toml_value(value, f"{where}:{number}")
        else:
            raise DomainError(f"serving config {where}:{number}: unparseable line {line!r}")
    return root
