"""Live control plane: hot-reload the serving config through a declarative diff.

The serving config (:mod:`repro.service.config`) is a *declaration* of the
deployment; this module makes a running server converge on a new declaration
without a restart, following the classic config-daemon shape: **parse →
validate → diff → apply**.

:func:`diff_serving_configs` compares the booted config against a candidate
and produces an explicit list of :class:`ConfigChange` records — add a
group, add a dataset, remove a *drained* dataset, update a ``kinds=``
allowlist, rotate per-analyst budgets, resize the answer cache, swap the
``[limits]`` QoS table, rotate the admin token.  Anything the running
process cannot honour live (seed, workers, front-end flavour, a dataset's
source or budget, ...) raises :class:`ReloadRejected` **before anything is
applied** — a reload is atomic: all of its changes or none.  Reloading an
unchanged config diffs to the empty list and the apply loop never runs: a
provable no-op.

:class:`AdminController` wraps the diff in the authenticated ``/admin`` HTTP
surface both front-ends mount:

* ``GET  /admin/state`` — control-plane view: reload count, drain flags,
  QoS counters, plus the service stats document.
* ``POST /admin/reload`` — re-read the booted config file (empty body) or
  apply an inline document (``{"config": {...}}``).
* ``POST /admin/drain`` — flip a dataset's drain flag
  (``{"dataset": ..., "draining": true|false}``): stop admitting fresh
  releases while cached answers keep being served, the precondition the
  differ demands before a dataset may be removed.

Auth is a shared secret (``[admin] token=`` or the ``REPRO_ADMIN_TOKEN``
environment variable) compared with :func:`hmac.compare_digest`; with no
token configured the surface answers 403 ``admin_disabled``.
"""

from __future__ import annotations

import dataclasses
import hmac
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Collection, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DomainError, ReproError
from repro.service import wire
from repro.service.config import (
    ADMIN_TOKEN_ENV,
    ServingConfig,
    _load_dataset_values,
    load_serving_config,
    parse_serving_config,
)
from repro.service.executor import QueryService
from repro.service.registry import UnknownDatasetError

__all__ = [
    "AdminController",
    "ConfigChange",
    "ReloadRejected",
    "diff_serving_configs",
]

#: ``[service]`` fields baked into the running process at boot; a reload
#: changing any of them is rejected whole.
_RESTART_FIELDS = (
    "seed", "workers", "frontend", "host", "port",
    "max_body", "allow_register", "quiet",
)

#: Per-dataset fields that cannot change live (the data itself and its
#: budget identity); drain and re-add the dataset instead.
_FROZEN_DATASET_FIELDS = ("source", "column", "values", "budget", "group", "share")


@dataclass(frozen=True)
class ConfigChange:
    """One applied (or to-be-applied) control-plane mutation."""

    action: str
    target: Optional[str] = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "target": self.target,
            "detail": dict(self.detail),
        }


class ReloadRejected(DomainError):
    """The candidate config asks for changes a live process cannot honour.

    ``problems`` lists every offending change (not just the first), so one
    round-trip tells the operator everything to fix.
    """

    def __init__(self, problems: Sequence[str]):
        self.problems = list(problems)
        super().__init__(
            "config reload rejected: " + "; ".join(self.problems)
        )


def _diff_datasets(
    old: ServingConfig,
    new: ServingConfig,
    draining: Collection[str],
    changes: List[ConfigChange],
    problems: List[str],
) -> None:
    old_by_name = {dataset.name: dataset for dataset in old.datasets}
    new_by_name = {dataset.name: dataset for dataset in new.datasets}
    for name in new_by_name:
        if name not in old_by_name:
            cfg = new_by_name[name]
            changes.append(
                ConfigChange(
                    "add_dataset", name,
                    {"budget": cfg.budget, "group": cfg.group},
                )
            )
    for name in old_by_name:
        if name not in new_by_name:
            if name in draining:
                changes.append(ConfigChange("remove_dataset", name))
            else:
                problems.append(
                    f"dataset {name!r} was removed from the config but is not "
                    "draining; POST /admin/drain it first"
                )
    for name, old_cfg in old_by_name.items():
        new_cfg = new_by_name.get(name)
        if new_cfg is None:
            continue
        for frozen in _FROZEN_DATASET_FIELDS:
            if getattr(old_cfg, frozen) != getattr(new_cfg, frozen):
                problems.append(
                    f"dataset {name!r}: changing {frozen}= requires a restart "
                    "(or drain, remove and re-add the dataset)"
                )
        if old_cfg.kinds != new_cfg.kinds:
            changes.append(
                ConfigChange(
                    "update_kinds", name,
                    {
                        "kinds": None if new_cfg.kinds is None
                        else list(new_cfg.kinds)
                    },
                )
            )
        if (old_cfg.analyst_budgets or {}) != (new_cfg.analyst_budgets or {}):
            changes.append(
                ConfigChange(
                    "rotate_analyst_budgets", name,
                    {"analysts": sorted(new_cfg.analyst_budgets or {})},
                )
            )


def _diff_groups(
    old: ServingConfig,
    new: ServingConfig,
    changes: List[ConfigChange],
    problems: List[str],
) -> None:
    old_by_name = {group.name: group for group in old.groups}
    new_by_name = {group.name: group for group in new.groups}
    for name, cfg in new_by_name.items():
        if name not in old_by_name:
            changes.append(
                ConfigChange("add_group", name, {"budget": cfg.budget})
            )
    for name in old_by_name:
        if name not in new_by_name:
            problems.append(f"removing budget group {name!r} requires a restart")
    for name, old_cfg in old_by_name.items():
        new_cfg = new_by_name.get(name)
        if new_cfg is None:
            continue
        if old_cfg.budget != new_cfg.budget:
            problems.append(
                f"group {name!r}: changing the joint budget requires a restart"
            )
        if (old_cfg.analyst_budgets or {}) != (new_cfg.analyst_budgets or {}):
            changes.append(
                ConfigChange(
                    "rotate_group_analyst_budgets", name,
                    {"analysts": sorted(new_cfg.analyst_budgets or {})},
                )
            )


def diff_serving_configs(
    old: ServingConfig,
    new: ServingConfig,
    *,
    draining: Collection[str] = (),
) -> List[ConfigChange]:
    """The declarative diff: the changes taking a live ``old`` server to ``new``.

    Returns the (possibly empty) change list, ordered so applying front to
    back is always valid (groups before the datasets that join them).
    Raises :class:`ReloadRejected` — listing *every* problem — when the
    candidate differs in ways a running process cannot honour; ``draining``
    names the datasets currently drained and therefore eligible for removal.
    """
    changes: List[ConfigChange] = []
    problems: List[str] = []
    for field_name in _RESTART_FIELDS:
        if getattr(old, field_name) != getattr(new, field_name):
            problems.append(
                f"[service] {field_name} changed "
                f"({getattr(old, field_name)!r} -> {getattr(new, field_name)!r}); "
                "this requires a restart"
            )
    _diff_groups(old, new, changes, problems)
    _diff_datasets(old, new, draining, changes, problems)
    if old.cache_size != new.cache_size:
        changes.append(
            ConfigChange(
                "resize_cache", None,
                {"from": old.cache_size, "to": new.cache_size},
            )
        )
    if old.limits != new.limits:
        changes.append(ConfigChange("update_limits"))
    if old.admin != new.admin:
        # The token itself must never appear in a response document.
        changes.append(ConfigChange("rotate_admin_token"))
    if old.observability != new.observability:
        old_obs, new_obs = old.observability, new.observability
        old_audit = None if old_obs is None else old_obs.audit_log
        new_audit = None if new_obs is None else new_obs.audit_log
        if old_audit != new_audit:
            # The hash chain is bound to its file; silently re-pointing it
            # mid-flight would fork the verifiable history.
            problems.append(
                "[observability] audit_log changed "
                f"({old_audit!r} -> {new_audit!r}); the audit chain is bound "
                "to its file — changing the path requires a restart"
            )
        else:
            changes.append(
                ConfigChange(
                    "update_observability", None,
                    {
                        "trace_ring": 0 if new_obs is None else new_obs.trace_ring,
                        "slow_query_ms": (
                            None if new_obs is None else new_obs.slow_query_ms
                        ),
                    },
                )
            )
    if problems:
        raise ReloadRejected(problems)
    return changes


def _resolve_token(
    config: ServingConfig, explicit: Optional[str] = None
) -> Optional[str]:
    """The effective admin secret: explicit > config token > environment."""
    if explicit:
        return explicit
    admin = config.admin
    if admin is not None and admin.token:
        return admin.token
    env_name = admin.token_env if admin is not None else ADMIN_TOKEN_ENV
    return os.environ.get(env_name) or None


class AdminController:
    """The authenticated control plane one service exposes on ``/admin``.

    Front-ends hold a controller and forward every ``/admin/*`` request to
    :meth:`handle`, which owns auth, routing, and the error mapping — so the
    two protocol suites cannot diverge on control-plane behaviour.  Mutating
    operations serialise under one lock; a reload validates everything
    (including materialising new dataset sources) before applying anything.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        config: ServingConfig,
        limiter: Optional[Any] = None,
        pool: Optional[Any] = None,
        token: Optional[str] = None,
        config_path: Optional[Any] = None,
    ):
        self._service = service
        self._limiter = limiter
        self._pool = pool
        self._lock = threading.Lock()
        self._config = config
        path = config_path if config_path is not None else config.source_path
        self._config_path = None if path is None else Path(path)
        self._token = _resolve_token(config, token)
        self._reloads = 0
        self._applied = 0

    @property
    def enabled(self) -> bool:
        """Whether a shared secret is configured (else /admin answers 403)."""
        with self._lock:
            return self._token is not None

    def authorize(self, token: Optional[str]) -> bool:
        """Constant-time comparison of the presented token with the secret."""
        with self._lock:
            secret = self._token
        if secret is None or token is None:
            return False
        return hmac.compare_digest(
            token.encode("utf-8"), secret.encode("utf-8")
        )

    # -- HTTP entry point ----------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        payload: Any,
        token: Optional[str],
    ) -> Tuple[int, Dict[str, Any]]:
        """Answer one ``/admin/*`` request: ``(HTTP status, document)``.

        Never raises for domain-level problems — refusals and rejections are
        structured documents, keeping both front-ends' no-traceback contract.
        """
        if not self.enabled:
            return 403, wire.admin_disabled()
        if not self.authorize(token):
            return 401, wire.error_document(
                "unauthorized",
                "missing or invalid admin token (send Authorization: Bearer "
                "<token> or X-Admin-Token: <token>)",
            )
        try:
            if method == "GET" and path == "/admin/state":
                return 200, self.state()
            if method == "POST" and path == "/admin/reload":
                return 200, self.reload(payload)
            if method == "POST" and path == "/admin/drain":
                return self._handle_drain(payload)
        except ReloadRejected as exc:
            return 409, wire.error_document(
                "reload_rejected",
                str(exc),
                detail={"problems": exc.problems},
            )
        except UnknownDatasetError as exc:
            return 404, wire.error_document("unknown_dataset", str(exc))
        except ReproError as exc:
            return 400, wire.error_document("invalid_request", str(exc))
        return 404, wire.unknown_path(method, path)

    # -- operations ----------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The control-plane view: reload counters, drains, QoS, service stats."""
        with self._lock:
            reloads = self._reloads
            applied = self._applied
            config_path = self._config_path
        doc: Dict[str, Any] = {
            "api": wire.API_VERSION,
            "status": "ok",
            "admin": {
                "enabled": True,
                "reloads": reloads,
                "changes_applied": applied,
                "config_path": None if config_path is None else str(config_path),
                "draining": sorted(self._draining_names()),
            },
            "stats": self._service.stats(),
        }
        if self._limiter is not None:
            doc["limits"] = self._limiter.stats()
        return doc

    def reload(self, payload: Any = None) -> Dict[str, Any]:
        """Converge the live service on a new config document, atomically.

        Empty payload → re-read the file the server booted from; a
        ``{"config": {...}}`` payload applies an inline document (resolved
        against the booted config's directory).  Returns the applied change
        list; an unchanged config reports ``applied: []`` without touching
        any service state.
        """
        with self._lock:
            new = self._parse_candidate(payload)
            changes = diff_serving_configs(
                self._config, new, draining=self._draining_names()
            )
            if changes:
                self._apply(new, changes)
                # The booted path keeps anchoring file reloads, whatever the
                # candidate's provenance.
                self._config = dataclasses.replace(
                    new, source_path=self._config_path
                )
                self._applied += len(changes)
            self._reloads += 1
            self._audit(
                "admin_reload",
                applied=[change.action for change in changes],
                unchanged=not changes,
                source=(
                    "inline"
                    if isinstance(payload, Mapping) and "config" in payload
                    else "file"
                ),
            )
            return {
                "api": wire.API_VERSION,
                "status": "ok",
                "applied": [change.to_json() for change in changes],
                "unchanged": not changes,
                "reloads": self._reloads,
            }

    def drain(self, name: str, draining: bool = True) -> Dict[str, Any]:
        """Flip one dataset's drain flag; returns its fresh snapshot."""
        dataset = self._service.registry.set_draining(name, draining)
        self._audit("drain", dataset=name, draining=draining)
        return {
            "api": wire.API_VERSION,
            "status": "ok",
            "dataset": dataset.to_json(),
        }

    # -- internals -----------------------------------------------------------
    def _audit(self, event: str, **fields: Any) -> None:
        """Record a control-plane event on the service audit trail, if any."""
        audit = self._service.audit
        if audit is not None:
            audit.record(event, **fields)

    def _handle_drain(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(payload, Mapping) or "dataset" not in payload:
            return 400, wire.error_document(
                "invalid_request",
                'drain body must be {"dataset": <name>, "draining": true|false}',
            )
        draining = payload.get("draining", True)
        if not isinstance(draining, bool):
            return 400, wire.error_document(
                "invalid_request", "draining must be a boolean"
            )
        return 200, self.drain(str(payload["dataset"]), draining)

    def _draining_names(self) -> List[str]:
        return [
            dataset.name for dataset in self._service.registry if dataset.draining
        ]

    def _parse_candidate(self, payload: Any) -> ServingConfig:
        """The candidate config from a reload payload. Caller must hold ``self._lock``."""
        if isinstance(payload, Mapping) and "config" in payload:
            document = payload["config"]
            if not isinstance(document, Mapping):
                raise DomainError(
                    'reload "config" must be a config document object'
                )
            return parse_serving_config(
                document, base_dir=self._config.base_dir
            )
        if payload not in (None, {}, ""):
            raise DomainError(
                'reload body must be empty (re-read the booted config file) '
                'or {"config": {...}}'
            )
        if self._config_path is None:
            raise DomainError(
                "this server was not booted from a config file; "
                'POST {"config": {...}} instead'
            )
        return load_serving_config(self._config_path)

    def _apply(self, new: ServingConfig, changes: List[ConfigChange]) -> None:
        """Apply a validated change list. Caller must hold ``self._lock``.

        Dataset sources are materialised *before* any mutation, so a missing
        or malformed source file rejects the whole reload with the live
        service untouched.
        """
        new_datasets = {dataset.name: dataset for dataset in new.datasets}
        new_groups = {group.name: group for group in new.groups}
        loaded: Dict[str, Any] = {}
        for change in changes:
            if change.action == "add_dataset":
                cfg = new_datasets[change.target]
                loaded[change.target] = _load_dataset_values(cfg, new.base_dir)
        registry = self._service.registry
        for change in changes:
            action = change.action
            if action == "add_group":
                cfg = new_groups[change.target]
                registry.create_group(
                    cfg.name, cfg.budget, analyst_budgets=cfg.analyst_budgets
                )
            elif action == "add_dataset":
                cfg = new_datasets[change.target]
                share = cfg.share
                if share is None:
                    share = self._pool is not None and self._pool.parallel
                self._service.register(
                    cfg.name,
                    loaded[change.target],
                    cfg.budget,
                    group=cfg.group,
                    analyst_budgets=cfg.analyst_budgets,
                    share=share,
                    kinds=cfg.kinds,
                )
                self._audit(
                    "dataset_add",
                    dataset=cfg.name,
                    epsilon=cfg.budget,
                    group=cfg.group,
                )
            elif action == "remove_dataset":
                registry.unregister(change.target)
                self._audit("dataset_remove", dataset=change.target)
            elif action == "update_kinds":
                registry.update_kinds(
                    change.target, new_datasets[change.target].kinds
                )
            elif action == "rotate_analyst_budgets":
                registry.get(change.target).budget.rotate_analyst_budgets(
                    new_datasets[change.target].analyst_budgets
                )
            elif action == "rotate_group_analyst_budgets":
                registry.group(change.target).rotate_analyst_budgets(
                    new_groups[change.target].analyst_budgets
                )
            elif action == "resize_cache":
                self._service.cache.resize(new.cache_size)
            elif action == "update_limits":
                if self._limiter is not None:
                    self._limiter.configure(new.limits)
            elif action == "rotate_admin_token":
                self._token = _resolve_token(new)
            elif action == "update_observability":
                self._apply_observability(new.observability)
            else:  # pragma: no cover - the differ only emits the above
                raise DomainError(f"unknown config change action {action!r}")

    def _apply_observability(self, obs: Optional[Any]) -> None:
        """Hot-swap the trace ring / slow-query threshold on the live service.

        Tracing is purely additive state, so it may be enabled, resized, or
        switched off live; only the audit log path is restart-bound (the
        differ rejects that before this runs).
        """
        ring = 0 if obs is None else obs.trace_ring
        slow = None if obs is None else obs.slow_query_ms
        if ring <= 0:
            self._service.tracer = None
            return
        tracer = self._service.tracer
        if tracer is None:
            from repro.obs import TraceRecorder

            self._service.tracer = TraceRecorder(ring, slow_query_ms=slow)
        elif slow is None:
            tracer.configure(ring=ring, slow_query_enabled=False)
        else:
            tracer.configure(ring=ring, slow_query_ms=slow)
