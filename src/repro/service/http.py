"""Thin HTTP front-end for :class:`~repro.service.QueryService`.

Pure stdlib (:mod:`http.server`), JSON in / JSON out.  The threading server
leans on the service's own locks: budget admission is atomic, identical
concurrent queries coalesce, and every answer is a structured JSON object —
a refusal is a *response*, never an exception escaping into the log.

Protocol
--------
``GET /health``
    ``{"status": "ok", "datasets": [...names...]}`` — liveness probe.
``GET /datasets``
    Per-dataset budget snapshots (including each dataset's ``kinds``
    allowlist) plus cache counters (the :meth:`QueryService.stats` document).
``GET /kinds``
    The estimator-spec registry catalogue: every servable kind with its
    typed parameter schema, reservation factor, minimum record count and
    result shape — the authoritative list a client should consult before
    querying.  An unknown ``kind`` in a query is answered with a structured
    400 whose body carries the same list (``error = "unknown_kind"``).
``POST /query``
    Body: a query object —
    ``{"dataset": ..., "kind": ..., "epsilon": ..., "beta": ...,``
    ``"levels": [...], "analyst": ...}`` — or ``{"queries": [...]}`` with a
    list of such objects, which is answered as one batch through the
    service's engine-pool fan-out.  Response: the
    :meth:`~repro.service.QueryAnswer.to_json` document (or
    ``{"answers": [...]}``).  HTTP status mirrors the outcome: 200 for
    ``ok``/``failed`` (a failed propose-test-release is a valid, budgeted
    DP outcome), 403 for budget refusals, 404 for unknown datasets, 400 for
    malformed requests.  Batch responses are always 200; inspect each
    answer's ``status``.
``POST /datasets``
    Registration (only when the server was built with
    ``allow_register=True``): ``{"name": ..., "values": [...],``
    ``"budget": ..., "analyst_budgets": {...}}`` → 201.

Hardening: a missing, non-integer or negative ``Content-Length`` is a clean
400; a declared body beyond ``max_body`` bytes is answered 413 without
reading it; a client that disconnects mid-request or mid-response is
swallowed silently and counted in the ``frontend`` section of
``GET /datasets`` — a refusal is a response and a disconnect is a counter,
never a traceback in the server log.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.estimators import kind_catalog
from repro.exceptions import ReproError
from repro.service.executor import QueryAnswer, QueryRequest, QueryService
from repro.service.queries import InvalidQueryError, Query, UnknownQueryKindError

__all__ = ["DEFAULT_MAX_BODY", "ServiceServer", "make_server", "serve_forever"]

#: answer.status -> HTTP status code for single-query responses.
_STATUS_CODES = {"ok": 200, "failed": 200, "refused": 403}
_ERROR_CODES = {"unknown_dataset": 404}

#: Default cap on request body size; oversized posts are answered with 413
#: instead of being read unbounded into memory.
DEFAULT_MAX_BODY = 1 << 20

#: A peer that went away mid-request or mid-response.  Never an error worth a
#: log line, let alone a traceback: the connection is simply over.
_DISCONNECT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    TimeoutError,
)


class _ClientDisconnect(Exception):
    """The client hung up before the request could be answered."""


class _PayloadTooLarge(Exception):
    """The declared request body exceeds the server's size cap."""

    def __init__(self, length: int):
        super().__init__(str(length))
        self.length = length


def _answer_status_code(answer: QueryAnswer) -> int:
    if answer.status in _STATUS_CODES:
        return _STATUS_CODES[answer.status]
    return _ERROR_CODES.get(answer.error or "", 400)


def _invalid_request_document(exc: ReproError) -> Dict[str, Any]:
    """The 400 body for a rejected request (shared by both front-ends).

    An unknown query kind carries the authoritative registered-kind list
    straight from the registry — never a hardcoded copy that can drift from
    what the server actually serves.
    """
    doc: Dict[str, Any] = {
        "status": "error",
        "error": "invalid_request",
        "message": str(exc),
    }
    if isinstance(exc, UnknownQueryKindError):
        doc["error"] = "unknown_kind"
        doc["kinds"] = list(exc.kinds)
    return doc


def _kinds_document(service: QueryService) -> Dict[str, Any]:
    """The ``GET /kinds`` body: the registry catalogue plus dataset allowlists."""
    return {
        "status": "ok",
        "kinds": kind_catalog(),
        "datasets": {
            dataset.name: (None if dataset.kinds is None else sorted(dataset.kinds))
            for dataset in service.registry
        },
    }


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the service instance hangs off the server object."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                # Announce the teardown (set by the bad-framing paths before
                # responding) so keep-alive clients don't pipeline into a FIN.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECT_ERRORS:
            # The client went away mid-response.  Writing anything more
            # (including a 500) to the dead socket would only raise again and
            # leak a traceback into the log; swallow, count, hang up.
            self.server.count_disconnect()
            self.close_connection = True

    def _read_json(self) -> Any:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except (TypeError, ValueError):
            # Unknown framing: the body (if any) stays unread, so keep-alive
            # cannot continue on this connection.
            self.close_connection = True
            raise InvalidQueryError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length < 0:
            self.close_connection = True
            raise InvalidQueryError(f"Content-Length must be >= 0, got {length}")
        max_body = self.server.max_body
        if max_body is not None and length > max_body:
            raise _PayloadTooLarge(length)
        try:
            raw = self.rfile.read(length) if length else b""
        except _DISCONNECT_ERRORS as exc:
            raise _ClientDisconnect from exc
        if len(raw) < length:
            # The client promised `length` bytes and hung up early.
            raise _ClientDisconnect
        if not raw:
            raise InvalidQueryError("request body is empty")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidQueryError(f"request body is not valid JSON: {exc}") from exc

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.server.quiet:
            return
        super().log_message(format, *args)

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/health":
                self._send_json(
                    200,
                    {"status": "ok", "datasets": self.server.service.registry.names()},
                )
            elif self.path == "/datasets":
                stats = self.server.service.stats()
                stats["frontend"] = self.server.frontend_stats()
                self._send_json(200, stats)
            elif self.path == "/kinds":
                self._send_json(200, _kinds_document(self.server.service))
            else:
                self._send_json(404, {"status": "error", "error": "unknown_path",
                                      "message": f"no route for GET {self.path}"})
        except _DISCONNECT_ERRORS:
            self.server.count_disconnect()
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, _internal_error(exc))

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/query":
                self._handle_query()
            elif self.path == "/datasets":
                self._handle_register()
            else:
                self._send_json(404, {"status": "error", "error": "unknown_path",
                                      "message": f"no route for POST {self.path}"})
        except _ClientDisconnect:
            self.server.count_disconnect()
            self.close_connection = True
        except _PayloadTooLarge as exc:
            # The body was never read, so the connection cannot be reused for
            # keep-alive framing; announce the close, answer, hang up.
            self.close_connection = True
            self._send_json(413, _too_large_error(exc.length, self.server.max_body))
        except _DISCONNECT_ERRORS:
            self.server.count_disconnect()
            self.close_connection = True
        except ReproError as exc:
            self._send_json(400, _invalid_request_document(exc))
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, _internal_error(exc))

    def _handle_query(self) -> None:
        payload = self._read_json()
        service = self.server.service
        if isinstance(payload, dict) and "queries" in payload:
            entries = payload["queries"]
            if not isinstance(entries, list):
                raise InvalidQueryError("'queries' must be a list of query objects")
            requests = [_parse_request(entry) for entry in entries]
            answers = service.submit_many(requests)
            self._send_json(200, {"answers": [answer.to_json() for answer in answers]})
            return
        request = _parse_request(payload)
        answer = service.submit(request)
        self._send_json(_answer_status_code(answer), answer.to_json())

    def _handle_register(self) -> None:
        if not self.server.allow_register:
            self._send_json(
                403,
                {"status": "error", "error": "registration_disabled",
                 "message": "this server does not accept dataset registration"},
            )
            return
        code, doc = _register_response(self.server.service, self._read_json())
        self._send_json(code, doc)


def _register_response(service: QueryService, payload: Any) -> Tuple[int, Dict[str, Any]]:
    """Execute a registration payload; shared by both front-ends.

    Raises :class:`InvalidQueryError` (→ the caller's 400 path) for malformed
    payloads; returns ``(201, document)`` on success.
    """
    if not isinstance(payload, dict):
        raise InvalidQueryError("registration body must be a JSON object")
    for field in ("name", "values", "budget"):
        if field not in payload:
            raise InvalidQueryError(f"registration is missing the {field!r} field")
    try:
        dataset = service.register(
            str(payload["name"]),
            payload["values"],
            float(payload["budget"]),
            analyst_budgets=payload.get("analyst_budgets"),
            share=bool(payload.get("share", False)),
        )
    except (TypeError, ValueError) as exc:
        # Non-numeric budgets/values/analyst caps are client errors (the
        # ReproError cases are already handled by the caller's 400 path).
        raise InvalidQueryError(f"malformed registration: {exc}") from exc
    return 201, {"status": "ok", "dataset": dataset.to_json()}


def _parse_request(payload: Any) -> QueryRequest:
    if not isinstance(payload, dict):
        raise InvalidQueryError(
            f"each query must be a JSON object, got {type(payload).__name__}"
        )
    if "dataset" not in payload:
        raise InvalidQueryError("query is missing the 'dataset' field")
    analyst = payload.get("analyst")
    body = {k: v for k, v in payload.items() if k not in ("dataset", "analyst")}
    return QueryRequest(
        dataset=str(payload["dataset"]),
        query=Query.from_json(body),
        analyst=None if analyst is None else str(analyst),
    )


def _internal_error(exc: Exception) -> Dict[str, Any]:
    return {
        "status": "error",
        "error": "internal",
        "message": f"{type(exc).__name__}: {exc}",
    }


def _too_large_error(length: int, max_body: Optional[int]) -> Dict[str, Any]:
    return {
        "status": "error",
        "error": "payload_too_large",
        "message": (
            f"request body of {length} bytes exceeds the server's "
            f"{max_body}-byte limit"
        ),
    }


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`QueryService`."""

    daemon_threads = True
    # The socketserver default backlog of 5 resets connections under fan-in
    # (hundreds of clients connecting at once); queue them instead.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        *,
        allow_register: bool = False,
        quiet: bool = False,
        max_body: Optional[int] = DEFAULT_MAX_BODY,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.allow_register = allow_register
        self.quiet = quiet
        self.max_body = max_body
        self._stats_lock = threading.Lock()
        self._disconnects = 0

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count_disconnect(self) -> None:
        with self._stats_lock:
            self._disconnects += 1

    @property
    def disconnects(self) -> int:
        with self._stats_lock:
            return self._disconnects

    def frontend_stats(self) -> Dict[str, Any]:
        """Front-end counters reported under ``frontend`` in ``GET /datasets``."""
        return {
            "frontend": "threaded",
            "disconnects": self.disconnects,
            "max_body": self.max_body,
        }

    def handle_error(self, request, client_address) -> None:
        """Keep the log traceback-free for socket-level failures.

        The stdlib default prints a full traceback for *any* exception that
        escapes the handler — including a client disconnecting between our
        response and the connection teardown, which is routine under load.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECT_ERRORS):
            self.count_disconnect()
            return
        print(
            f"error handling request from {client_address}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
            flush=True,
        )


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    allow_register: bool = False,
    quiet: bool = False,
    max_body: Optional[int] = DEFAULT_MAX_BODY,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks an ephemeral port)."""
    return ServiceServer(
        (host, port), service,
        allow_register=allow_register, quiet=quiet, max_body=max_body,
    )


def serve_forever(server: ServiceServer) -> threading.Thread:
    """Run ``server`` on a daemon thread; returns the (started) thread."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
